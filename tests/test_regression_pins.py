"""Golden-value regression pins.

The simulation is fully deterministic, so a handful of canonical runs are
pinned to their exact observed values.  If a refactor changes any of these
numbers, either it changed behaviour (fix it) or it *intentionally*
re-calibrated (update the pins AND regenerate EXPERIMENTS.md).

Pins use a tiny relative tolerance to absorb floating-point reassociation
across numpy versions; anything beyond 0.1% is a behaviour change.
"""

import pytest

from repro.apps import (
    count_tours_seq,
    knights_tour_workload,
    othello_workload,
)
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform


def elapsed_of(worker, args, platform="sunos", p=4, **kw):
    res = run_parallel(
        ClusterConfig(platform=get_platform(platform), n_processors=p, **kw),
        worker,
        args=args,
    )
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def test_pin_workload_constants():
    """Real-computation invariants (cannot drift without an algorithm change)."""
    tours, nodes = count_tours_seq()
    assert (tours, nodes) == (304, 1735079)
    w = knights_tour_workload(32)
    assert len(w.jobs) == 80
    assert w.total_nodes == 1735040
    ow = othello_workload(4)
    assert len(ow.jobs) == 30
    assert ow.total_nodes == 896
    assert ow.best_value == -43


def test_pin_gauss_seidel_point():
    from repro.apps import gauss_seidel_worker

    # Re-pinned when the mid-sweep gather barrier closed the gather/write
    # race the sanitizer found (one extra barrier per sweep).
    t = elapsed_of(gauss_seidel_worker, (300, 5, 7, False))
    assert t == pytest.approx(0.177348, rel=1e-3)


def test_pin_dct_point():
    from repro.apps import dct2_worker

    t = elapsed_of(dct2_worker, (64, 8, 0.25, 11, False))
    assert t == pytest.approx(0.461430, rel=1e-3)


def test_pin_othello_point():
    from repro.apps import othello_worker

    t = elapsed_of(othello_worker, (5,))
    assert t == pytest.approx(0.193152, rel=1e-3)


def test_pin_knights_tour_point():
    from repro.apps import knights_tour_worker

    t = elapsed_of(knights_tour_worker, (32,))
    assert t == pytest.approx(4.326778, rel=1e-3)
