"""Tests for repro.replay: time-travel debugging.

Covers the tentpole contracts end to end — the checkpoint ring's retention
and eviction, bit-identical replay (record → seek --at T → continue yields
the same final solution *and* simulated clock as the original), span-
anchored seek, snapshot restore, divergence detection, manifest round-
trips, live streaming, and the CLI faces — plus the recorder's piggyback
on resilience checkpoints and the disabled-path invariants.
"""

import io
import json
import socket

import numpy as np
import pytest

from repro.dse.config import ClusterConfig
from repro.dse.runtime import LaunchedRun, launch_parallel, run_parallel
from repro.errors import ConfigurationError, ReplayDivergence, ReplayError
from repro.experiments.cli import main as experiments_main
from repro.replay import (
    CheckpointRing,
    LiveSink,
    Recording,
    ReplayConfig,
    ReplaySession,
    WorkloadSpec,
    live_run,
    record,
)
from repro.replay.recording import (
    config_from_dict,
    config_to_dict,
    fingerprint_returns,
)
from repro.resilience import ResilienceConfig
from repro.resilience.workloads import resilient_gauss_seidel

GS_ARGS = (32, 3, 7, True)  # n, sweeps, seed, verify — small but non-trivial

GS_SPEC = WorkloadSpec(
    module="repro.resilience.workloads",
    attr="resilient_gauss_seidel",
    args=GS_ARGS,
    ck_style=True,
    label="gauss-seidel",
)


def _config(**kw):
    kw.setdefault("n_processors", 4)
    kw.setdefault("seed", 1999)
    kw.setdefault("obs_trace", True)
    kw.setdefault("replay", ReplayConfig())
    return ClusterConfig(**kw)


@pytest.fixture(scope="module")
def gs_recording():
    """One shared gauss-seidel recording (record() is deterministic)."""
    return record(_config(), spec=GS_SPEC)


# ------------------------------------------------------------ config
def test_replay_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(n_processors=2, replay=ReplayConfig(ring_size=0))
    with pytest.raises(ConfigurationError):
        ClusterConfig(n_processors=2, replay=ReplayConfig(snapshot_interval=-1))
    with pytest.raises(ConfigurationError):
        ClusterConfig(n_processors=2, replay=object())


# ------------------------------------------------------------ ring
def _fill_ring(ring, n, world=2):
    for seq in range(n):
        for rank in range(world):
            slot = ring.put_rank(
                seq, f"v{seq}", rank,
                {"rank": rank, "seq": seq}, np.full(4, float(seq)),
                now=0.01 * (seq + 1),
            )
    return slot


def test_ring_eviction_keeps_newest_and_all_waypoints():
    ring = CheckpointRing(ring_size=2, world=2)
    _fill_ring(ring, 5)
    assert [s.seq for s in ring.slots] == [3, 4]
    assert ring.evictions == 3
    # Waypoints are append-only: every commit is still verifiable.
    assert [w["seq"] for w in ring.waypoints] == [0, 1, 2, 3, 4]
    assert [w["retained"] for w in ring.waypoints] == [True] * 5
    assert all(w["fingerprint"] for w in ring.waypoints)
    assert len(ring) == 2


def test_ring_commit_waits_for_all_ranks():
    ring = CheckpointRing(ring_size=4, world=3)
    assert ring.put_rank(0, "v0", 0, {}, np.zeros(2), now=0.1) is None
    assert ring.put_rank(0, "v0", 1, {}, np.zeros(2), now=0.1) is None
    slot = ring.put_rank(0, "v0", 2, {}, np.zeros(2), now=0.1)
    assert slot is not None and slot.seq == 0
    assert len(ring) == 1


def test_ring_waypoint_only_commit_is_not_retained():
    ring = CheckpointRing(ring_size=4, world=1)
    ring.put_rank(0, "v0", 0, {}, np.zeros(2), now=0.1, retained=False)
    assert len(ring.slots) == 0 and len(ring.waypoints) == 1
    assert ring.waypoints[0]["retained"] is False
    assert ring.evictions == 0  # a skip is not an eviction


def test_ring_nearest():
    ring = CheckpointRing(ring_size=8, world=1)
    _fill_ring(ring, 3, world=1)  # commits at t=0.01, 0.02, 0.03
    assert ring.nearest(0.025).seq == 1
    assert ring.nearest(0.03).seq == 2
    assert ring.nearest(0.001) is None


def test_ring_fingerprint_is_state_sensitive():
    a = CheckpointRing(ring_size=2, world=1)
    b = CheckpointRing(ring_size=2, world=1)
    sa = a.put_rank(0, "v", 0, {"x": 1}, np.zeros(2), now=0.1)
    sb = b.put_rank(0, "v", 0, {"x": 2}, np.zeros(2), now=0.1)
    assert sa.fingerprint != sb.fingerprint


# ------------------------------------------------------------ recording
def test_recording_contains_ring_spans_and_final(gs_recording):
    rec = gs_recording
    assert rec.final["elapsed"] > 0
    assert rec.final["fingerprint"]
    assert len(rec.waypoints) == 4  # one per committed checkpoint sweep
    assert [s.seq for s in rec.slots] == [0, 1, 2, 3]
    assert rec.spans, "obs_trace=True must record spans"
    assert rec.ckpt_stats["snapshots"] == 16  # 4 ranks x 4 checkpoints
    assert rec.ckpt_stats["commits"] == 4


def test_record_requires_replay_config():
    with pytest.raises(ReplayError, match="--record"):
        record(ClusterConfig(n_processors=2, replay=None), spec=GS_SPEC)


def test_snapshot_interval_skips_are_waypoint_only():
    rec = record(
        _config(replay=ReplayConfig(snapshot_interval=0.04)), spec=GS_SPEC
    )
    retained = [w for w in rec.waypoints if w["retained"]]
    skipped = [w for w in rec.waypoints if not w["retained"]]
    assert skipped, "a 0.04s interval must skip some of the 4 commits"
    assert retained[0]["seq"] == 0  # the first commit is always retained
    assert [s.seq for s in rec.slots] == [w["seq"] for w in retained]
    assert rec.ckpt_stats["interval_skips"] == len(skipped)


def test_charge_bps_costs_simulated_time():
    free = record(_config(), spec=GS_SPEC)
    charged = record(
        _config(replay=ReplayConfig(charge_bps=1e6)), spec=GS_SPEC
    )
    assert charged.final["elapsed"] > free.final["elapsed"]
    assert charged.ckpt_stats["write_latency.total"] > 0


# ------------------------------------------------------------ bit-identical replay
def test_seek_then_continue_is_bit_identical(gs_recording):
    session = ReplaySession(gs_recording)
    session.seek(gs_recording.end_time * 0.4)
    result = session.finish()  # verify=True: fingerprint + elapsed + clock
    assert result.elapsed == gs_recording.final["elapsed"]
    assert result.cluster.sim.now == gs_recording.final["end_time"]
    assert (
        fingerprint_returns(result.returns)
        == gs_recording.final["fingerprint"]
    )


def test_seek_reconstructs_mid_run_memory(gs_recording):
    # The recorded mid-run global memory must match a fresh run paused there.
    mid_t = gs_recording.end_time / 2
    session = ReplaySession(gs_recording)
    session.seek(mid_t)
    mid = session.gmem(0, 0, 8)

    launched = launch_parallel(
        _config(),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    )
    launched.run_to(mid_t)
    fresh = launched.cluster.kernels[0].gmem.storage[:8].copy()
    assert np.array_equal(mid, fresh)
    assert session.now == launched.now == mid_t


def test_seek_past_end_clamps_to_recording_end(gs_recording):
    session = ReplaySession(gs_recording)
    assert session.seek(gs_recording.end_time * 10) == gs_recording.end_time


def test_seek_backward_relaunches(gs_recording):
    session = ReplaySession(gs_recording)
    session.seek(0.06)
    events_at_006 = session.state()["events_processed"]
    session.seek(0.03)
    assert session.now == 0.03
    assert session.state()["events_processed"] < events_at_006
    session.continue_to(0.06)
    assert session.state()["events_processed"] == events_at_006


def test_step_advances_one_event_at_a_time(gs_recording):
    session = ReplaySession(gs_recording)
    session.seek(0.02)
    before = session.state()["events_processed"]
    ran = session.step(7)
    assert ran == 7
    assert session.state()["events_processed"] == before + 7


def test_divergent_waypoint_raises_at_the_cut(gs_recording):
    import copy

    tampered = copy.copy(gs_recording)
    tampered.waypoints = [dict(w) for w in gs_recording.waypoints]
    tampered.waypoints[1]["fingerprint"] = "not-the-real-fingerprint"
    session = ReplaySession(tampered)
    with pytest.raises(ReplayDivergence, match="checkpoint #1"):
        session.seek(tampered.end_time)


def test_divergent_final_fingerprint_raises(gs_recording):
    import copy

    tampered = copy.copy(gs_recording)
    tampered.final = dict(gs_recording.final)
    tampered.final["fingerprint"] = "bogus"
    session = ReplaySession(tampered)
    with pytest.raises(ReplayDivergence, match="return values"):
        session.finish()


# ------------------------------------------------------------ span-anchored seek
def test_span_anchored_seek(gs_recording):
    span = max(
        (s for s in gs_recording.spans if s["end"] is not None),
        key=lambda s: s["end"] - s["start"],
    )
    session = ReplaySession(gs_recording)
    anchor = session.seek_span(span["id"])
    assert anchor.span_id == span["id"]
    assert session.now == span["start"]
    near = session.spans(name=span["name"], window=1e-9)
    assert any(s["id"] == span["id"] for s in near)


def test_worst_span_and_anchor(gs_recording):
    worst = gs_recording.worst_span("api.barrier")
    assert worst["name"] == "api.barrier"
    anchor = gs_recording.anchor(worst["id"])
    assert anchor.time == worst["start"]
    if anchor.slot_seq is not None:
        slot = next(
            s for s in gs_recording.slots if s.seq == anchor.slot_seq
        )
        assert slot.time <= anchor.time
        assert anchor.offset == anchor.time - slot.time


def test_unknown_span_id_mentions_obs_trace(gs_recording):
    with pytest.raises(ReplayError, match="obs_trace"):
        gs_recording.span(10**9)
    with pytest.raises(ReplayError, match="recorded"):
        gs_recording.worst_span("no.such.span")


# ------------------------------------------------------------ snapshot restore
def test_restore_is_solution_exact(gs_recording):
    x_ref = run_parallel(
        ClusterConfig(n_processors=4, seed=1999),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    ).returns[0]["x"]

    session = ReplaySession(gs_recording)
    t0 = session.restore(at=gs_recording.slots[1].time)
    assert t0 == gs_recording.slots[1].time
    assert session.restored and session.state()["mode"] == "restore"
    result = session.finish()  # verify skipped: timing differs by contract
    for rank in range(4):
        np.testing.assert_array_equal(result.returns[rank]["x"], x_ref)


def test_restore_requires_ck_style_and_retained_slots(gs_recording):
    plain = Recording.from_run(
        run_parallel(
            _config(),
            lambda api, *a: resilient_gauss_seidel(api, None, *a),
            args=GS_ARGS,
        ),
        spec=None,
    )
    with pytest.raises(ReplayError, match="ck-style"):
        ReplaySession(plain).restore()
    with pytest.raises(ReplayError, match="not retained"):
        ReplaySession(gs_recording).restore(seq=999)
    with pytest.raises(ReplayError, match="seek"):
        ReplaySession(gs_recording).restore(at=1e-9)


# ------------------------------------------------------------ manifest
def test_manifest_roundtrip_is_exact(gs_recording, tmp_path):
    path = tmp_path / "run.replay"
    gs_recording.save(str(path))
    loaded = Recording.load(str(path))
    assert loaded.final == gs_recording.final
    assert loaded.waypoints == gs_recording.waypoints
    assert loaded.spans == gs_recording.spans
    assert loaded.tail == gs_recording.tail
    for a, b in zip(gs_recording.slots, loaded.slots):
        assert (a.seq, a.time, a.fingerprint) == (b.seq, b.time, b.fingerprint)
        assert a.states == b.states
        for rank in a.slices:
            np.testing.assert_array_equal(a.slices[rank], b.slices[rank])
    # ...and the loaded recording still replays bit-identically.
    result = ReplaySession(loaded).finish()
    assert result.elapsed == gs_recording.final["elapsed"]


def test_config_dict_roundtrip():
    config = _config(
        resilience=ResilienceConfig(),
        replay=ReplayConfig(ring_size=3, snapshot_interval=0.01),
    )
    back = config_from_dict(config_to_dict(config))
    assert back.n_processors == config.n_processors
    assert back.seed == config.seed
    assert back.platform.name == config.platform.name
    assert back.replay == config.replay
    assert back.resilience == config.resilience
    assert back.fabric.rate_bps == config.fabric.rate_bps


# ------------------------------------------------------------ resilience piggyback
def test_recorder_piggybacks_on_resilience_checkpoints():
    rec = record(_config(resilience=ResilienceConfig()), spec=GS_SPEC)
    assert rec.waypoints, "resilience checkpoints must feed the ring"
    assert rec.ckpt_stats["snapshots"] >= 16
    # The piggybacked recording replays bit-identically too.
    result = ReplaySession(rec).finish()
    assert result.elapsed == rec.final["elapsed"]


# ------------------------------------------------------------ ckpt.* surfacing
def test_ckpt_stats_surface_in_snapshot_metrics_and_census():
    from repro.experiments.timeline import span_census

    result = run_parallel(
        _config(obs_metrics_interval=0.002),
        GS_SPEC.make_entry(None),
        args=GS_ARGS,
    )
    cluster = result.cluster
    snapshot = cluster.stats_snapshot()
    assert snapshot["ckpt.snapshots"] == 16
    assert snapshot["ckpt.commits"] == 4
    assert snapshot["ckpt.bytes"] > 0
    assert snapshot["ckpt.ring_retained"] == 4
    assert snapshot["ckpt.ring_evictions"] == 0
    assert any(n.startswith("ckpt.") for n in cluster.metrics.series)
    census = span_census(
        cluster.obs, sim=cluster.sim, ckpt=cluster.ckpt_stats
    )
    assert "ckpt: 16 snapshots" in census
    assert "write latency" in census


# ------------------------------------------------------------ disabled path
def test_recorder_without_checkpoints_is_bit_identical_in_sim_time():
    # The recorder only hooks api.checkpoint(); a workload that never
    # checkpoints must run bit-identically with recording on or off.
    from repro.apps.gauss_seidel import gauss_seidel_worker

    plain_args = (32, 2, 7, True)
    off = run_parallel(
        ClusterConfig(n_processors=4, seed=1999),
        gauss_seidel_worker, args=plain_args,
    )
    on = run_parallel(
        ClusterConfig(n_processors=4, seed=1999, replay=ReplayConfig()),
        gauss_seidel_worker, args=plain_args,
    )
    assert on.elapsed == off.elapsed
    assert on.sim_events == off.sim_events
    assert fingerprint_returns(on.returns) == fingerprint_returns(off.returns)


def test_disabled_cluster_has_no_recorder():
    from repro.dse.cluster import Cluster

    cluster = Cluster(ClusterConfig(n_processors=2))
    assert cluster.replay is None
    assert cluster.kernels[0]._replay is None
    snapshot = cluster.stats_snapshot()
    assert not any(k.startswith("ckpt.") for k in snapshot)


# ------------------------------------------------------------ live mode
def test_live_run_streams_and_matches_plain_run(tmp_path):
    path = tmp_path / "live.jsonl"
    sink = LiveSink(path=str(path))
    try:
        result = live_run(
            _config(),
            GS_SPEC.make_entry(None),
            args=GS_ARGS,
            sink=sink,
            every=0.01,
        )
    finally:
        sink.close()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["type"] == "topology"
    assert lines[-1]["type"] == "final"
    samples = [l for l in lines if l["type"] == "sample"]
    assert samples, "at least one sample per run"
    assert samples[0]["ckpt"]["commits"] >= 0
    times = [s["time"] for s in samples]
    assert times == sorted(times)
    # Streaming must not change the answer or the elapsed simulated time.
    plain = record(_config(), spec=GS_SPEC)
    assert result.elapsed == plain.final["elapsed"]
    assert fingerprint_returns(result.returns) == plain.final["fingerprint"]


def test_live_sink_serves_tcp_clients(tmp_path):
    sink = LiveSink(port=0)
    try:
        assert sink.port
        client = socket.create_connection(("127.0.0.1", sink.port), timeout=5)
        sink.emit({"type": "hello"})  # accepts the client, then broadcasts
        sink.emit({"type": "sample", "n": 1})
        client.settimeout(5)
        data = client.recv(65536).decode()
        client.close()
    finally:
        sink.close()
    assert '"type": "sample"' in data


def test_live_rejects_bad_interval():
    with pytest.raises(ReplayError):
        live_run(_config(), GS_SPEC.make_entry(None), args=GS_ARGS, every=0.0)


# ------------------------------------------------------------ CLI
def test_cli_replay_record_seek_resume(tmp_path, capsys):
    manifest = tmp_path / "run.replay"
    status = experiments_main(
        [
            "replay", "--workload", "gauss-seidel", "--processors", "4",
            "--record", str(manifest), "--at", "0.002", "--step", "3",
            "--resume",
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert manifest.exists()
    assert "bit-identical to the recording" in out
    assert "stepped 3 event(s)" in out

    status = experiments_main(
        ["replay", "--load", str(manifest), "--worst", "api.barrier"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "worst 'api.barrier'" in out


def test_cli_replay_without_spans_prints_hint(capsys):
    status = experiments_main(
        ["replay", "--workload", "knights-tour", "--no-obs", "--at", "0.001"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "--span/--worst cannot anchor" in out


def test_cli_replay_interactive(tmp_path, capsys, monkeypatch):
    commands = iter(["state", "queues 2", "gmem 0", "spans", "tail", "step",
                     "bogus", "quit"])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(commands))
    status = experiments_main(
        ["replay", "--workload", "gauss-seidel", "--at", "0.002",
         "--interactive"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "unknown command 'bogus'" in out
    assert "stepped 1 event(s)" in out


def test_cli_live(tmp_path, capsys):
    path = tmp_path / "live.jsonl"
    status = experiments_main(
        ["live", "--workload", "gauss-seidel", "--out", str(path),
         "--every", "0.01"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "stream lines" in out
    assert path.exists() and path.read_text().strip()


def test_cli_trace_empty_exports_print_hints(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    status = experiments_main(
        ["trace", "--workload", "knights-tour", "--span-limit", "0",
         "--out", str(trace)]
    )
    out = capsys.readouterr().out
    assert status == 1
    assert not trace.exists()
    assert "no spans were recorded" in out
    assert "--span-limit" in out
