"""Tests for the experiment harness, figure registry, checks, and CLI."""

import pytest

from repro.apps import knights_tour_worker, othello_worker
from repro.experiments import (
    DEFAULT_PROCS,
    FIGURES,
    FigureData,
    Measurement,
    check_figure,
    measure_point,
    sweep_processors,
    table1,
)
from repro.experiments.checks import (
    check_dct_speedup,
    check_gs_speedup,
    check_kt_time,
    check_othello_speedup,
)
from repro.experiments.cli import main as cli_main
from repro.hardware import get_platform


def tiny_worker(api):
    yield from api.barrier("start")
    t0 = api.now
    yield from api.compute_seconds(0.01)
    yield from api.barrier("end")
    return {"t0": t0, "t1": api.now}


# ------------------------------------------------------------- harness
def test_measure_point_returns_elapsed():
    m = measure_point(get_platform("linux"), tiny_worker, (), 2)
    assert isinstance(m, Measurement)
    assert m.elapsed >= 0.01
    assert m.n_processors == 2
    assert "net.collisions" in m.stats


def test_measure_point_single_proc_uses_one_machine():
    m = measure_point(get_platform("linux"), tiny_worker, (), 1)
    assert m.elapsed >= 0.01


def test_sweep_processors_covers_grid():
    ms = sweep_processors(get_platform("linux"), tiny_worker, (), procs=(1, 2, 3))
    assert [m.n_processors for m in ms] == [1, 2, 3]


def test_default_procs_span_regimes():
    assert DEFAULT_PROCS[0] == 1
    assert 6 in DEFAULT_PROCS  # the machine-count knee
    assert max(DEFAULT_PROCS) == 12  # the doubled virtual cluster


# ------------------------------------------------------------- figures
def test_registry_has_table_and_all_figures():
    expected = {"table1"} | {f"fig{i}" for i in range(4, 22)}
    assert set(FIGURES) == expected


def test_table1_figure():
    fig = table1()
    assert fig.fig_id == "table1"
    assert len(fig.x_values) == 3


def test_figure_data_speedup_variant():
    fig = FigureData("figX", "t", "p", [1, 2, 4])
    fig.series["a"] = [8.0, 4.0, 2.0]
    speed = fig.speedup_variant("figY", "s")
    assert speed.series["a"] == [1.0, 2.0, 4.0]
    assert speed.fig_id == "figY"


def test_figure_data_to_text():
    fig = FigureData("figX", "demo", "p", [1, 2])
    fig.series["a"] = [1.0, 2.0]
    text = fig.to_text()
    assert "[figX] demo" in text and "p" in text


# ------------------------------------------------------------- checks
def _mk(fig_id, series, xs=(1, 2, 4, 6, 8, 12)):
    fig = FigureData(fig_id, "t", "processors", list(xs))
    fig.series.update(series)
    return fig


def test_gs_check_passes_on_paper_shape():
    fig = _mk(
        "fig5",
        {
            "N=100": [1, 0.7, 0.4, 0.3, 0.2, 0.1],
            "N=900": [1, 1.9, 3.1, 3.7, 2.5, 2.3],
        },
    )
    assert all(ok for _, ok in check_gs_speedup(fig))


def test_gs_check_fails_on_wrong_shape():
    fig = _mk(
        "fig5",
        {
            "N=100": [1, 2, 3, 4, 5, 6],  # small N scaling: wrong
            "N=900": [1, 2, 3, 4, 5, 6],  # no knee: wrong
        },
    )
    assert not all(ok for _, ok in check_gs_speedup(fig))


def test_dct_check():
    good = _mk(
        "fig11",
        {
            "2x2": [1, 0.8, 1.2, 1.5, 1.4, 1.3],
            "4x4": [1, 1.5, 2.7, 3.4, 3.1, 3.8],
            "8x8": [1, 1.9, 3.6, 4.7, 3.8, 4.9],
        },
    )
    assert all(ok for _, ok in check_dct_speedup(good))


def test_othello_check():
    good = _mk(
        "fig16",
        {
            "Depth3": [1, 0.3, 0.06, 0.05, 0.05, 0.04],
            "Depth8": [1, 1.9, 3.3, 4.5, 4.0, 4.6],
        },
    )
    assert all(ok for _, ok in check_othello_speedup(good))


def test_kt_check():
    good = _mk(
        "fig19",
        {
            "8_Jobs": [13.0, 6.5, 4.1, 2.8, 4.2, 2.9],
            "32_Jobs": [13.0, 7.1, 4.3, 2.6, 4.7, 2.6],
            "512_Jobs": [13.0, 8.3, 4.6, 3.4, 4.6, 3.6],
        },
    )
    assert all(ok for _, ok in check_kt_time(good))


def test_check_figure_dispatch():
    fig = _mk("fig2", {})
    assert check_figure(fig) == []  # unknown figure: no checks
    assert check_figure(table1()) == []


# ------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig21" in out


def test_cli_unknown_figure(capsys):
    assert cli_main(["fig99"]) == 2


def test_cli_runs_table1(capsys):
    assert cli_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "SparcStation" in out


def test_cli_fast_figure_with_checks(capsys):
    rc = cli_main(["fig11", "--fast"])
    out = capsys.readouterr().out
    assert "[fig11]" in out
    assert "PASS" in out
    assert rc == 0
