"""Tests for the SSI management shell."""

import pytest

from repro.dse import Cluster, ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.ssi import SSIShell, ShellError
from repro.ssi.namespace import GlobalNamespace


def booted_cluster(p=4):
    cluster = Cluster(
        ClusterConfig(platform=get_platform("aix"), n_processors=p)
    )
    cluster.sim.run(until=0.005)
    return cluster


def test_help_lists_commands():
    shell = SSIShell(booted_cluster())
    out = shell.execute("help")
    for cmd in ("ps", "top", "uname", "pgrep", "stat"):
        assert cmd in out


def test_empty_line_is_noop():
    shell = SSIShell(booted_cluster())
    assert shell.execute("") == ""


def test_unknown_command():
    shell = SSIShell(booted_cluster())
    with pytest.raises(ShellError, match="unknown command"):
        shell.execute("reboot")


def test_uname_ps_top_netstat():
    shell = SSIShell(booted_cluster())
    assert "4 processors" in shell.execute("uname")
    assert "dse-k0" in shell.execute("ps")
    assert "node00" in shell.execute("top")
    assert "collisions" in shell.execute("netstat")


def test_pgrep_and_stat_roundtrip():
    cluster = booted_cluster()
    shell = SSIShell(cluster)
    gpid = int(shell.execute("pgrep dse-k2"))
    kernel_id, _ = GlobalNamespace.split(gpid)
    assert kernel_id == 2
    stat = shell.execute(f"stat {gpid}")
    assert "dse-k2" in stat and "running" in stat


def test_pgrep_missing():
    shell = SSIShell(booted_cluster())
    with pytest.raises(ShellError, match="no process"):
        shell.execute("pgrep httpd")


def test_stat_bad_args():
    shell = SSIShell(booted_cluster())
    with pytest.raises(ShellError, match="usage"):
        shell.execute("stat")
    with pytest.raises(ShellError, match="integer"):
        shell.execute("stat abc")


def test_info_and_kernels_and_machines():
    shell = SSIShell(booted_cluster())
    info = shell.execute("info 1")
    assert "k1" in info and "node01" in info
    with pytest.raises(ShellError):
        shell.execute("info 99")
    assert "k3" in shell.execute("kernels")
    assert "AIX" in shell.execute("machines")


def test_shell_on_finished_run():
    """The shell works post-mortem on a cluster a workload ran on."""

    def worker(api):
        yield from api.gm_write_scalar(api.rank, 1.0)
        yield from api.barrier("b")
        return True

    res = run_parallel(
        ClusterConfig(platform=get_platform("sunos"), n_processors=3), worker
    )
    shell = SSIShell(res.cluster)
    ps = shell.execute("ps")
    assert "dse-k0" in ps
    # kernels served real traffic during the run
    assert any(
        k.stats.counter("requests_served").value > 0 for k in res.cluster.kernels
    )
