"""Tests for the DCT-II application (sequential + DSE-parallel)."""

import numpy as np
import pytest
import scipy.fft

from repro.apps.dct2 import (
    block_work,
    blocks_per_side,
    compress_block,
    dct2_block,
    dct2_image_seq,
    dct2_worker,
    dct_matrix,
    idct2_block,
    make_image,
    sequential_work,
)
from repro.dse import ClusterConfig, run_parallel
from repro.errors import ApplicationError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def test_dct_matrix_orthonormal():
    for n in (2, 4, 8, 16):
        c = dct_matrix(n)
        assert np.allclose(c @ c.T, np.eye(n), atol=1e-12)


def test_dct2_matches_scipy():
    rng = np.random.default_rng(0)
    for n in (2, 4, 8):
        block = rng.normal(size=(n, n))
        ours = dct2_block(block)
        scipys = scipy.fft.dctn(block, type=2, norm="ortho")
        assert np.allclose(ours, scipys, atol=1e-10)


def test_dct2_inverse_roundtrip():
    rng = np.random.default_rng(1)
    block = rng.normal(size=(8, 8))
    assert np.allclose(idct2_block(dct2_block(block)), block, atol=1e-10)


def test_compress_keeps_fraction():
    rng = np.random.default_rng(2)
    coeffs = rng.normal(size=(8, 8))
    out = compress_block(coeffs, 0.25)
    assert np.count_nonzero(out) == 16
    # kept coefficients are the largest by magnitude
    kept = np.abs(out[out != 0])
    dropped = np.abs(coeffs[out == 0])
    assert kept.min() >= dropped.max()


def test_compress_keep_all():
    coeffs = np.arange(16.0).reshape(4, 4)
    assert np.array_equal(compress_block(coeffs, 1.0), coeffs)


def test_compress_validation():
    with pytest.raises(ApplicationError):
        compress_block(np.zeros((2, 2)), 0.0)


def test_make_image_deterministic_and_bounded():
    img = make_image(64)
    assert img.shape == (64, 64)
    assert img.min() >= 0 and img.max() <= 255
    assert np.array_equal(img, make_image(64))


def test_make_image_validation():
    with pytest.raises(ApplicationError):
        make_image(1)


def test_blocks_per_side_validation():
    assert blocks_per_side(64, 8) == 8
    with pytest.raises(ApplicationError):
        blocks_per_side(64, 7)


def test_seq_energy_preserved_under_full_keep():
    """Orthonormal DCT preserves total energy when nothing is dropped."""
    img = make_image(32)
    coeffs = dct2_image_seq(img, 8, keep=1.0)
    assert np.sum(img**2) == pytest.approx(np.sum(coeffs**2), rel=1e-10)


def test_seq_compression_reconstruction_quality():
    """25% of coefficients must reconstruct a smooth image well."""
    img = make_image(32)
    coeffs = dct2_image_seq(img, 8, keep=0.25)
    recon = np.empty_like(img)
    for by in range(0, 32, 8):
        for bx in range(0, 32, 8):
            recon[by : by + 8, bx : bx + 8] = idct2_block(coeffs[by : by + 8, bx : bx + 8])
    rel_err = np.linalg.norm(recon - img) / np.linalg.norm(img)
    assert rel_err < 0.05


def test_work_model_grows_with_block_size():
    per_pixel = {
        b: block_work(b).flops / (b * b) for b in (2, 4, 8)
    }
    assert per_pixel[2] < per_pixel[4] < per_pixel[8]
    total = sequential_work(64, 8)
    assert total.flops == pytest.approx(block_work(8).flops * 64)


@pytest.mark.parametrize("block_size", [2, 4, 8])
def test_parallel_matches_sequential(block_size):
    res = run_parallel(cfg(3), dct2_worker, args=(32, block_size))
    expected = dct2_image_seq(make_image(32), block_size)
    assert np.allclose(res.returns[0]["coeffs"], expected, atol=1e-10)


def test_parallel_block_counts_cover_image():
    res = run_parallel(cfg(4), dct2_worker, args=(64, 8))
    total_bands = sum(out["bands"] for out in res.returns.values())
    assert total_bands == 64 // 8


def test_parallel_rejects_bad_block_size():
    with pytest.raises(ApplicationError):
        run_parallel(cfg(2), dct2_worker, args=(64, 5))


def test_fine_blocks_slower_than_coarse_in_parallel():
    """The paper's granularity effect: at 6 processors, 2x2 blocks lose to
    8x8 blocks by far more than the pure flop ratio explains."""

    def elapsed(block):
        res = run_parallel(
            cfg(6, platform=get_platform("sunos")),
            dct2_worker,
            args=(64, block, 0.25, 11, False),
        )
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    def seq_elapsed(block):
        res = run_parallel(
            cfg(1, n_machines=1, platform=get_platform("sunos")),
            dct2_worker,
            args=(64, block, 0.25, 11, False),
        )
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    speedup_2 = seq_elapsed(2) / elapsed(2)
    speedup_8 = seq_elapsed(8) / elapsed(8)
    assert speedup_8 > 2.5
    assert speedup_2 < 2.0
    assert speedup_8 > speedup_2
