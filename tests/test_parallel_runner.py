"""Tests for the multicore experiment runner and its result cache.

The core guarantee: merged sweep output is byte-identical whether points
run serially, across a process pool, or out of a warm cache — and the
cache can never serve results from a different code version.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.experiments.parallel import (
    ResultCache,
    cache_key,
    canonical_params,
    code_fingerprint,
    run_tasks,
)
from repro.experiments.scaling import ScalePoint, scale_sweep, sweep_canonical

REPO = Path(__file__).resolve().parent.parent


def _square(params):
    return {"n": params["n"], "sq": params["n"] * params["n"]}


# -- keying --------------------------------------------------------------------
def test_cache_key_stable_under_dict_ordering():
    a = cache_key("t", {"x": 1, "y": 2}, "fp")
    b = cache_key("t", {"y": 2, "x": 1}, "fp")
    assert a == b


def test_cache_key_sensitive_to_everything():
    base = cache_key("t", {"x": 1}, "fp")
    assert cache_key("other", {"x": 1}, "fp") != base
    assert cache_key("t", {"x": 2}, "fp") != base
    assert cache_key("t", {"x": 1}, "fp2") != base


def test_code_fingerprint_is_cached_and_hexdigest():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0


def test_canonical_params_is_deterministic_json():
    s = canonical_params({"b": [1, 2], "a": None})
    assert s == '{"a":null,"b":[1,2]}'


# -- cache ---------------------------------------------------------------------
def test_cache_roundtrip_and_hit_miss_accounting(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = cache_key("t", {"x": 1}, "fp")
    assert cache.get(key) is None
    cache.put(key, {"value": 42})
    assert cache.get(key) == {"value": 42}
    assert (cache.hits, cache.misses) == (1, 1)


def test_cache_tolerates_torn_entries(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = cache_key("t", {"x": 1}, "fp")
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.get(key) is None  # torn entry reads as a miss
    cache.put(key, {"value": 1})
    assert cache.get(key) == {"value": 1}  # and a fresh put repairs it


def test_run_tasks_uses_cache_and_preserves_order(tmp_path):
    cache = ResultCache(tmp_path / "c")
    params = [{"n": n} for n in (3, 1, 2)]
    first = run_tasks(_square, params, jobs=1, cache=cache, namespace="sq")
    assert [r["sq"] for r in first] == [9, 1, 4]
    again = run_tasks(_square, params, jobs=1, cache=cache, namespace="sq")
    assert again == first
    assert cache.hits == 3  # warm pass computed nothing


def test_run_tasks_pool_matches_serial(tmp_path):
    params = [{"n": n} for n in range(6)]
    serial = run_tasks(_square, params, jobs=1)
    pooled = run_tasks(_square, params, jobs=2)
    assert pooled == serial


# -- the sweep determinism guarantee ------------------------------------------
def _tiny_sweep(jobs, cache):
    return scale_sweep(
        "gauss-seidel", nodes=(2, 3), fabric="switch", batching=True,
        platform="sunos", size=48, jobs=jobs, cache=cache,
    )


def test_sweep_identical_across_jobs_and_cache(tmp_path):
    cache = ResultCache(tmp_path / "c")
    serial = sweep_canonical(_tiny_sweep(jobs=1, cache=None))
    pooled = sweep_canonical(_tiny_sweep(jobs=4, cache=cache))
    assert pooled == serial  # byte-identical canonical JSON
    warm = sweep_canonical(_tiny_sweep(jobs=1, cache=cache))
    assert warm == serial
    assert cache.hits == 3 and cache.misses == 3  # warm pass was all hits


def test_sweep_canonical_excludes_wall_clock():
    point = ScalePoint(
        workload="w", nodes=2, fabric="switch", batching=True,
        elapsed=1.0, msgs=5, events=10, wall_seconds=123.0, speedup=1.5,
    )
    text = sweep_canonical([point])
    assert "wall_seconds" not in text
    payload = json.loads(text)
    assert payload["points"][0]["nodes"] == 2


def test_scale_point_dict_roundtrip():
    point = ScalePoint(
        workload="w", nodes=4, fabric="ethernet", batching=False,
        elapsed=0.5, msgs=7, events=11, wall_seconds=0.1,
        speedup=2.0, stats={"msgs_sent": 7.0},
    )
    assert ScalePoint.from_dict(point.to_dict()) == point


# -- CLI -----------------------------------------------------------------------
def test_scale_cli_jobs_and_cache_end_to_end(tmp_path):
    env = {
        "PYTHONPATH": str(REPO / "src"),
        "PATH": "/usr/bin:/bin",
        "REPRO_CACHE_DIR": str(tmp_path / "cache"),
    }
    argv = [
        sys.executable, "-m", "repro.experiments.cli", "scale",
        "--workload", "gauss-seidel", "--nodes", "2", "--size", "48",
        "--platform", "sunos",
    ]
    cold = subprocess.run(
        argv + ["--jobs", "2", "--out", str(tmp_path / "cold.json")],
        capture_output=True, text=True, cwd=tmp_path, env=env,
    )
    cold.check_returncode()
    assert "2 miss(es)" in cold.stdout
    warm = subprocess.run(
        argv + ["--jobs", "1", "--out", str(tmp_path / "warm.json")],
        capture_output=True, text=True, cwd=tmp_path, env=env,
    )
    warm.check_returncode()
    assert "2 hit(s)" in warm.stdout
    assert (tmp_path / "cold.json").read_bytes() == (tmp_path / "warm.json").read_bytes()


def test_scale_cli_no_cache_bypasses(tmp_path):
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", "scale",
         "--workload", "gauss-seidel", "--nodes", "2", "--size", "48",
         "--platform", "sunos", "--no-cache"],
        capture_output=True, text=True, cwd=tmp_path,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin",
             "REPRO_CACHE_DIR": str(tmp_path / "cache")},
    )
    out.check_returncode()
    assert "cache:" not in out.stdout
    assert not (tmp_path / "cache").exists()
