"""Tests for frames, the CSMA/CD bus, the switched LAN, and NICs."""

import pytest

from repro.errors import NetworkError
from repro.network import (
    BROADCAST,
    ETH_MIN_PAYLOAD,
    ETH_MTU,
    EthernetBus,
    EthernetFrame,
    FabricConfig,
    NIC,
    SEND_OK,
    SwitchedLAN,
    build_network,
)
from repro.sim import RandomStreams, Simulator


def make_bus(sim, **kw):
    return EthernetBus(sim, RandomStreams(1234), **kw)


# ---------------------------------------------------------------- frames
def test_frame_wire_size_includes_padding():
    f = EthernetFrame(src=0, dst=1, payload=None, payload_bytes=1)
    assert f.wire_bytes == ETH_MIN_PAYLOAD + 18 + 8


def test_frame_wire_size_large_payload():
    f = EthernetFrame(src=0, dst=1, payload=None, payload_bytes=1000)
    assert f.wire_bytes == 1000 + 26


def test_frame_rejects_oversized_payload():
    with pytest.raises(NetworkError):
        EthernetFrame(src=0, dst=1, payload=None, payload_bytes=ETH_MTU + 1)


def test_frame_rejects_negative_size():
    with pytest.raises(NetworkError):
        EthernetFrame(src=0, dst=1, payload=None, payload_bytes=-1)


def test_frame_ids_unique():
    a = EthernetFrame(src=0, dst=1, payload=None, payload_bytes=10)
    b = EthernetFrame(src=0, dst=1, payload=None, payload_bytes=10)
    assert a.frame_id != b.frame_id


# ---------------------------------------------------------------- bus basics
def test_bus_single_transmission_delivers():
    sim = Simulator()
    bus = make_bus(sim)
    received = []
    bus.attach(0, lambda f: None)
    bus.attach(1, received.append)

    def sender():
        frame = EthernetFrame(src=0, dst=1, payload="hello", payload_bytes=100)
        status = yield from bus.send(frame)
        return status

    p = sim.process(sender())
    assert sim.run(p) == SEND_OK
    sim.run_all()
    assert len(received) == 1
    assert received[0].payload == "hello"


def test_bus_transmission_takes_wire_time():
    sim = Simulator()
    bus = make_bus(sim)
    bus.attach(0, lambda f: None)
    bus.attach(1, lambda f: None)
    frame = EthernetFrame(src=0, dst=1, payload=None, payload_bytes=1000)
    expected_tx = frame.wire_bytes * 8 / 10e6

    def sender():
        yield from bus.send(frame)
        return sim.now

    done_at = sim.run(sim.process(sender()))
    # collision window + transmission time
    assert done_at == pytest.approx(bus.collision_window + expected_tx)


def test_bus_broadcast_reaches_all_but_sender():
    sim = Simulator()
    bus = make_bus(sim)
    received = {i: [] for i in range(4)}
    for i in range(4):
        bus.attach(i, received[i].append)

    def sender():
        yield from bus.send(
            EthernetFrame(src=2, dst=BROADCAST, payload="b", payload_bytes=50)
        )

    sim.process(sender())
    sim.run_all()
    assert [len(received[i]) for i in range(4)] == [1, 1, 0, 1]


def test_bus_unknown_station_rejected():
    sim = Simulator()
    bus = make_bus(sim)
    bus.attach(0, lambda f: None)

    def sender():
        yield from bus.send(EthernetFrame(src=0, dst=9, payload=None, payload_bytes=10))

    p = sim.process(sender())
    with pytest.raises(NetworkError):
        sim.run(p)


def test_bus_duplicate_attach_rejected():
    sim = Simulator()
    bus = make_bus(sim)
    bus.attach(0, lambda f: None)
    with pytest.raises(NetworkError):
        bus.attach(0, lambda f: None)


def test_bus_serialises_senders():
    """Two stations sending back-to-back must not overlap on the wire."""
    sim = Simulator()
    bus = make_bus(sim)
    deliveries = []
    bus.attach(0, lambda f: None)
    bus.attach(1, lambda f: None)
    bus.attach(2, lambda f: deliveries.append((sim.now, f.src)))

    def sender(src, start):
        yield sim.timeout(start)
        yield from bus.send(EthernetFrame(src=src, dst=2, payload=None, payload_bytes=1000))

    # Stagger so they do NOT collide: station 1 starts while 0 transmits,
    # senses carrier, and defers.
    sim.process(sender(0, 0.0))
    sim.process(sender(1, 0.0005))
    sim.run_all()
    assert len(deliveries) == 2
    tx = (1000 + 26) * 8 / 10e6
    gap = deliveries[1][0] - deliveries[0][0]
    assert gap >= tx  # second frame fully after the first


def test_bus_simultaneous_senders_collide_then_recover():
    sim = Simulator()
    bus = make_bus(sim)
    deliveries = []
    bus.attach(0, lambda f: None)
    bus.attach(1, lambda f: None)
    bus.attach(2, lambda f: deliveries.append(f.src))

    def sender(src):
        yield from bus.send(EthernetFrame(src=src, dst=2, payload=None, payload_bytes=200))

    sim.process(sender(0))
    sim.process(sender(1))
    sim.run_all()
    assert sorted(deliveries) == [0, 1]
    assert bus.stats.counter("collisions").value >= 1
    assert bus.collision_rate() > 0


def test_bus_many_contenders_eventually_all_deliver():
    sim = Simulator()
    bus = make_bus(sim)
    n = 8
    deliveries = []
    for i in range(n):
        bus.attach(i, lambda f: None)
    bus.attach(n, lambda f: deliveries.append(f.src))

    def sender(src):
        yield from bus.send(EthernetFrame(src=src, dst=n, payload=None, payload_bytes=100))

    for i in range(n):
        sim.process(sender(i))
    sim.run_all()
    assert sorted(deliveries) == list(range(n))


def test_bus_backoffs_grow_with_offered_load():
    """More simultaneous talkers => each frame suffers more collisions
    before it gets through (counted as per-station backoff events)."""

    def run(n_stations, n_msgs):
        sim = Simulator()
        bus = make_bus(sim)
        sink = n_stations
        for i in range(n_stations + 1):
            bus.attach(i, lambda f: None)

        def chatter(src):
            for _ in range(n_msgs):
                yield from bus.send(
                    EthernetFrame(src=src, dst=sink, payload=None, payload_bytes=64)
                )

        for i in range(n_stations):
            sim.process(chatter(i))
        sim.run_all()
        sent = bus.stats.counter("frames_sent").value
        assert sent == n_stations * n_msgs
        return bus.stats.counter("backoffs").value / sent

    light = run(2, 5)
    heavy = run(10, 5)
    assert heavy > light


def test_bus_utilization_tracked():
    sim = Simulator()
    bus = make_bus(sim)
    bus.attach(0, lambda f: None)
    bus.attach(1, lambda f: None)

    def sender():
        yield from bus.send(EthernetFrame(src=0, dst=1, payload=None, payload_bytes=1500))

    sim.process(sender())
    sim.run_all()
    assert bus.utilization.average(sim.now) > 0


# ---------------------------------------------------------------- switch
def test_switch_delivers_without_collisions():
    sim = Simulator()
    lan = SwitchedLAN(sim)
    received = []
    lan.attach(0, lambda f: None)
    lan.attach(1, received.append)

    def sender():
        status = yield from lan.send(
            EthernetFrame(src=0, dst=1, payload="x", payload_bytes=500)
        )
        return status

    assert sim.run(sim.process(sender())) == "ok"
    sim.run_all()
    assert len(received) == 1
    assert lan.collision_rate() == 0.0


def test_switch_concurrent_distinct_pairs_overlap():
    """0->1 and 2->3 must proceed in parallel (full duplex, no shared bus)."""
    sim = Simulator()
    lan = SwitchedLAN(sim)
    finish = {}
    for i in range(4):
        lan.attach(i, lambda f, i=i: finish.setdefault(i, sim.now))

    def sender(src, dst):
        yield from lan.send(EthernetFrame(src=src, dst=dst, payload=None, payload_bytes=1500))

    sim.process(sender(0, 1))
    sim.process(sender(2, 3))
    sim.run_all()
    # Both deliveries complete at (almost) the same time: serialisation
    # happened on distinct links.
    assert abs(finish[1] - finish[3]) < 1e-9


def test_switch_same_downlink_serialises():
    sim = Simulator()
    lan = SwitchedLAN(sim)
    arrivals = []
    for i in range(3):
        lan.attach(i, lambda f: arrivals.append(sim.now) if f.dst == 2 else None)

    def sender(src):
        yield from lan.send(EthernetFrame(src=src, dst=2, payload=None, payload_bytes=1500))

    sim.process(sender(0))
    sim.process(sender(1))
    sim.run_all()
    tx = (1500 + 26) * 8 / 10e6
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= tx * 0.99


def test_switch_cut_through_beats_store_and_forward():
    """Cut-through forwarding (default) delivers strictly earlier than
    store-and-forward: the downlink starts after the header, not the
    whole frame."""
    arrivals = {}
    for cut_through in (True, False):
        sim = Simulator()
        lan = SwitchedLAN(sim, cut_through=cut_through)
        lan.attach(0, lambda f: None)
        lan.attach(1, lambda f: arrivals.setdefault(cut_through, sim.now))

        def sender():
            yield from lan.send(
                EthernetFrame(src=0, dst=1, payload=None, payload_bytes=1500)
            )

        sim.process(sender())
        sim.run_all()
    tx = (1500 + 26) * 8 / 10e6
    assert arrivals[True] < arrivals[False]
    # The gap is the full-frame buffering minus the header time.
    assert arrivals[False] - arrivals[True] == pytest.approx(tx - lan.header_time)


def test_switch_broadcast():
    sim = Simulator()
    lan = SwitchedLAN(sim)
    got = []
    for i in range(3):
        lan.attach(i, lambda f, i=i: got.append(i))

    def sender():
        yield from lan.send(EthernetFrame(src=0, dst=BROADCAST, payload=None, payload_bytes=64))

    sim.process(sender())
    sim.run_all()
    assert sorted(got) == [1, 2]


# ---------------------------------------------------------------- NIC
def test_nic_enqueue_and_deliver():
    sim = Simulator()
    bus = make_bus(sim)
    nic0 = NIC(sim, bus, 0)
    nic1 = NIC(sim, bus, 1)
    got = []
    nic1.on_receive(got.append)

    def sender():
        yield nic0.enqueue(EthernetFrame(src=0, dst=1, payload="via-nic", payload_bytes=77))

    sim.process(sender())
    sim.run_all()
    assert len(got) == 1 and got[0].payload == "via-nic"
    assert nic0.stats.counter("tx_done").value == 1
    assert nic1.stats.counter("rx_frames").value == 1


def test_nic_rejects_foreign_source():
    sim = Simulator()
    bus = make_bus(sim)
    nic0 = NIC(sim, bus, 0)
    NIC(sim, bus, 1)
    with pytest.raises(NetworkError):
        nic0.enqueue(EthernetFrame(src=1, dst=0, payload=None, payload_bytes=10))


def test_nic_without_callback_queues_frames():
    sim = Simulator()
    bus = make_bus(sim)
    nic0 = NIC(sim, bus, 0)
    nic1 = NIC(sim, bus, 1)

    def sender():
        yield nic0.enqueue(EthernetFrame(src=0, dst=1, payload="q", payload_bytes=10))

    sim.process(sender())
    sim.run_all()
    assert len(nic1.rx_queue) == 1


def test_nic_fifo_transmission_order():
    sim = Simulator()
    bus = make_bus(sim)
    nic0 = NIC(sim, bus, 0)
    nic1 = NIC(sim, bus, 1)
    got = []
    nic1.on_receive(lambda f: got.append(f.payload))

    def sender():
        for i in range(5):
            yield nic0.enqueue(EthernetFrame(src=0, dst=1, payload=i, payload_bytes=64))

    sim.process(sender())
    sim.run_all()
    assert got == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------- topology
def test_build_network_ethernet():
    sim = Simulator()
    net = build_network(sim, RandomStreams(0), 4)
    assert net.station_ids == [0, 1, 2, 3]
    assert isinstance(net.fabric, EthernetBus)


def test_build_network_switch():
    sim = Simulator()
    net = build_network(sim, RandomStreams(0), 3, FabricConfig(kind="switch"))
    assert isinstance(net.fabric, SwitchedLAN)


def test_build_network_validation():
    from repro.errors import ConfigurationError

    sim = Simulator()
    with pytest.raises(ConfigurationError):
        build_network(sim, RandomStreams(0), 0)
    with pytest.raises(ConfigurationError):
        FabricConfig(kind="token-ring")
