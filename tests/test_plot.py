"""Tests for the ASCII plotting module."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FigureData, ascii_plot, plot_figure


def test_basic_plot_dimensions():
    text = ascii_plot([1, 2, 3, 4], {"a": [1, 2, 3, 4]}, width=40, height=10)
    lines = text.splitlines()
    # height rows + axis + x labels + legend
    assert len(lines) == 10 + 3
    plot_rows = [l for l in lines if "|" in l]
    assert len(plot_rows) == 10


def test_markers_distinguish_series():
    text = ascii_plot(
        [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]}, width=30, height=8
    )
    assert "o down" in text
    assert "x up" in text
    assert "o" in text and "x" in text


def test_y_range_labels():
    text = ascii_plot([0, 10], {"s": [0.0, 5.0]}, width=20, height=6)
    assert "5" in text.splitlines()[0]
    assert text.splitlines()[5].lstrip().startswith("0|")


def test_plot_validation():
    with pytest.raises(ConfigurationError):
        ascii_plot([1, 2], {})
    with pytest.raises(ConfigurationError):
        ascii_plot([1], {"a": [1.0]})
    with pytest.raises(ConfigurationError):
        ascii_plot([1, 2], {"a": [float("nan"), float("nan")]})


def test_plot_figure_includes_title():
    fig = FigureData("figX", "demo figure", "processors", [1, 2, 4])
    fig.series["a"] = [1.0, 1.5, 2.0]
    text = plot_figure(fig, width=30, height=8)
    assert "[figX] demo figure" in text
    assert "processors" in text


def test_plot_figure_skips_non_numeric_series():
    fig = FigureData("table1", "env", "m", ["a", "b"])
    fig.series["names"] = ["x", "y"]  # type: ignore[assignment]
    with pytest.raises(ConfigurationError):
        plot_figure(fig)


def test_flat_series_plot():
    # constant series must not divide by zero
    text = ascii_plot([1, 2, 3], {"flat": [2.0, 2.0, 2.0]}, width=20, height=5)
    assert "o" in text
