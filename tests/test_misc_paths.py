"""Coverage of remaining error paths and small behaviours across layers."""

import pytest

from repro.dse import Cluster, ClusterConfig, ParallelAPI
from repro.dse.messages import DSEMessage, MsgType
from repro.errors import (
    ConfigurationError,
    DSEError,
    OSModelError,
    ProcessManagementError,
)
from repro.hardware import get_platform
from repro.network import EthernetBus, NIC
from repro.osmodel import Machine
from repro.protocol import make_transport
from repro.sim import RandomStreams, Simulator


def built_cluster(p=3, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return Cluster(ClusterConfig(n_processors=p, **kw))


def drive(cluster, body):
    """Run a master generator on kernel 0 and return its value."""
    out = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        out["value"] = yield from body(api)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()
    return out["value"]


# ------------------------------------------------------------- procman
def test_duplicate_rank_invocation_rejected_remotely():
    cluster = built_cluster()

    def task(api2):
        yield from api2.sleep(0.01)
        return True

    def body(api):
        yield from api.kernel.procman.invoke(1, task, 7, ())
        with pytest.raises(ProcessManagementError, match="already pending"):
            yield from api.kernel.procman.invoke(1, task, 7, ())
        return True

    assert drive(built_cluster(), body) is True


def test_rank_exists_on_target_kernel():
    def task(api2):
        yield from api2.sleep(0.05)
        return True

    def body(api):
        h1 = yield from api.kernel.procman.invoke(1, task, 7, ())
        # A *different* invoker slot, same rank on the same target kernel.
        msg = DSEMessage(
            MsgType.PROC_START_REQ, 0, 1, addr=7, data=(task, ()), extra_bytes=64
        )
        rsp = yield from api.kernel.exchange.request(msg)
        value = yield from api.kernel.procman.wait(h1)
        return (rsp.status, value)

    status, value = drive(built_cluster(), body)
    assert status == "rank-exists"
    assert value is True


def test_unexpected_proc_done_raises():
    def body(api):
        msg = DSEMessage(MsgType.PROC_DONE, 1, 0, addr=999, data="ghost")
        with pytest.raises(ProcessManagementError, match="unknown rank"):
            yield from api.kernel.exchange.notify(msg)
        return True

    assert drive(built_cluster(), body) is True


def test_notify_with_responding_type_rejected():
    def body(api):
        msg = DSEMessage(MsgType.GM_READ_REQ, 0, 0, addr=0, nwords=1)
        with pytest.raises(DSEError, match="produced a response"):
            yield from api.kernel.exchange.notify(msg)
        return True

    assert drive(built_cluster(), body) is True


# ------------------------------------------------------------- api misc
def test_api_helpers_and_validation():
    cluster = built_cluster()

    def body(api):
        assert api.words_for_bytes(1) == 1
        assert api.words_for_bytes(9) == 2
        assert api.slice_words == api.kernel.gmem.slice_words
        with pytest.raises(DSEError):
            api.home_base(99)
        assert "rank=0" in repr(api)
        yield from api.sleep(0)
        return True

    assert drive(cluster, body) is True


def test_negative_sleep_rejected():
    def body(api):
        with pytest.raises(OSModelError):
            yield from api.sleep(-1)
        return True

    assert drive(built_cluster(), body) is True


# ------------------------------------------------------------- sockets
def test_socket_poll_counts_pending():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(1))
    machines = []
    for station in (0, 1):
        nic = NIC(sim, bus, station)
        transport = make_transport(sim, nic, "datagram")
        from repro.hardware import NodeSpec

        machines.append(
            Machine(sim, NodeSpec(node_id=station, platform=get_platform("linux")), nic, transport)
        )
    counts = {}

    def receiver(proc):
        sock = machines[1].open_socket(proc, 9)
        yield from proc.sleep(0.01)  # let both messages land unread
        counts["pending"] = sock.poll()
        yield from sock.recv()
        yield from sock.recv()
        counts["after"] = sock.poll()
        sock.close()

    def sender(proc):
        sock = machines[0].open_socket(proc, 8)
        yield from sock.sendto(1, 9, "a", 8)
        yield from sock.sendto(1, 9, "b", 8)
        sock.close()

    machines[1].spawn(receiver)
    machines[0].spawn(sender)
    sim.run_all()
    assert counts == {"pending": 2, "after": 0}


# ------------------------------------------------------------- cluster misc
def test_cluster_kernel_out_of_range():
    cluster = built_cluster(2)
    with pytest.raises(ConfigurationError):
        cluster.kernel(5)
    with pytest.raises(ConfigurationError):
        cluster.placement(5)


def test_stats_snapshot_keys():
    cluster = built_cluster(2)
    cluster.sim.run(until=0.001)
    snap = cluster.stats_snapshot()
    for key in (
        "net.frames_sent",
        "net.collisions",
        "msgs_sent",
        "gm.remote_reads",
        "max_load_average",
    ):
        assert key in snap


def test_run_until_event_failure_propagates():
    sim = Simulator()
    ev = sim.event()

    def failer():
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    def waiter():
        yield ev

    sim.process(failer())
    p = sim.process(waiter())
    with pytest.raises(ValueError, match="boom"):
        sim.run(p)
