"""Tests for DSE message formats and size accounting."""

import pytest

from repro.dse.messages import (
    DSEMessage,
    HEADER_BYTES,
    MsgType,
    WORD_BYTES,
    is_request,
    is_response,
)


def test_request_response_classification():
    assert is_request(MsgType.GM_READ_REQ)
    assert is_response(MsgType.GM_READ_RSP)
    assert not is_request(MsgType.GM_READ_RSP)
    assert is_request(MsgType.PROC_DONE)  # one-way, classed as request
    assert not is_response(MsgType.PROC_DONE)


def test_every_req_has_matching_rsp():
    for t in MsgType:
        if t.value.endswith("_req"):
            assert MsgType(t.value[:-4] + "_rsp") in MsgType


def test_seq_numbers_unique():
    a = DSEMessage(MsgType.GM_READ_REQ, 0, 1)
    b = DSEMessage(MsgType.GM_READ_REQ, 0, 1)
    assert a.seq != b.seq


def test_make_response_mirrors_fields():
    req = DSEMessage(MsgType.GM_READ_REQ, src_kernel=2, dst_kernel=5, addr=100, nwords=8)
    rsp = req.make_response(data=[1.0] * 8)
    assert rsp.msg_type is MsgType.GM_READ_RSP
    assert rsp.seq == req.seq
    assert (rsp.src_kernel, rsp.dst_kernel) == (5, 2)
    assert rsp.addr == 100 and rsp.nwords == 8


def test_make_response_on_response_rejected():
    rsp = DSEMessage(MsgType.GM_READ_RSP, 0, 1)
    with pytest.raises(ValueError):
        rsp.make_response()


def test_make_response_on_oneway_rejected():
    done = DSEMessage(MsgType.PROC_DONE, 0, 1)
    with pytest.raises(ValueError):
        done.make_response()


def test_size_write_request_carries_words():
    msg = DSEMessage(MsgType.GM_WRITE_REQ, 0, 1, addr=0, nwords=100)
    assert msg.size_bytes == HEADER_BYTES + 100 * WORD_BYTES


def test_size_read_request_is_header_only():
    msg = DSEMessage(MsgType.GM_READ_REQ, 0, 1, addr=0, nwords=100)
    assert msg.size_bytes == HEADER_BYTES


def test_size_read_response_carries_words():
    req = DSEMessage(MsgType.GM_READ_REQ, 0, 1, addr=0, nwords=64)
    rsp = req.make_response(data=[0.0] * 64)
    assert rsp.size_bytes == HEADER_BYTES + 64 * WORD_BYTES


def test_size_write_response_is_header_only():
    req = DSEMessage(MsgType.GM_WRITE_REQ, 0, 1, addr=0, nwords=64)
    rsp = req.make_response(nwords=0)
    assert rsp.size_bytes == HEADER_BYTES


def test_size_includes_name_and_extra():
    msg = DSEMessage(MsgType.LOCK_REQ, 0, 1, name="mylock", extra_bytes=10)
    assert msg.size_bytes == HEADER_BYTES + len("mylock") + 10
