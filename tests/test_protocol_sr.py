"""Tests for the selective-repeat + SACK transport and the dual channel.

Covers the edge paths the loss benchmarks do not isolate: SACK-range
coalescing, burst recovery through the congestion-window floor, raw/
reliable interleaving on one port, and the legacy stop-and-wait
re-acknowledgement of already-delivered duplicates.
"""

import pytest

from repro.dse import ClusterConfig, run_parallel
from repro.errors import ProtocolError
from repro.hardware import get_platform
from repro.network import (
    BurstLossConfig,
    EthernetBus,
    FabricConfig,
    LossInjector,
    NIC,
    SwitchedLAN,
)
from repro.protocol import (
    DatagramService,
    DualChannelService,
    ReliableService,
    SelectiveRepeatService,
    SRSegment,
    coalesce_ranges,
    make_transport,
)
from repro.sim import RandomStreams, Simulator


# -- SACK range coalescing ---------------------------------------------------

def test_coalesce_empty():
    assert coalesce_ranges([]) == ()


def test_coalesce_single_run():
    assert coalesce_ranges([4, 2, 3]) == ((2, 4),)


def test_coalesce_disjoint_runs_sorted():
    assert coalesce_ranges([5, 3, 4, 9, 7]) == ((3, 5), (7, 7), (9, 9))


def test_coalesce_duplicates_collapse():
    assert coalesce_ranges([1, 1, 2, 2, 4]) == ((1, 2), (4, 4))


def test_coalesce_singletons():
    assert coalesce_ranges([10, 20, 30]) == ((10, 10), (20, 20), (30, 30))


def test_sack_ranges_capped_on_the_wire():
    """The receiver advertises at most max_sack_ranges blocks per ack."""
    sim = Simulator()
    lan = SwitchedLAN(sim)
    a = SelectiveRepeatService(sim, DatagramService(sim, NIC(sim, lan, 0)))
    b = SelectiveRepeatService(
        sim, DatagramService(sim, NIC(sim, lan, 1)), max_sack_ranges=2
    )
    b.bind(4)
    # Watch b's outgoing acks by spying on its datagram layer.
    captured_b = []

    original_b = b.datagram.send

    def spy_b(dst, dst_port, payload, nbytes, src_port=0, trace=None):
        if isinstance(payload, SRSegment) and payload.kind == "ack":
            captured_b.append(payload)
        yield from original_b(dst, dst_port, payload, nbytes, src_port, trace=trace)

    b.datagram.send = spy_b

    rx = b._rx
    # Inject a gappy receive pattern directly: 1,3,5,7 buffered behind
    # missing 0 — four singleton holes, more than the two-range cap.
    def sender():
        for seq in (1, 3, 5, 7):
            seg = SRSegment(kind="data", seq=seq, user_payload=seq)
            yield from a.datagram.send(1, 4, seg, 16)
        yield sim.timeout(0.01)

    sim.run(sim.process(sender()))
    assert captured_b, "receiver never acked"
    for ack in captured_b:
        assert len(ack.sack) <= 2
    # The last ack advertises the two lowest runs (closest to the hole).
    assert captured_b[-1].sack == ((1, 1), (3, 3))
    assert list(rx.values())[0].rcv_next == 0  # still waiting on seq 0


# -- selective repeat under burst loss --------------------------------------

def make_sr_pair(sim, seed=7, fabric="switch", **options):
    if fabric == "switch":
        lan = SwitchedLAN(sim)
    else:
        lan = EthernetBus(sim, RandomStreams(seed))
    nic_a, nic_b = NIC(sim, lan, 0), NIC(sim, lan, 1)
    a = SelectiveRepeatService(sim, DatagramService(sim, nic_a), **options)
    b = SelectiveRepeatService(sim, DatagramService(sim, nic_b), **options)
    return a, b, nic_a, nic_b


def stream(sim, a, mbox, n, payload_bytes=32):
    def sender():
        for i in range(n):
            yield from a.send(1, 4, i, payload_bytes)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(n):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    return sim.run(sim.process(receiver()))


def test_sr_basic_stream_in_order():
    sim = Simulator()
    a, b, *_ = make_sr_pair(sim)
    mbox = b.bind(4)
    assert stream(sim, a, mbox, 30) == list(range(30))
    assert a.stats.counter("retransmissions").value == 0


def test_sr_recovers_from_ge_burst_through_cwnd_floor():
    """A hard burst forces RTOs down to the cwnd floor; the stream still
    completes in order and the window climbs back out afterwards."""
    sim = Simulator()
    a, b, nic_a, nic_b = make_sr_pair(sim, seed=11)
    mbox = b.bind(4)
    injector = LossInjector(
        sim, nic_b, RandomStreams(23),
        burst=BurstLossConfig(p_enter_bad=0.08, p_exit_bad=0.10),
    )
    injector.arm()
    n = 120
    assert stream(sim, a, mbox, n) == list(range(n))
    sim.run_all()  # let the sender's flush drain the final acks
    assert injector.stats.counter("dropped").value > 0
    assert a.stats.counter("retransmissions").value > 0
    assert a.stats.counter("timeouts").value > 0
    assert a.stats.counter("cwnd_floor_hits").value > 0
    # Slow start reopened the window after the collapse to the floor.
    state = a.flow_state(1, 4)
    assert state["cwnd"] > 1.0
    assert state["in_flight"] == 0  # flush drained everything


def test_sr_fast_retransmit_fills_single_hole_without_timeout():
    """One dropped data frame amid a stream: SACK scoreboard triggers a
    fast retransmit; the retransmission timer never has to fire."""
    sim = Simulator()
    a, b, nic_a, nic_b = make_sr_pair(sim, seed=3)
    mbox = b.bind(4)
    dropped = []

    def drop_seq_5(frame):
        seg = getattr(frame.payload.packet, "payload", None)
        if isinstance(seg, SRSegment) and seg.kind == "data" and seg.seq == 5:
            if not dropped:
                dropped.append(seg.seq)
                return True
        return False

    injector = LossInjector(
        sim, nic_b, RandomStreams(1), drop_rate=1.0, predicate=drop_seq_5
    )
    injector.arm()
    n = 30
    assert stream(sim, a, mbox, n) == list(range(n))
    assert dropped == [5]
    assert a.stats.counter("fast_retransmits").value >= 1
    assert a.stats.counter("timeouts").value == 0
    assert b.stats.counter("out_of_order_buffered").value > 0


def test_sr_stalled_flow_raises():
    sim = Simulator()
    a, b, nic_a, nic_b = make_sr_pair(sim, max_stall_rounds=4)
    b.bind(4)
    nic_b.on_receive(lambda frame: None)  # black hole

    def sender():
        yield from a.send(1, 4, "void", 32)
        yield from a.flush(1, 4)

    sim.process(sender())
    with pytest.raises(ProtocolError, match="stalled"):
        sim.run_all()


def test_sr_duplicate_data_is_reacked_not_redelivered():
    """Stop-and-wait re-ack semantics carry over: a duplicate of delivered
    data refreshes the ack but never reaches the application twice."""
    sim = Simulator()
    a, b, *_ = make_sr_pair(sim)
    mbox = b.bind(4)
    assert stream(sim, a, mbox, 3) == [0, 1, 2]

    def replay_old():
        # Re-inject seq 0 as if the sender's timer had gone spurious.
        yield from a.datagram.send(1, 4, SRSegment(kind="data", seq=0, user_payload=0), 16)
        yield sim.timeout(0.01)

    before = b.stats.counter("sacks_sent").value
    sim.run(sim.process(replay_old()))
    assert b.stats.counter("duplicates_dropped").value == 1
    assert b.stats.counter("sacks_sent").value == before + 1  # re-acked
    assert len(mbox) == 0  # nothing redelivered


# -- dual channel ------------------------------------------------------------

def make_dual_pair(sim, seed=7):
    lan = SwitchedLAN(sim)
    nic_a, nic_b = NIC(sim, lan, 0), NIC(sim, lan, 1)
    a = DualChannelService(sim, DatagramService(sim, nic_a))
    b = DualChannelService(sim, DatagramService(sim, nic_b))
    return a, b, nic_a, nic_b


def test_dual_channels_interleave_into_one_mailbox():
    """Raw datagrams overtake queued reliable traffic on the same port —
    both arrive, each with its own ordering contract."""
    sim = Simulator()
    a, b, *_ = make_dual_pair(sim)
    mbox = b.bind(4)

    def sender():
        for i in range(6):
            yield from a.send(1, 4, ("rel", i), 64, channel="reliable")
            yield from a.send(1, 4, ("raw", i), 64, channel="unreliable")
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(12):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    got = sim.run(sim.process(receiver()))
    rel = [i for tag, i in got if tag == "rel"]
    raw = [i for tag, i in got if tag == "raw"]
    assert rel == list(range(6))  # reliable lane stays ordered
    assert sorted(raw) == list(range(6))  # raw lane all arrived (loss-free)
    assert a.stats.counter("unreliable_sent").value == 6
    assert b.stats.counter("raw_delivered").value == 6


def test_dual_unreliable_loss_is_silent():
    """The raw lane gives no delivery guarantee: drops are invisible to
    the sender (application-level retry is the contract)."""
    sim = Simulator()
    a, b, nic_a, nic_b = make_dual_pair(sim)
    mbox = b.bind(4)
    injector = LossInjector(sim, nic_b, RandomStreams(1), drop_rate=1.0)
    injector.arm()

    def sender():
        yield from a.send(1, 4, "gone", 64, channel="unreliable")
        yield sim.timeout(0.01)

    sim.run(sim.process(sender()))
    assert len(mbox) == 0
    assert a.stats.counter("retransmissions").value == 0  # nobody retried


def test_dual_unknown_channel_rejected():
    sim = Simulator()
    a, _b, *_ = make_dual_pair(sim)
    with pytest.raises(ProtocolError, match="unknown channel"):
        next(a.send(1, 4, "x", 8, channel="bulk"))


def test_dual_reliable_reordering_repaired_before_delivery():
    """Under burst loss the reliable lane still delivers in order while
    the raw lane arrives on whatever frames survive."""
    sim = Simulator()
    a, b, nic_a, nic_b = make_dual_pair(sim, seed=19)
    mbox = b.bind(4)
    injector = LossInjector(
        sim, nic_b, RandomStreams(29),
        burst=BurstLossConfig(p_enter_bad=0.05, p_exit_bad=0.20),
    )
    injector.arm()
    n = 60

    def sender():
        for i in range(n):
            yield from a.send(1, 4, ("rel", i), 32, channel="reliable")
            yield from a.send(1, 4, ("raw", i), 32, channel="unreliable")
        yield from a.flush(1, 4)
        yield sim.timeout(0.02)

    got = []

    mbox.on_arrival = lambda pkt: got.append(pkt.payload)
    sim.run(sim.process(sender()))
    rel = [i for tag, i in got if tag == "rel"]
    raw = [i for tag, i in got if tag == "raw"]
    assert rel == list(range(n))  # repaired: in order, exactly once
    assert len(raw) < n  # the raw lane really lost some
    assert sorted(set(raw)) == raw  # ...but never duplicated or reordered
    assert injector.stats.counter("dropped").value > 0


def test_make_transport_sr_and_dual():
    sim = Simulator()
    lan = SwitchedLAN(sim)
    nic = NIC(sim, lan, 0)
    assert isinstance(make_transport(sim, nic, "sr"), SelectiveRepeatService)
    assert isinstance(make_transport(sim, nic, "dual"), DualChannelService)
    assert getattr(make_transport(sim, NIC(sim, lan, 1), "dual"), "dual_channel")


# -- legacy stop-and-wait re-ack path ---------------------------------------

def test_stop_and_wait_reacks_duplicate_of_delivered_data():
    """tcp.py duplicate path: a data frame below the expected sequence
    number (our ack was lost) must be re-acked — otherwise the sender
    retransmits forever — and must not be redelivered."""
    sim = Simulator()
    lan = SwitchedLAN(sim)
    nic_a, nic_b = NIC(sim, lan, 0), NIC(sim, lan, 1)
    a = ReliableService(sim, DatagramService(sim, nic_a), retransmit_timeout=0.004)
    b = ReliableService(sim, DatagramService(sim, nic_b))
    mbox = b.bind(4)

    # Drop exactly the first ack leaving b: the sender must retransmit,
    # and the receiver must answer the duplicate with a fresh ack.
    dropped = []

    def drop_first_ack(frame):
        payload = getattr(frame.payload.packet, "payload", None)
        if getattr(payload, "kind", "") == "ack" and not dropped:
            dropped.append(payload.seq)
            return True
        return False

    injector = LossInjector(
        sim, nic_a, RandomStreams(2), drop_rate=1.0, predicate=drop_first_ack
    )
    injector.arm()

    def sender():
        yield from a.send(1, 4, "hello", 32)

    def receiver():
        pkt = yield mbox.get()
        return pkt.payload

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == "hello"
    sim.run_all()
    assert dropped == [0]
    assert a.stats.counter("retransmissions").value >= 1
    assert b.stats.counter("duplicates_dropped").value >= 1
    assert b.stats.counter("delivered").value == 1  # exactly once
    assert len(mbox) == 0


def test_stop_and_wait_stays_silent_on_future_segment():
    """tcp.py out-of-order path: a from-the-future segment is *not*
    acked (acking would confirm discarded data); the sender's timer
    eventually fills the gap."""
    sim = Simulator()
    lan = SwitchedLAN(sim)
    nic_a, nic_b = NIC(sim, lan, 0), NIC(sim, lan, 1)
    a = ReliableService(sim, DatagramService(sim, nic_a))
    b = ReliableService(sim, DatagramService(sim, nic_b))
    mbox = b.bind(4)

    from repro.protocol.tcp import _Seg

    def inject_future():
        yield from a.datagram.send(1, 4, _Seg(kind="data", seq=7, user_payload="x"), 16)
        yield sim.timeout(0.01)

    sim.run(sim.process(inject_future()))
    assert b.stats.counter("out_of_order_dropped").value == 1
    assert b.stats.counter("delivered").value == 0
    assert len(mbox) == 0


# -- cluster-level dual transport -------------------------------------------

def test_dual_transport_runs_workload_with_sanitizers():
    """A full SPMD workload on the dual transport: identical results to
    the stop-and-wait baseline, sanitizers clean, raw lane exercised."""
    from repro.apps import matmul_worker

    def run(transport):
        config = ClusterConfig(
            platform=get_platform("sunos"),
            n_processors=4,
            transport=transport,
            fabric=FabricConfig(kind="switch"),
            sanitize=("race", "deadlock"),
        )
        return run_parallel(config, matmul_worker, args=(8,))

    import numpy as np

    base = run("reliable")
    dual = run("dual")
    # Rank 0 gathers and verifies the full product matrix.
    assert np.array_equal(base.returns[0]["c"], dual.returns[0]["c"])
    for rank in base.returns:
        assert base.returns[rank]["rows"] == dual.returns[rank]["rows"]
    assert dual.stats["net.unreliable_sent"] > 0
    assert dual.stats["san.races"] == 0
    assert dual.stats["san.lock_cycles"] == 0
