"""Adversarial and error-path tests for the DSE runtime internals."""

import numpy as np
import pytest

from repro.dse import Cluster, ClusterConfig, ParallelAPI, run_master, run_parallel
from repro.dse.messages import DSEMessage, MsgType
from repro.errors import ConfigurationError, DSEError
from repro.hardware import get_platform


def cfg(p=3, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


# ------------------------------------------------------------- exchange
def test_missing_route_raises():
    cluster = Cluster(cfg(2))
    with pytest.raises(DSEError, match="no route"):
        cluster.kernel(0).exchange.route_of(99)


def test_request_with_response_message_rejected():
    cluster = Cluster(cfg(2))
    kernel = cluster.kernel(0)
    rsp = DSEMessage(MsgType.GM_READ_RSP, 0, 1)

    def driver():
        with pytest.raises(DSEError, match="non-request"):
            yield from kernel.exchange.request(rsp)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()


def test_reply_with_request_message_rejected():
    cluster = Cluster(cfg(2))
    kernel = cluster.kernel(0)
    req = DSEMessage(MsgType.GM_READ_REQ, 0, 1)

    def driver():
        with pytest.raises(DSEError, match="non-response"):
            yield from kernel.exchange.reply(req)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()


# ------------------------------------------------------------- kernel services
def test_duplicate_service_registration_rejected():
    cluster = Cluster(cfg(2))
    kernel = cluster.kernel(0)

    def handler(msg):
        return msg.make_response()
        yield

    kernel.register_service(MsgType.KV_PUT_REQ, handler)
    with pytest.raises(DSEError, match="already registered"):
        kernel.register_service(MsgType.KV_PUT_REQ, handler)


def test_unregistered_service_message_raises():
    """A KV request without a KV service installed must fail loudly."""
    cluster = Cluster(cfg(2))

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        msg = DSEMessage(MsgType.KV_GET_REQ, 0, 0, name="x")
        with pytest.raises(DSEError, match="cannot dispatch"):
            yield from api.kernel.exchange.request(msg)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()


def test_coherence_message_under_home_policy_raises():
    cluster = Cluster(cfg(2, coherence="home"))

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        msg = DSEMessage(MsgType.GM_FETCH_REQ, 0, 0, addr=0, nwords=128)
        with pytest.raises(DSEError, match="caching coherence"):
            yield from api.kernel.exchange.request(msg)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()


# ------------------------------------------------------------- gmem edge cases
def test_remote_read_outside_home_slice_fails_cleanly():
    """A hand-crafted read request targeting the wrong home is rejected
    with a status, not silent garbage."""
    cluster = Cluster(cfg(3))

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        # addr 0 is homed at kernel 0, but we ask kernel 1 for it.
        msg = DSEMessage(MsgType.GM_READ_REQ, 0, 1, addr=0, nwords=4)
        rsp = yield from api.kernel.exchange.request(msg)
        yield from cluster.shutdown_from(0)
        return rsp.status

    p = cluster.sim.process(driver())
    cluster.sim.run_all()
    assert p.value == "not-home"


def test_alloc_on_non_authority_rejected():
    cluster = Cluster(cfg(3))

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        msg = DSEMessage(MsgType.GM_ALLOC_REQ, 0, 1, nwords=10)  # kernel 1 != 0
        rsp = yield from api.kernel.exchange.request(msg)
        yield from cluster.shutdown_from(0)
        return rsp.status

    p = cluster.sim.process(driver())
    cluster.sim.run_all()
    assert p.value == "not-allocator"


# ------------------------------------------------------------- concurrency stress
@pytest.mark.parametrize("policy", ["home", "cache"])
def test_per_address_version_monotonicity(policy):
    """Each rank bumps a version counter at its own address; other ranks
    poll it.  Observed versions at any single reader must never decrease
    (per-location coherence, both policies)."""

    def worker(api):
        my_addr = api.rank * 64  # block-aligned, one writer per block
        observed = {r: [] for r in range(api.size)}
        for version in range(1, 6):
            yield from api.gm_write_scalar(my_addr, float(version))
            for r in range(api.size):
                v = yield from api.gm_read_scalar(r * 64)
                observed[r].append(v)
        yield from api.barrier("end")
        for r, versions in observed.items():
            assert versions == sorted(versions), (api.rank, r, versions)
        # own writes are always visible immediately
        assert observed[api.rank] == [1.0, 2.0, 3.0, 4.0, 5.0]
        return True

    res = run_parallel(cfg(4, coherence=policy, block_words=64), worker)
    assert all(res.returns.values())


def test_concurrent_allocations_disjoint():
    def worker(api):
        addrs = []
        for _ in range(5):
            addr = yield from api.gm_alloc(100)
            addrs.append(addr)
        yield from api.barrier("end")
        return addrs

    res = run_parallel(cfg(4), worker)
    all_addrs = [a for addrs in res.returns.values() for a in addrs]
    assert len(all_addrs) == len(set(all_addrs))
    for a in all_addrs:
        for b in all_addrs:
            if a < b:
                assert a + 100 <= b  # ranges never overlap


def test_lock_contention_stress():
    """Heavy contention on one lock: strict mutual exclusion, no lost
    wake-ups, all critical sections execute."""
    trace = []

    def worker(api):
        for i in range(6):
            yield from api.lock("hot")
            trace.append(("enter", api.rank, api.now))
            yield from api.compute_seconds(0.0005)
            trace.append(("exit", api.rank, api.now))
            yield from api.unlock("hot")
        return True

    res = run_parallel(cfg(6), worker)
    assert all(res.returns.values())
    assert len(trace) == 2 * 6 * 6
    # No interleaving: enters and exits strictly alternate in time order.
    ordered = sorted(trace, key=lambda t: t[2])
    for i in range(0, len(ordered), 2):
        assert ordered[i][0] == "enter"
        assert ordered[i + 1][0] == "exit"
        assert ordered[i][1] == ordered[i + 1][1]  # same rank


def test_barrier_name_isolation():
    """Two different barrier names never release each other."""

    def worker(api):
        if api.rank < 2:
            yield from api.barrier("group-a", parties=2)
            return "a"
        yield from api.barrier("group-b", parties=2)
        return "b"

    res = run_parallel(cfg(4), worker)
    assert [res.returns[r] for r in range(4)] == ["a", "a", "b", "b"]


def test_large_message_through_dse():
    """A 100k-word (800 kB) transfer fragments across ~550 frames and
    reassembles exactly."""

    def master(api):
        data = np.arange(100_000, dtype=float)
        base = api.home_base(1)  # entirely remote
        yield from api.gm_write(base, data)
        back = yield from api.gm_read(base, 100_000)
        return bool(np.array_equal(back, data))

    res = run_master(cfg(2), master)
    assert res.returns[0] is True
    assert res.stats["net.frames_sent"] > 1000
