"""Tests for repro.resilience: campaigns, detection, recovery, and faults.

Covers the subsystem end to end (crash + restart during SPMD Gauss-Seidel
recovers to a bit-identical solution; a permanent crash during a task farm
is survived by reassignment) plus the unit surfaces: membership state
machine, checkpoint store, campaign plans, Gilbert-Elliott burst loss, and
fabric partitions.
"""

import numpy as np
import pytest

from repro.dse.cluster import Cluster
from repro.dse.config import ClusterConfig
from repro.dse.runtime import run_parallel
from repro.errors import ConfigurationError, NetworkError, ResilienceError
from repro.network import BROADCAST, EthernetBus, EthernetFrame, NIC, SwitchedLAN
from repro.network.faults import BurstLossConfig, LossInjector
from repro.resilience import (
    ALIVE,
    DEAD,
    SUSPECT,
    CheckpointStore,
    CrashPlan,
    FaultCampaign,
    Membership,
    PartitionPlan,
    ResilienceConfig,
    random_crashes,
    run_resilient,
    run_resilient_master,
)
from repro.resilience.workloads import resilient_gauss_seidel, resilient_tour_master
from repro.sim import RandomStreams, Simulator

GS_ARGS = (48, 4, 7, True)  # n, sweeps, seed, verify — small but non-trivial


def _config(resilience, processors=4, **kw):
    return ClusterConfig(n_processors=processors, resilience=resilience, **kw)


def _crash_campaign():
    return FaultCampaign(
        crashes=[CrashPlan(kernel_id=1, at=0.02, restart_after=0.01)]
    )


# ------------------------------------------------------------ SPMD recovery
def failure_free_x():
    base = run_parallel(
        _config(None),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    )
    return base.returns[0]["x"]


def test_spmd_crash_restart_recovers_bit_identical():
    x_ref = failure_free_x()
    faulty = run_resilient(
        _config(ResilienceConfig()),
        resilient_gauss_seidel,
        args=GS_ARGS,
        campaign=_crash_campaign(),
    )
    assert faulty.recoveries == 1
    assert len(faulty.failures) == 1
    death_time, victim = faulty.failures[0]
    assert victim == 1
    assert death_time > 0.02  # detected strictly after the injected crash
    # Rollback must restore the exact pre-crash cut: bit-identical solution.
    assert np.array_equal(faulty.returns[0]["x"], x_ref)
    snap = faulty.stats
    assert snap["res.crashes"] == 1
    assert snap["res.deaths"] == 1
    assert snap["res.restarts"] == 1
    assert snap["res.joins"] == 1
    assert snap["res.rollbacks"] == 1
    detect = faulty.cluster.resilience.stats.tally("detect_latency")
    assert detect.count == 1
    assert detect.mean > 0.0  # silence must accrue before declaration


def test_spmd_resilient_no_faults_matches_plain():
    x_ref = failure_free_x()
    clean = run_resilient(
        _config(ResilienceConfig()), resilient_gauss_seidel, args=GS_ARGS
    )
    assert clean.recoveries == 0
    assert clean.failures == ()
    assert np.array_equal(clean.returns[0]["x"], x_ref)
    # Checkpoints were taken even though none was needed.
    assert clean.stats["res.checkpoints"] >= 4


def test_spmd_crash_campaign_deterministic():
    runs = [
        run_resilient(
            _config(ResilienceConfig()),
            resilient_gauss_seidel,
            args=GS_ARGS,
            campaign=_crash_campaign(),
        )
        for _ in range(2)
    ]
    assert runs[0].elapsed == runs[1].elapsed
    assert runs[0].sim_events == runs[1].sim_events
    assert runs[0].failures == runs[1].failures
    assert runs[0].stats == runs[1].stats


def test_run_resilient_requires_resilience_config():
    with pytest.raises(ConfigurationError):
        run_resilient(_config(None), resilient_gauss_seidel, args=GS_ARGS)
    with pytest.raises(ConfigurationError):
        run_resilient_master(_config(None), resilient_tour_master, args=(8,))


def test_spmd_permanent_crash_gives_up():
    campaign = FaultCampaign(
        crashes=[CrashPlan(kernel_id=1, at=0.02, restart_after=None)]
    )
    config = _config(ResilienceConfig(rejoin_timeout=0.05, max_recovery_attempts=2))
    with pytest.raises(ResilienceError):
        run_resilient(
            config, resilient_gauss_seidel, args=GS_ARGS, campaign=campaign
        )


# ------------------------------------------------------------ farm recovery
def test_farm_survives_permanent_crash():
    campaign = FaultCampaign(
        crashes=[CrashPlan(kernel_id=2, at=0.03, restart_after=None)]
    )
    result = run_resilient_master(
        _config(ResilienceConfig()),
        resilient_tour_master,
        args=(24,),
        campaign=campaign,
    )
    report = result.returns[0]
    assert report["tours"] == report["expected_tours"] == 304
    assert report["retries"] >= 1
    assert report["wasted_seconds"] > 0.0
    assert len(report["attempts"]) == report["n_jobs"]
    assert sum(report["attempts"]) == report["n_jobs"] + report["retries"]
    assert len(result.failures) == 1 and result.failures[0][1] == 2
    assert result.stats["res.tasks_lost"] >= 1


def test_farm_without_faults_has_no_retries():
    result = run_resilient_master(
        _config(ResilienceConfig()), resilient_tour_master, args=(12,)
    )
    report = result.returns[0]
    assert report["tours"] == report["expected_tours"] == 304
    assert report["retries"] == 0
    assert report["wasted_seconds"] == 0.0
    assert all(a == 1 for a in report["attempts"])
    assert result.failures == ()


# ------------------------------------------------------- suspicion lifecycle
def test_partition_heal_raises_then_clears_suspicion():
    config = _config(ResilienceConfig())
    campaign = FaultCampaign(
        partitions=[PartitionPlan(groups=((0,),), at=0.02, heal_after=0.024)]
    )
    cluster = Cluster(config)
    campaign.arm(cluster)
    sim = cluster.sim

    def driver():
        yield sim.timeout(0.08)
        yield from cluster.shutdown_from(0)

    sim.process(driver(), name="driver")
    sim.run_all(max_events=5_000_000)
    snap = cluster.stats_snapshot()
    assert snap["res.suspicions"] >= 1
    assert snap["res.suspicions_cleared"] >= 1
    assert snap.get("res.deaths", 0) == 0
    view = cluster.resilience.membership
    assert all(view.state[k] == ALIVE for k in range(cluster.size))


def test_partition_past_grace_declares_dead():
    # Never healed: every non-monitor kernel is eventually declared dead.
    config = _config(ResilienceConfig(), processors=2)
    campaign = FaultCampaign(
        partitions=[PartitionPlan(groups=((0,),), at=0.01, heal_after=None)]
    )
    cluster = Cluster(config)
    campaign.arm(cluster)
    sim = cluster.sim

    def driver():
        yield sim.timeout(0.1)
        yield from cluster.shutdown_from(0)

    sim.process(driver(), name="driver")
    sim.run_all(max_events=5_000_000)
    assert cluster.resilience.membership.state[1] == DEAD
    assert cluster.stats_snapshot()["res.deaths"] == 1


# ------------------------------------------------------------ membership unit
def test_membership_suspect_and_clear():
    view = Membership(3)
    view.suspect(1, now=1.0)
    assert view.state[1] == SUSPECT
    assert view.usable(1)  # SUSPECT still accepts RPCs
    assert view.heard_from(1, now=2.0)
    assert view.state[1] == ALIVE
    assert not view.heard_from(1, now=3.0)  # nothing to clear


def test_membership_death_is_idempotent_and_incarnation_guarded():
    view = Membership(3)
    assert view.declare_dead(1, 0)
    assert not view.declare_dead(1, 0)  # duplicate
    assert view.dead_kernels() == [1]
    assert not view.usable(1)
    # Rejoin with a higher incarnation, then a stale death must not clobber.
    assert view.rejoin(1, incarnation=1, now=5.0)
    assert view.state[1] == ALIVE
    assert not view.declare_dead(1, 0)  # stale: incarnation 1 already joined
    assert view.state[1] == ALIVE
    assert view.declare_dead(1, 1)


def test_membership_rejoin_rejects_stale_and_duplicate():
    view = Membership(2)
    assert view.rejoin(1, incarnation=2, now=1.0)
    assert not view.rejoin(1, incarnation=1, now=2.0)  # stale
    view.declare_dead(1, 2)
    assert not view.rejoin(1, incarnation=2, now=3.0)  # dead incarnation
    assert view.rejoin(1, incarnation=3, now=4.0)
    assert view.live_kernels() == [0, 1]


# -------------------------------------------------------- checkpoint store
def test_checkpoint_store_commits_when_all_ranks_put():
    store = CheckpointStore(2)
    assert not store.has_checkpoint
    with pytest.raises(KeyError):
        store.get(0)
    store.put(0, 0, {"sweep": 1}, np.arange(4.0))
    assert store.committed_version == -1  # partial: rank 1 missing
    store.put(1, 0, {"sweep": 1}, np.arange(3.0))
    assert store.committed_version == 0
    state, data = store.get(0)
    assert state == {"sweep": 1}
    assert np.array_equal(data, np.arange(4.0))
    assert store.bytes_written == 7 * 8


def test_checkpoint_store_discards_uncommitted_and_prunes_old():
    store = CheckpointStore(2)
    store.put(0, 0, "a", np.zeros(1))
    store.put(1, 0, "b", np.zeros(1))
    store.put(0, 1, "c", np.zeros(1))
    assert store.discard_uncommitted() == 1  # version 1 was partial
    assert store.committed_version == 0
    store.put(0, 1, "c", np.zeros(1))
    store.put(1, 1, "d", np.zeros(1))
    assert store.committed_version == 1
    with pytest.raises(KeyError):
        store.get(0, version=0)  # pruned at commit of version 1
    assert store.get(1)[0] == "d"

    snapshot = np.arange(2.0)
    store.put(0, 2, None, snapshot)
    snapshot[0] = 99.0  # the store must hold a copy, not a view
    assert store.get(0, version=2)[1][0] == 0.0


# ------------------------------------------------------------ campaign plans
def test_crash_plan_validation():
    with pytest.raises(ResilienceError):
        CrashPlan(kernel_id=0, at=0.01)  # kernel 0 hosts the monitor
    with pytest.raises(ResilienceError):
        CrashPlan(kernel_id=1, at=-0.1)
    with pytest.raises(ResilienceError):
        CrashPlan(kernel_id=1, at=0.01, restart_after=-1.0)
    plan = CrashPlan(kernel_id=1, at=0.01, restart_after=None)
    assert plan.restart_after is None


def test_partition_plan_validation():
    with pytest.raises(ResilienceError):
        PartitionPlan(groups=((0, 1),), at=-0.5)
    with pytest.raises(ResilienceError):
        PartitionPlan(groups=((0, 1),), at=0.0, heal_after=-0.1)


def test_campaign_arm_requires_resilience_and_valid_victim():
    cluster = Cluster(_config(None, processors=2))
    with pytest.raises(ResilienceError):
        FaultCampaign(crashes=[CrashPlan(kernel_id=1, at=0.01)]).arm(cluster)
    cluster = Cluster(_config(ResilienceConfig(), processors=2))
    with pytest.raises(ResilienceError):
        FaultCampaign(crashes=[CrashPlan(kernel_id=5, at=0.01)]).arm(cluster)


def test_random_crashes_deterministic_and_bounded():
    a = random_crashes(seed=11, n_crashes=6, n_kernels=4, t_lo=0.01, t_hi=0.05)
    b = random_crashes(seed=11, n_crashes=6, n_kernels=4, t_lo=0.01, t_hi=0.05)
    assert a == b
    assert all(1 <= plan.kernel_id < 4 for plan in a)
    assert all(0.01 <= plan.at <= 0.05 for plan in a)
    assert [p.at for p in a] == sorted(p.at for p in a)
    c = random_crashes(seed=12, n_crashes=6, n_kernels=4, t_lo=0.01, t_hi=0.05)
    assert a != c


def test_resilience_config_validation():
    with pytest.raises(ConfigurationError):
        ResilienceConfig(heartbeat_period=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(heartbeat_timeout=0.001)  # below the period
    with pytest.raises(ConfigurationError):
        ResilienceConfig(max_task_retries=-1)


# ----------------------------------------------------- disabled-path parity
def test_disabled_path_unchanged():
    """resilience=None must keep the exact pre-subsystem behaviour."""
    base = run_parallel(
        _config(None),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    )
    again = run_parallel(
        _config(None),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    )
    assert base.elapsed == again.elapsed
    assert base.sim_events == again.sim_events
    assert not any(key.startswith("res.") for key in base.stats)
    assert base.cluster.resilience is None
    # api.checkpoint degrades to a no-op: elapsed is pure app time, and no
    # checkpoint traffic exists anywhere in the stats.
    assert not any("ckpt" in key for key in base.stats)


# ----------------------------------------------------- sanitizer integration
def test_deadlock_sanitizer_labels_crashed_barriers():
    config = _config(
        ResilienceConfig(reconfigure_barriers=False),
        processors=3,
        sanitize="deadlock",
    )
    cluster = Cluster(config)
    sim = cluster.sim

    def waiter(api):
        if api.rank == 2:
            # The victim is still computing when the crash lands: it never
            # reaches the barrier, and the survivors wait forever.
            yield from api.compute_seconds(0.05)
        yield from api.barrier("doomed")

    def driver():
        kernel0 = cluster.kernel(0)
        handles = []
        for rank in range(cluster.size):
            handle = yield from kernel0.procman.invoke(
                cluster.placement(rank), waiter, rank, ()
            )
            handles.append(handle)
        yield sim.timeout(0.005)
        cluster.resilience.crash_kernel(2, restart_after=None)

    sim.process(driver(), name="driver")
    # No shutdown: ranks 0 and 1 must still be waiting when we finalize,
    # exactly as a hung run looks when the runner raises.
    sim.run(until=0.12, max_events=5_000_000)
    sanitizer = cluster.sanitizer
    sanitizer.finalize(sim.now)
    crashed = [f for f in sanitizer.report.barrier_faults if f.kind == "crashed"]
    assert crashed, sanitizer.report.format()
    assert "t=" in crashed[0].detail


# ------------------------------------------------- Gilbert-Elliott burst loss
class _SinkNIC:
    """Minimal NIC stand-in: a station id and a swappable receive callback."""

    def __init__(self):
        self.station_id = 1
        self.received = []
        self._rx_callback = self.received.append

    def on_receive(self, callback):
        self._rx_callback = callback


def _drop_pattern(burst, n_frames=4000, seed=99):
    sim = Simulator()
    nic = _SinkNIC()
    injector = LossInjector(sim, nic, RandomStreams(seed), burst=burst)
    injector.arm()
    for i in range(n_frames):
        frame = EthernetFrame(src=0, dst=1, payload=i, payload_bytes=64)
        nic._rx_callback(frame)
    got = {f.payload for f in nic.received}
    return [i not in got for i in range(n_frames)], injector


def _mean_run_length(pattern):
    runs, current = [], 0
    for lost in pattern:
        if lost:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return sum(runs) / len(runs) if runs else 0.0


def test_burst_config_validation_and_stationary_loss():
    with pytest.raises(NetworkError):
        BurstLossConfig(p_enter_bad=1.5)
    with pytest.raises(NetworkError):
        BurstLossConfig(loss_bad=-0.1)
    cfg = BurstLossConfig(p_enter_bad=0.02, p_exit_bad=0.25, loss_bad=1.0)
    assert cfg.stationary_loss == pytest.approx(0.02 / 0.27)
    frozen = BurstLossConfig(p_enter_bad=0.0, p_exit_bad=0.0, loss_good=0.125)
    assert frozen.stationary_loss == 0.125  # chain never leaves GOOD


def test_burst_losses_are_bursty_and_deterministic():
    burst = BurstLossConfig(p_enter_bad=0.02, p_exit_bad=0.25, loss_bad=1.0)
    pattern, injector = _drop_pattern(burst)
    rate = sum(pattern) / len(pattern)
    assert rate == pytest.approx(burst.stationary_loss, rel=0.35)
    # Correlated outages: mean burst length ~ 1/p_exit_bad = 4 frames,
    # far above the ~1.08 a Bernoulli process at the same rate gives.
    assert _mean_run_length(pattern) > 2.0
    assert injector.stats.counter("bursts_entered").value >= 1
    assert injector.stats.counter("dropped_bad").value == sum(pattern)
    again, _ = _drop_pattern(burst)
    assert again == pattern


def test_bernoulli_losses_are_not_bursty():
    burst = BurstLossConfig(p_enter_bad=0.02, p_exit_bad=0.25, loss_bad=1.0)
    sim = Simulator()
    nic = _SinkNIC()
    injector = LossInjector(
        sim, nic, RandomStreams(99), drop_rate=burst.stationary_loss
    )
    injector.arm()
    for i in range(4000):
        nic._rx_callback(EthernetFrame(src=0, dst=1, payload=i, payload_bytes=64))
    got = {f.payload for f in nic.received}
    pattern = [i not in got for i in range(4000)]
    assert 0 < sum(pattern) < 4000
    assert _mean_run_length(pattern) < 1.5


# --------------------------------------------------------- fabric partitions
def _switch(sim):
    return SwitchedLAN(sim)


def _bus(sim):
    return EthernetBus(sim, RandomStreams(5))


def _attach(fabric, received, n=4):
    for sid in range(n):
        fabric.attach(sid, received[sid].append)


@pytest.mark.parametrize("make_fabric", [_switch, _bus], ids=["switch", "bus"])
def test_partition_blocks_cross_segment_traffic(make_fabric):
    sim = Simulator()
    fabric = make_fabric(sim)
    received = {i: [] for i in range(4)}
    _attach(fabric, received)
    fabric.partition([[0, 1], [2, 3]])
    assert fabric.reachable(0, 1) and not fabric.reachable(0, 2)

    def sender():
        yield from fabric.send(
            EthernetFrame(src=0, dst=1, payload="in", payload_bytes=64)
        )
        yield from fabric.send(
            EthernetFrame(src=0, dst=2, payload="out", payload_bytes=64)
        )

    sim.process(sender())
    sim.run_all()
    assert [f.payload for f in received[1]] == ["in"]
    assert received[2] == []
    assert fabric.stats.counter("partition_drops").value == 1
    assert fabric.stats.counter("partitions").value == 1


@pytest.mark.parametrize("make_fabric", [_switch, _bus], ids=["switch", "bus"])
def test_partition_drops_in_flight_frames_even_after_heal(make_fabric):
    sim = Simulator()
    fabric = make_fabric(sim)
    received = {i: [] for i in range(4)}
    _attach(fabric, received)

    def sender():
        # The cut lands after transmission but before delivery: the frame is
        # in flight inside the fabric and must never pop out, even healed.
        yield from fabric.send(
            EthernetFrame(src=0, dst=2, payload="late", payload_bytes=500)
        )
        fabric.partition([[0, 1], [2, 3]])
        yield sim.timeout(0.01)
        fabric.heal()

    sim.process(sender())
    sim.run_all()
    assert received[2] == []
    assert fabric.stats.counter("partition_drops").value == 1
    assert fabric.stats.counter("heals").value == 1
    assert fabric.reachable(0, 2)


def test_bus_broadcast_respects_partition():
    sim = Simulator()
    fabric = _bus(sim)
    received = {i: [] for i in range(4)}
    _attach(fabric, received)
    fabric.partition([[0, 1], [2, 3]])

    def sender():
        yield from fabric.send(
            EthernetFrame(src=0, dst=BROADCAST, payload="b", payload_bytes=64)
        )

    sim.process(sender())
    sim.run_all()
    assert [len(received[i]) for i in range(4)] == [0, 1, 0, 0]
    assert fabric.stats.counter("partition_drops").value == 2


@pytest.mark.parametrize("make_fabric", [_switch, _bus], ids=["switch", "bus"])
def test_partition_rejects_unknown_or_duplicate_stations(make_fabric):
    sim = Simulator()
    fabric = make_fabric(sim)
    received = {i: [] for i in range(4)}
    _attach(fabric, received)
    with pytest.raises(NetworkError):
        fabric.partition([[0, 9]])
    with pytest.raises(NetworkError):
        fabric.partition([[0, 1], [1, 2]])
    fabric.heal()  # no-op when not partitioned
    assert fabric.stats.counter("heals").value == 0


def test_traffic_resumes_after_heal():
    sim = Simulator()
    fabric = _switch(sim)
    received = {i: [] for i in range(4)}
    _attach(fabric, received)
    fabric.partition([[0, 1]])

    def sender():
        yield from fabric.send(
            EthernetFrame(src=0, dst=3, payload="lost", payload_bytes=64)
        )
        fabric.heal()
        yield from fabric.send(
            EthernetFrame(src=0, dst=3, payload="found", payload_bytes=64)
        )

    sim.process(sender())
    sim.run_all()
    assert [f.payload for f in received[3]] == ["found"]


def test_downed_nic_drops_received_traffic():
    sim = Simulator()
    fabric = _switch(sim)
    received = {i: [] for i in range(3)}
    nics = {sid: NIC(sim, fabric, sid) for sid in range(3)}
    for sid, nic in nics.items():
        nic.on_receive(received[sid].append)
    nics[2].up = False  # crashed machine: interface stops answering

    def sender():
        yield from fabric.send(
            EthernetFrame(src=0, dst=2, payload="x", payload_bytes=64)
        )

    sim.process(sender())
    sim.run_all()
    assert received[2] == []
    assert nics[2].stats.counter("rx_dropped_down").value == 1
