"""Tests for tracing and the timeline renderer."""

from repro.dse import ClusterConfig, run_parallel
from repro.experiments import event_log, message_census, render_timeline
from repro.hardware import get_platform
from repro.sim import Tracer


def traced_run(p=4, trace=True):
    def worker(api):
        yield from api.gm_write_scalar(api.rank, 1.0)
        yield from api.barrier("b")
        yield from api.gm_read(0, api.size)
        yield from api.barrier("c")
        return True

    config = ClusterConfig(
        platform=get_platform("linux"), n_processors=p, trace=trace
    )
    return run_parallel(config, worker)


def test_trace_disabled_by_default():
    res = traced_run(trace=False)
    assert res.cluster.tracer.records == []


def test_trace_records_sends_and_receives():
    res = traced_run()
    tracer = res.cluster.tracer
    sends = tracer.filter(kind="send")
    recvs = tracer.filter(kind="recv")
    assert sends and recvs
    # Every wire-sent *request* is received by a service loop (responses
    # are consumed by their waiting requester and not re-traced; shutdown
    # is excluded because the master's own shutdown arrives via loopback).
    from collections import Counter

    sent = Counter(
        r.detail[0]
        for r in sends
        if (r.detail[0].endswith("_req") or r.detail[0] == "proc_done")
        and r.detail[0] != "shutdown_req"
    )
    got = Counter(r.detail[0] for r in recvs if r.detail[0] != "shutdown_req")
    assert sent == got
    # Sources are kernel labels.
    assert all(r.source.startswith("k") for r in sends)


def test_render_timeline():
    res = traced_run()
    text = render_timeline(res.cluster.tracer, width=40)
    lines = text.splitlines()
    assert "timeline" in lines[0]
    assert len(lines) == 1 + 4  # one lane per kernel
    assert all("|" in line for line in lines[1:])


def test_render_timeline_empty_trace_friendly():
    text = render_timeline(Tracer(enabled=True))
    assert text == "no events captured (was trace=True set?)"
    assert event_log(Tracer(enabled=True)) == text


def test_tracer_counts_drops_and_header_reports_them():
    tracer = Tracer(enabled=True, limit=3)
    for i in range(10):
        tracer.emit(i * 0.001, "k0", "send", ("gm_read_req", 1, 64))
    assert len(tracer.records) == 3
    assert tracer.dropped == 7
    header = render_timeline(tracer).splitlines()[0]
    assert "7 dropped past limit" in header


def test_message_census():
    res = traced_run()
    text = message_census(res.cluster.tracer)
    assert "barrier_req" in text
    assert "gm_read_req" in text


def test_event_log_limit():
    res = traced_run()
    text = event_log(res.cluster.tracer, limit=5)
    lines = text.splitlines()
    assert len(lines) == 6  # 5 records + "... N more"
    assert "more" in lines[-1]


def test_hotspot_visible_in_trace():
    """Kernel 0 hosts the barrier service: it must receive the most."""
    res = traced_run(p=6)
    recvs = res.cluster.tracer.filter(kind="recv")
    by_kernel = {}
    for r in recvs:
        by_kernel[r.source] = by_kernel.get(r.source, 0) + 1
    assert max(by_kernel, key=by_kernel.get) == "k0"
