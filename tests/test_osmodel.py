"""Tests for the OS model: PS scheduler, processes, signals, sockets."""

import pytest

from repro.errors import OSModelError
from repro.hardware import LINUX_PCAT, NodeSpec, SUNOS_SPARCSTATION, Work
from repro.network import EthernetBus, NIC
from repro.osmodel import (
    Machine,
    ProcessorSharingCPU,
    SIGIO,
    SignalTable,
    SYSCALL_WEIGHTS,
    syscall_cost,
)
from repro.protocol import make_transport
from repro.sim import RandomStreams, Simulator


def make_machine(sim, station=0, platform=LINUX_PCAT, bus=None, transport_kind="datagram"):
    bus = bus or EthernetBus(sim, RandomStreams(3))
    nic = NIC(sim, bus, station)
    transport = make_transport(sim, nic, transport_kind)
    return Machine(sim, NodeSpec(node_id=station, platform=platform), nic, transport), bus


# ------------------------------------------------------- processor sharing
def test_ps_single_job_runs_at_full_rate():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)

    def proc():
        yield cpu.execute(2.0)
        return sim.now

    assert sim.run(sim.process(proc())) == pytest.approx(2.0)


def test_ps_two_jobs_share_equally():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)  # no context-switch tax
    ends = []

    def proc():
        yield cpu.execute(1.0)
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run_all()
    # Both need 1s of work sharing one CPU: each finishes at t=2.
    assert ends == [pytest.approx(2.0), pytest.approx(2.0)]


def test_ps_staggered_arrival():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)
    ends = {}

    def proc(name, start, demand):
        yield sim.timeout(start)
        yield cpu.execute(demand)
        ends[name] = sim.now

    sim.process(proc("a", 0.0, 2.0))
    sim.process(proc("b", 1.0, 2.0))
    sim.run_all()
    # a runs alone [0,1) completing 1s; shares [1,3) completing 1s more -> ends t=3
    assert ends["a"] == pytest.approx(3.0)
    # b: 1s done at t=3, runs alone after -> ends t=4
    assert ends["b"] == pytest.approx(4.0)


def test_ps_context_switch_tax_slows_timesharing():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, context_switch=0.001, timeslice=0.010)
    ends = []

    def proc():
        yield cpu.execute(1.0)
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run_all()
    # rate = 1/(2*1.1) each -> 2.2s total
    assert ends[0] == pytest.approx(2.2)


def test_ps_zero_demand_completes_immediately():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)

    def proc():
        yield cpu.execute(0.0)
        return sim.now

    assert sim.run(sim.process(proc())) == 0.0


def test_ps_negative_demand_rejected():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)
    with pytest.raises(ValueError):
        cpu.execute(-1.0)


def test_ps_load_and_utilization():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)

    def proc():
        yield cpu.execute(1.0)

    sim.process(proc())
    sim.process(proc())
    sim.run_all()
    assert cpu.load == 0
    assert cpu.utilization() > 0.9
    assert cpu.average_run_queue() > 1.0


def test_ps_n_sharers_proportional_slowdown():
    """The virtual-cluster effect: n co-located kernels => n-times slower."""

    def elapsed(n):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim)

        def proc():
            yield cpu.execute(1.0)

        for _ in range(n):
            sim.process(proc())
        sim.run_all()
        return sim.now

    assert elapsed(2) / elapsed(1) == pytest.approx(2.0)
    assert elapsed(4) / elapsed(1) == pytest.approx(4.0)


# ------------------------------------------------------------- syscalls
def test_syscall_cost_weights():
    base = 10e-6
    assert syscall_cost(base, "sendto") == pytest.approx(base * SYSCALL_WEIGHTS["sendto"])
    assert syscall_cost(base, "fork") > syscall_cost(base, "getpid")


def test_syscall_unknown_rejected():
    with pytest.raises(OSModelError):
        syscall_cost(1e-6, "spawn_unicorn")


# ------------------------------------------------------------- signals
def test_signal_table_register_and_deliver():
    table = SignalTable()
    got = []
    table.register(SIGIO, got.append)
    assert table.deliver(SIGIO) is True
    assert got == [SIGIO]
    assert table.delivered[SIGIO] == 1


def test_signal_unregistered_delivery_returns_false():
    table = SignalTable()
    assert table.deliver(SIGIO) is False


def test_signal_unknown_number_rejected():
    table = SignalTable()
    with pytest.raises(OSModelError):
        table.register(99, lambda s: None)
    with pytest.raises(OSModelError):
        table.deliver(99)


# ------------------------------------------------------------- processes
def test_spawn_runs_body_and_records_exit():
    sim = Simulator()
    machine, _ = make_machine(sim)

    def body(proc):
        yield from proc.compute_seconds(0.001)
        return "ret"

    proc = machine.spawn(body, name="worker")
    assert sim.run(proc.sim_process) == "ret"
    assert proc.exited and proc.exit_value == "ret"
    assert machine.stats.counter("process_exits").value == 1


def test_compute_charges_platform_time():
    sim = Simulator()
    machine, _ = make_machine(sim, platform=SUNOS_SPARCSTATION)

    def body(proc):
        yield from proc.compute(Work(flops=1e6))

    proc = machine.spawn(body)
    sim.run(proc.sim_process)
    # 4 MFLOPS SparcStation: 1e6 flops = 0.25s (+ fork/exec noise)
    assert sim.now == pytest.approx(1e6 / (SUNOS_SPARCSTATION.cpu.mflops * 1e6), rel=0.05)


def test_compute_faster_on_faster_platform():
    def run_on(platform):
        sim = Simulator()
        machine, _ = make_machine(sim, platform=platform)

        def body(proc):
            yield from proc.compute(Work(flops=1e6, iops=1e6))

        p = machine.spawn(body)
        sim.run(p.sim_process)
        return sim.now

    assert run_on(LINUX_PCAT) < run_on(SUNOS_SPARCSTATION)


def test_two_processes_share_machine_cpu():
    sim = Simulator()
    machine, _ = make_machine(sim)
    ends = []

    def body(proc):
        yield from proc.compute_seconds(1.0)
        ends.append(sim.now)

    machine.spawn(body)
    machine.spawn(body)
    sim.run_all()
    # Linux ctx tax: rate share < 1/2 -> both end past 2.0
    assert all(e >= 2.0 for e in ends)


def test_process_by_pid():
    sim = Simulator()
    machine, _ = make_machine(sim)

    def body(proc):
        yield from proc.sleep(0)

    p = machine.spawn(body)
    assert machine.process_by_pid(p.pid) is p
    with pytest.raises(OSModelError):
        machine.process_by_pid(99999)


def test_signal_to_exited_process_is_error():
    sim = Simulator()
    machine, _ = make_machine(sim)

    def body(proc):
        yield from proc.sleep(0)

    p = machine.spawn(body)
    sim.run_all()
    with pytest.raises(OSModelError):
        p.raise_signal(SIGIO)


# ------------------------------------------------------------- sockets
def test_socket_send_recv_between_machines():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(3))
    m0, _ = make_machine(sim, 0, bus=bus)
    m1, _ = make_machine(sim, 1, bus=bus)
    result = {}

    def server(proc):
        sock = m1.open_socket(proc, 7000)
        pkt = yield from sock.recv()
        result["payload"] = pkt.payload
        result["at"] = sim.now
        sock.close()

    def client(proc):
        sock = m0.open_socket(proc, 7001)
        yield from sock.sendto(1, 7000, {"hello": True}, 256)
        sock.close()

    m1.spawn(server, "server")
    m0.spawn(client, "client")
    sim.run_all()
    assert result["payload"] == {"hello": True}
    # End-to-end latency must include protocol + wire time: > 100us
    assert result["at"] > 100e-6
    assert m0.stats.counter("msgs_sent").value == 1
    assert m1.stats.counter("msgs_received").value == 1


def test_socket_latency_higher_on_slow_platform():
    def rtt(platform):
        sim = Simulator()
        bus = EthernetBus(sim, RandomStreams(3))
        m0, _ = make_machine(sim, 0, platform=platform, bus=bus)
        m1, _ = make_machine(sim, 1, platform=platform, bus=bus)
        done = {}

        def server(proc):
            sock = m1.open_socket(proc, 70)
            pkt = yield from sock.recv()
            yield from sock.sendto(0, 71, "pong", 64)
            sock.close()

        def client(proc):
            sock = m0.open_socket(proc, 71)
            start = sim.now
            yield from sock.sendto(1, 70, "ping", 64)
            yield from sock.recv()
            done["rtt"] = sim.now - start
            sock.close()

        m1.spawn(server)
        m0.spawn(client)
        sim.run_all()
        return done["rtt"]

    assert rtt(SUNOS_SPARCSTATION) > rtt(LINUX_PCAT)


def test_socket_closed_rejects_io():
    sim = Simulator()
    machine, _ = make_machine(sim)
    errors = []

    def body(proc):
        sock = machine.open_socket(proc, 5)
        sock.close()
        try:
            yield from sock.sendto(0, 5, "x", 1)
        except OSModelError as e:
            errors.append(e)

    machine.spawn(body)
    sim.run_all()
    assert errors


def test_socket_foreign_process_rejected():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(3))
    m0, _ = make_machine(sim, 0, bus=bus)
    m1, _ = make_machine(sim, 1, bus=bus)

    def body(proc):
        with pytest.raises(OSModelError):
            m1.open_socket(proc, 5)
        yield from proc.sleep(0)

    m0.spawn(body)
    sim.run_all()


def test_machine_load_average_reflects_sharing():
    sim = Simulator()
    machine, _ = make_machine(sim)

    def body(proc):
        yield from proc.compute_seconds(0.5)

    machine.spawn(body)
    machine.spawn(body)
    machine.spawn(body)
    sim.run_all()
    assert machine.load_average() > 2.0
