"""Tests for the perf layer: profiler fidelity, bench pins, the committed
trajectory gate, and the engine fast paths (Timeout pooling)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import BENCHES, MICRO_BENCHES, EngineProfiler, run_bench
from repro.sim import Simulator, Timeout

REPO = Path(__file__).resolve().parent.parent

#: exact simulated outcomes of the engine micro-benches.  These pins were
#: captured on the PRE-optimisation engine and must never drift: the fast
#: paths (timeout pooling, cached PS shortest-remaining, inlined dispatch)
#: are required to keep simulated time bit-identical.
MICRO_PINS = {
    "timeout_chain": {"sim_now": 20.00000000000146, "events": 20002, "cancelled": 0},
    "ps_churn": {"sim_now": 3.80799625, "events": 6007, "cancelled": 1999},
    "bus_contention": {"sim_now": 0.18462899999999832, "events": 5372, "cancelled": 0},
}


# -- bench scenario determinism ------------------------------------------------
@pytest.mark.parametrize("name", sorted(MICRO_PINS))
def test_micro_bench_outcomes_bit_identical_to_seed_engine(name):
    out = run_bench(name)
    pin = MICRO_PINS[name]
    assert out["sim_now"] == pin["sim_now"]  # exact, not approx
    assert out["events"] == pin["events"]
    assert out["cancelled"] == pin["cancelled"]


def test_bench_registry_covers_micro_benches():
    for name in MICRO_BENCHES:
        assert name in BENCHES


# -- profiler fidelity --------------------------------------------------------
def test_profiler_changes_no_simulated_outcome():
    plain = run_bench("ps_churn")
    with EngineProfiler() as prof:
        profiled = run_bench("ps_churn")
    assert profiled == plain
    assert prof.profile.events_processed == plain["events"]
    assert prof.profile.events_cancelled == plain["cancelled"]


def test_profiler_counts_and_attribution():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    with EngineProfiler() as prof:
        sim.process(proc())
        sim.run_all()
    p = prof.profile
    assert p.events_processed == sim.events_processed
    assert p.by_type["Timeout"].count == 2
    assert p.by_type["Initialize"].count == 1
    assert any("Process._resume" in site for site in p.by_site)
    assert sum(p.fanout.values()) == p.events_processed
    assert p.wall_ns > 0


def test_profiler_render_has_all_sections():
    with EngineProfiler() as prof:
        run_bench("timeout_chain")
    text = prof.profile.render()
    assert "dispatch by event type" in text
    assert "hot callback sites" in text
    assert "callback fan-out histogram" in text
    assert "events dispatched" in text


def test_profiler_restores_run_and_rejects_nesting():
    original = Simulator.run
    with EngineProfiler() as prof:
        assert Simulator.run is not original
        with pytest.raises(RuntimeError):
            prof.__enter__()
    assert Simulator.run is original


def test_profiler_preserves_until_event_semantics():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.5)
        return "done"

    p = sim.process(proc())
    with EngineProfiler():
        assert sim.run(p) == "done"
    assert sim.now == 1.5


# -- the committed perf trajectory --------------------------------------------
def test_committed_trajectory_shows_fast_path_speedups():
    payload = json.loads((REPO / "BENCH_engine.json").read_text())
    trajectory = payload["trajectory"]
    assert len(trajectory) >= 2, "need pre- and post-optimisation entries"
    first, last = trajectory[0]["results"], trajectory[-1]["results"]
    for name in MICRO_BENCHES:
        # The acceptance bar: >= 1.3x wall-clock on every engine micro-bench.
        assert first[name]["wall"] / last[name]["wall"] >= 1.3, name
        # ... for the *same* simulated computation, bit for bit.
        for fld in ("sim_now", "events", "cancelled"):
            assert first[name][fld] == last[name][fld], (name, fld)


def test_committed_baseline_matches_live_outcomes():
    payload = json.loads((REPO / "BENCH_engine.json").read_text())
    latest = payload["trajectory"][-1]["results"]
    for name, pin in MICRO_PINS.items():
        for fld, value in pin.items():
            assert latest[name][fld] == value, (name, fld)


# -- engine fast paths ---------------------------------------------------------
def test_timeout_pool_recycles_cancelled_timeouts():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    t1.cancel()
    assert sim.events_cancelled == 1
    t2 = sim.timeout(2.0, value="v")
    assert t2 is t1  # recycled in place
    assert t2.delay == 2.0

    got = []

    def proc():
        got.append((yield t2))

    sim.process(proc())
    sim.run_all()
    assert got == ["v"]
    assert sim.now == 2.0


def test_timeout_pool_does_not_capture_subclasses():
    sim = Simulator()

    class MyTimeout(Timeout):
        __slots__ = ()

    t = MyTimeout(sim, 1.0)
    t.cancel()
    assert t not in sim._timeout_pool
    assert sim.timeout(1.0) is not t


def test_recycled_timeout_drops_old_callbacks():
    sim = Simulator()
    fired = []
    t1 = sim.timeout(1.0)
    t1.callbacks.append(lambda ev: fired.append("old"))
    t1.cancel()
    t2 = sim.timeout(1.0)
    t2.callbacks.append(lambda ev: fired.append("new"))
    sim.run_all()
    assert fired == ["new"]


def test_run_skips_cancelled_head_and_counts_it():
    sim = Simulator()
    t = sim.timeout(1.0)
    sim.timeout(2.0)
    t.cancel()
    sim.run_all()
    assert sim.now == 2.0
    assert sim.events_processed == 1
    assert sim.events_cancelled == 1


# -- CLI ----------------------------------------------------------------------
def test_profile_engine_cli_smoke():
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", "profile-engine",
         "--bench", "bus_contention"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert out.returncode == 0, out.stderr
    assert "dispatch by event type" in out.stdout
    assert "EthernetBus" in out.stdout or "Process._resume" in out.stdout
