"""Tests for the Othello application: game rules, search, parallel run."""

import pytest

from repro.apps.othello import (
    BLACK,
    EMPTY,
    WHITE,
    alphabeta,
    apply_move,
    best_move_seq,
    evaluate,
    initial_board,
    legal_moves,
    midgame_board,
    othello_worker,
    othello_workload,
)
from repro.dse import ClusterConfig, run_parallel
from repro.errors import ApplicationError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


# ------------------------------------------------------------- game rules
def test_initial_board_setup():
    board = initial_board()
    assert board.count(EMPTY) == 60
    assert board[27] == WHITE and board[36] == WHITE
    assert board[28] == BLACK and board[35] == BLACK


def test_initial_black_moves_are_the_classic_four():
    assert legal_moves(initial_board(), BLACK) == [19, 26, 37, 44]


def test_apply_move_flips():
    board = initial_board()
    after = apply_move(board, 19, BLACK)  # d3: flips d4 (27)
    assert after[19] == BLACK
    assert after[27] == BLACK
    assert sum(1 for v in after if v == BLACK) == 4
    assert sum(1 for v in after if v == WHITE) == 1


def test_apply_move_does_not_mutate_input():
    board = initial_board()
    apply_move(board, 19, BLACK)
    assert board == initial_board()


def test_illegal_move_rejected():
    with pytest.raises(ApplicationError):
        apply_move(initial_board(), 0, BLACK)  # corner: no flips
    with pytest.raises(ApplicationError):
        apply_move(initial_board(), 27, BLACK)  # occupied


def test_moves_are_symmetric_at_start():
    """Othello's start position is symmetric: both players have 4 moves."""
    board = initial_board()
    assert len(legal_moves(board, BLACK)) == len(legal_moves(board, WHITE)) == 4


def test_evaluate_antisymmetric():
    board = midgame_board()
    assert evaluate(board, BLACK) == -evaluate(board, WHITE)


def test_midgame_board_reproducible():
    b1, b2 = midgame_board(), midgame_board()
    assert b1 == b2
    assert sum(1 for v in b1 if v != EMPTY) > 8


# ------------------------------------------------------------- search
def test_alphabeta_depth0_is_static_eval():
    board = midgame_board()
    value, nodes = alphabeta(board, BLACK, 0)
    assert value == evaluate(board, BLACK)
    assert nodes == 1


def test_alphabeta_negative_depth_rejected():
    with pytest.raises(ApplicationError):
        alphabeta(initial_board(), BLACK, -1)


def test_alphabeta_equals_pure_minimax():
    """Alpha-beta pruning must not change the value (depth 3 exhaustive)."""

    def minimax(board, player, depth, passed=False):
        if depth == 0:
            return evaluate(board, player)
        moves = legal_moves(board, player)
        if not moves:
            if passed:
                return 1000 * sum(board) * player
            return -minimax(board, -player, depth - 1, True)
        return max(
            -minimax(apply_move(board, m, player), -player, depth - 1) for m in moves
        )

    board = midgame_board()
    for depth in (1, 2, 3):
        ab_value, _ = alphabeta(board, BLACK, depth)
        assert ab_value == minimax(board, BLACK, depth)


def test_alphabeta_node_count_grows_with_depth():
    board = midgame_board()
    counts = [alphabeta(board, BLACK, d)[1] for d in (1, 2, 3, 4)]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


def test_best_move_is_legal():
    board = midgame_board()
    move, value, nodes = best_move_seq(board, BLACK, 4)
    assert move in legal_moves(board, BLACK)
    assert nodes > 0


# ------------------------------------------------------------- workload
def test_workload_value_matches_sequential_search():
    for depth in (1, 2, 3, 4, 5):
        w = othello_workload(depth)
        _, seq_value, _ = best_move_seq(midgame_board(), BLACK, depth)
        assert w.best_value == seq_value, f"depth {depth}"


def test_workload_jobs_cover_all_root_moves():
    w = othello_workload(4)
    assert set(j.move1 for j in w.jobs) == set(w.root_moves)


def test_workload_cached():
    assert othello_workload(3) is othello_workload(3)


def test_workload_validation():
    with pytest.raises(ApplicationError):
        othello_workload(0)


# ------------------------------------------------------------- parallel
@pytest.mark.parametrize("depth", [1, 3, 5])
def test_parallel_value_matches_workload(depth):
    res = run_parallel(cfg(4), othello_worker, args=(depth,))
    out = res.returns[0]
    assert out["value"] == out["expected_value"]
    assert out["best_move"] in othello_workload(depth).root_moves


def test_parallel_all_jobs_processed_exactly_once():
    depth = 4
    res = run_parallel(cfg(5), othello_worker, args=(depth,))
    total = sum(out["jobs_done"] for out in res.returns.values())
    assert total == len(othello_workload(depth).jobs)


def test_parallel_deep_search_speeds_up():
    """Paper Figures 16-18: depth >= 7 shows clear speed-up at 6 procs."""
    plat = get_platform("sunos")
    r1 = run_parallel(cfg(1, n_machines=1, platform=plat), othello_worker, args=(7,))
    r6 = run_parallel(cfg(6, platform=plat), othello_worker, args=(7,))
    e1 = max(r["t1"] - r["t0"] for r in r1.returns.values())
    e6 = max(r["t1"] - r["t0"] for r in r6.returns.values())
    assert e1 / e6 > 2.5


def test_parallel_shallow_search_does_not_speed_up():
    plat = get_platform("sunos")
    r1 = run_parallel(cfg(1, n_machines=1, platform=plat), othello_worker, args=(2,))
    r6 = run_parallel(cfg(6, platform=plat), othello_worker, args=(2,))
    e1 = max(r["t1"] - r["t0"] for r in r1.returns.values())
    e6 = max(r["t1"] - r["t0"] for r in r6.returns.values())
    assert e6 > e1  # parallelising depth 2 is a net loss
