"""Tests for repro.sanitize: race detection, deadlock detection, wiring.

Three families:

* detection — every intentionally buggy demo guest is flagged, with
  usable attribution (sites, ranks, lock names, participant counts);
* false-positive guards — properly synchronised idioms (mutex, barrier,
  fork-join, false sharing, reused barrier names) stay clean, and so do
  all four paper applications with batching off and on;
* invariants — enabling sanitizers never changes simulated time, and the
  report/stats/CLI surfaces carry the findings.
"""

import importlib

import pytest

from repro.dse import ClusterConfig, run_master, run_parallel
from repro.errors import ConfigurationError, DSEError
from repro.sanitize import VectorClock, normalize_modes
from repro.sanitize.demo import (
    COUNTER_ADDR,
    impossible_barrier_worker,
    lock_cycle_worker,
    locked_counter_worker,
    mismatch_barrier_worker,
    racy_counter_worker,
)


def sanitized_run(worker, procs=4, args=(), **cfg):
    cfg.setdefault("sanitize", True)
    result = run_parallel(
        ClusterConfig(n_processors=procs, **cfg), worker, args=args
    )
    return result, result.cluster.sanitizer.report


def report_of_hang(worker, procs=4, **cfg):
    """Run a guest expected to hang; returns the attached report."""
    cfg.setdefault("sanitize", True)
    with pytest.raises(DSEError) as excinfo:
        run_parallel(ClusterConfig(n_processors=procs, **cfg), worker)
    return excinfo.value.cluster.sanitizer.report, str(excinfo.value)


# -- mode selection ----------------------------------------------------------
def test_normalize_modes():
    assert normalize_modes(False) == frozenset()
    assert normalize_modes(None) == frozenset()
    assert normalize_modes(True) == {"race", "deadlock"}
    assert normalize_modes("all") == {"race", "deadlock"}
    assert normalize_modes("race") == {"race"}
    assert normalize_modes("race,deadlock") == {"race", "deadlock"}
    assert normalize_modes(("deadlock",)) == {"deadlock"}


def test_config_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        ClusterConfig(sanitize="racy")


def test_config_mode_subset_builds_only_that_detector():
    from repro.dse.cluster import Cluster

    cluster = Cluster(ClusterConfig(n_processors=2, sanitize="deadlock"))
    assert cluster.sanitizer.race is None
    assert cluster.sanitizer.deadlock is not None


# -- vector clocks -----------------------------------------------------------
def test_vector_clock_join_and_tick():
    a, b = VectorClock(), VectorClock()
    a.tick(1)
    a.tick(1)
    b.tick(2)
    b.join(a)
    assert b.get(1) == 2 and b.get(2) == 1
    assert a.get(2) == 0  # join is one-directional


# -- race detection ----------------------------------------------------------
def test_racy_counter_is_flagged_with_sites():
    _result, report = sanitized_run(racy_counter_worker, args=(3,))
    assert report.races
    finding = report.races[0]
    assert finding.first.accessor != finding.second.accessor
    assert "write" in (finding.first.op, finding.second.op)
    # Attribution reaches the guest source, not the runtime.
    assert "demo.py" in finding.first.site
    assert "demo.py" in finding.second.site
    assert report.format().startswith("sanitizers:")


def test_locked_counter_is_clean_and_exact():
    result, report = sanitized_run(locked_counter_worker, args=(3,))
    assert report.clean, report.format()
    # No lost updates: the mutex makes the count exact.
    finals = {out["final"] for out in result.returns.values()}
    assert finals == {float(4 * 3)}


def test_race_detection_under_batching_and_caching():
    for extra in ({"gmem_batching": True}, {"coherence": "cache"}):
        _result, report = sanitized_run(racy_counter_worker, args=(3,), **extra)
        assert report.races, f"race missed under {extra}"


def test_false_sharing_is_not_reported():
    def neighbours(api):
        # All ranks write DIFFERENT words of the same block concurrently.
        yield from api.gm_write_scalar(COUNTER_ADDR + api.rank, 1.0)
        yield from api.barrier("done")
        return 0.0

    _result, report = sanitized_run(neighbours)
    assert report.clean, report.format()


def test_barrier_separation_is_clean_even_with_name_reuse():
    def pingpong(api):
        # Same barrier name every round: exercises generation tracking.
        for _round in range(3):
            yield from api.gm_write_scalar(COUNTER_ADDR + api.rank, 1.0)
            yield from api.barrier("round")
            _ = yield from api.gm_read_scalar(
                COUNTER_ADDR + (api.rank + 1) % api.size
            )
            yield from api.barrier("round")
        return 0.0

    _result, report = sanitized_run(pingpong)
    assert report.clean, report.format()


def test_fork_join_edges_are_clean():
    def child(api, addr):
        value = yield from api.gm_read_scalar(addr)  # parent wrote pre-spawn
        yield from api.gm_write_scalar(addr + 1 + api.rank, value + 1.0)
        return 0.0

    def master(api):
        yield from api.gm_write_scalar(0, 41.0)
        handles = yield from api.spawn_workers(child, args_of=lambda r: (0,))
        yield from api.wait_workers(handles)
        # Reading the children's writes after the join is ordered.
        for rank in range(1, api.size):
            _ = yield from api.gm_read_scalar(1 + rank)
        return 0.0

    result = run_master(ClusterConfig(n_processors=3, sanitize=True), master)
    assert result.cluster.sanitizer.report.clean


def test_unjoined_child_write_is_racy():
    def child(api, addr):
        yield from api.gm_write_scalar(addr, 1.0)
        return 0.0

    def master(api):
        handles = yield from api.spawn_workers(child, ranks=[1], args_of=lambda r: (0,))
        _ = yield from api.gm_read_scalar(0)  # read WITHOUT waiting: racy
        yield from api.wait_workers(handles)
        return 0.0

    result = run_master(ClusterConfig(n_processors=2, sanitize=True), master)
    assert result.cluster.sanitizer.report.races


# -- deadlock detection ------------------------------------------------------
def test_lock_cycle_is_detected_and_reported():
    report, message = report_of_hang(lock_cycle_worker, procs=2)
    assert report.lock_cycles
    cycle = report.lock_cycles[0].cycle
    assert {edge[1] for edge in cycle} == {"demo.A", "demo.B"}
    assert "waits for lock" in message  # report rides on the runtime error


def test_impossible_barrier_is_flagged_online():
    report, message = report_of_hang(impossible_barrier_worker, procs=3)
    kinds = [f.kind for f in report.barrier_faults]
    assert "impossible" in kinds
    assert "can never complete" in message


def test_mismatched_barrier_counts_are_flagged():
    with_mismatch = None
    try:
        _result, report = sanitized_run(mismatch_barrier_worker, procs=3)
        with_mismatch = report
    except DSEError as exc:  # arrival-order dependent: hang is also legal
        with_mismatch = exc.cluster.sanitizer.report
    assert any(f.kind == "mismatch" for f in with_mismatch.barrier_faults)


def test_lost_wakeup_stuck_barrier_names_missing_parties():
    def skipper(api):
        if api.rank != 0:
            yield from api.barrier("phase", api.size)
        return 0.0
        yield  # pragma: no cover - rank 0 exits without yielding

    report, _message = report_of_hang(skipper, procs=3)
    stuck = [f for f in report.barrier_faults if f.kind == "stuck"]
    assert stuck
    assert stuck[0].expected == 3
    assert len(stuck[0].arrived) == 2


def test_contended_lock_without_cycle_is_not_flagged():
    def contenders(api):
        yield from api.lock("hot")
        yield from api.compute_seconds(0.0005)
        yield from api.unlock("hot")
        return 0.0

    _result, report = sanitized_run(contenders)
    assert report.clean, report.format()


# -- paper applications: false-positive guard --------------------------------
@pytest.mark.parametrize("batching", [False, True])
@pytest.mark.parametrize(
    "workload", ["gauss-seidel", "knights-tour", "othello", "dct2"]
)
def test_paper_apps_are_race_free(workload, batching):
    from repro.experiments.cli import _TRACE_WORKLOADS

    module_name, attr, args = _TRACE_WORKLOADS[workload]
    worker = getattr(importlib.import_module(module_name), attr)
    _result, report = sanitized_run(
        worker, args=args, gmem_batching=batching
    )
    assert report.clean, f"{workload} batching={batching}:\n{report.format()}"


# -- invariants ---------------------------------------------------------------
def test_sanitizers_do_not_change_simulated_time():
    for worker, args in ((racy_counter_worker, (3,)), (locked_counter_worker, (2,))):
        base = run_parallel(ClusterConfig(n_processors=4), worker, args=args)
        san = run_parallel(
            ClusterConfig(n_processors=4, sanitize=True), worker, args=args
        )
        assert base.elapsed == san.elapsed  # bit-identical, not approx


def test_stats_snapshot_and_metrics_carry_san_counters():
    result, report = sanitized_run(
        racy_counter_worker, args=(2,), obs_metrics_interval=0.001
    )
    assert result.stats["san.races"] == len(report.races)
    assert result.stats["san.accesses_checked"] > 0
    assert any(
        name.startswith("san.") for name in result.cluster.metrics.series
    )
    # Disabled runs advertise nothing.
    off = run_parallel(ClusterConfig(n_processors=2), locked_counter_worker)
    assert not any(key.startswith("san.") for key in off.stats)


def test_findings_surface_as_obs_instants():
    result, report = sanitized_run(racy_counter_worker, args=(2,), obs_trace=True)
    assert report.races
    names = [span.name for span in result.cluster.obs.spans]
    assert any(name.startswith("san:RaceFinding") for name in names)


def test_sanitize_cli_demo_and_clean_paths():
    from repro.sanitize.cli import sanitize_main

    assert sanitize_main(["--demo", "--processors", "3"]) == 0
    assert (
        sanitize_main(["--workload", "knights-tour", "--processors", "3"]) == 0
    )
