"""Unit tests for Resource / Store / Container / Mutex."""

import pytest

from repro.sim import Container, Mutex, Resource, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    holders = []

    def user(name):
        req = res.request()
        yield req
        holders.append((sim.now, name))
        yield sim.timeout(10)
        res.release(req)

    for n in "abc":
        sim.process(user(n))
    sim.run_all()
    # a and b at t=0, c only after a release at t=10
    assert holders == [(0.0, "a"), (0.0, "b"), (10.0, "c")]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(name, arrive):
        yield sim.timeout(arrive)
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(5)
        res.release(req)

    sim.process(user("first", 0))
    sim.process(user("second", 1))
    sim.process(user("third", 2))
    sim.run_all()
    assert order == ["first", "second", "third"]


def test_resource_priority_preempts_queue_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10)
        res.release(req)

    def user(name, arrive, prio):
        yield sim.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    sim.process(holder())
    sim.process(user("low", 1, 5))
    sim.process(user("high", 2, 0))
    sim.run_all()
    assert order == ["high", "low"]


def test_resource_release_unheld_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # second release must fail

    sim.process(proc())
    with pytest.raises(RuntimeError):
        sim.run_all()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_wait_statistics():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(4)
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.run_all()
    assert res.total_requests == 2
    assert res.total_wait_time == pytest.approx(4.0)


def test_request_cancel():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5)
        res.release(req)

    def impatient():
        req = res.request()
        yield sim.timeout(1)
        req.cancel()
        got.append("gave-up")

    def patient():
        yield sim.timeout(0.5)
        req = res.request()
        yield req
        got.append(("got-it", sim.now))
        res.release(req)

    sim.process(holder())
    sim.process(impatient())
    sim.process(patient())
    sim.run_all()
    # The cancelled request must not absorb the grant at t=5.
    assert ("got-it", 5.0) in got


def test_mutex_locked_flag():
    sim = Simulator()
    m = Mutex(sim)
    states = []

    def proc():
        req = m.request()
        yield req
        states.append(m.locked)
        m.release(req)
        yield sim.timeout(0)
        states.append(m.locked)

    sim.process(proc())
    sim.run_all()
    assert states == [True, False]


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run_all()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(7)
        yield store.put("x")

    p = sim.process(consumer())
    sim.process(producer())
    assert sim.run(p) == ("x", 7.0)


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a", sim.now))
        yield store.put("b")
        log.append(("b", sim.now))

    def consumer():
        yield sim.timeout(5)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run_all()
    assert log == [("a", 0.0), ("b", 5.0)]


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get(filter=lambda x: x % 2 == 0)
        got.append(item)

    def producer():
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    sim.process(consumer())
    sim.process(producer())
    sim.run_all()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_store_multiple_filtered_getters():
    sim = Simulator()
    store = Store(sim)
    got = {}

    def consumer(key):
        item = yield store.get(filter=lambda x, k=key: x[0] == k)
        got[key] = item

    sim.process(consumer("a"))
    sim.process(consumer("b"))

    def producer():
        yield sim.timeout(1)
        yield store.put(("b", 2))
        yield store.put(("a", 1))

    sim.process(producer())
    sim.run_all()
    assert got == {"a": ("a", 1), "b": ("b", 2)}


def test_store_stats():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put(1)
        yield store.put(2)
        yield store.get()

    sim.process(proc())
    sim.run_all()
    assert store.total_puts == 2
    assert store.total_gets == 1
    assert store.peak_occupancy == 2


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------- Container
def test_container_get_blocks_for_level():
    sim = Simulator()
    c = Container(sim, capacity=100, init=0)

    def consumer():
        yield c.get(30)
        return sim.now

    def producer():
        yield sim.timeout(2)
        c.put(10)
        yield sim.timeout(2)
        c.put(25)

    p = sim.process(consumer())
    sim.process(producer())
    assert sim.run(p) == 4.0
    assert c.level == pytest.approx(5.0)


def test_container_put_over_capacity_rejected():
    sim = Simulator()
    c = Container(sim, capacity=10, init=5)
    with pytest.raises(ValueError):
        c.put(6)


def test_container_init_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=10, init=11)
