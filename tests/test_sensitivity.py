"""Tests for the sensitivity-analysis module."""

import pytest

from repro.experiments import (
    bandwidth_sensitivity,
    peak_of,
    protocol_sensitivity,
    scaled_platform,
    speedup_curve,
)
from repro.hardware import SUNOS_SPARCSTATION

FAST = dict(n=300, sweeps=3, procs=(1, 2, 4, 6))


def test_scaled_platform_applies_scales():
    scaled = scaled_platform(SUNOS_SPARCSTATION, protocol_scale=2.0, cpu_scale=0.5)
    assert scaled.os_costs.protocol_per_message == pytest.approx(
        2 * SUNOS_SPARCSTATION.os_costs.protocol_per_message
    )
    assert scaled.cpu.mflops == pytest.approx(0.5 * SUNOS_SPARCSTATION.cpu.mflops)
    # original untouched (frozen dataclasses)
    assert SUNOS_SPARCSTATION.cpu.mflops == 4.0


def test_speedup_curve_baseline_is_one():
    curve = speedup_curve(SUNOS_SPARCSTATION, **FAST)
    assert curve[1] == pytest.approx(1.0)
    assert set(curve) == {1, 2, 4, 6}


def test_peak_of():
    assert peak_of({1: 1.0, 2: 1.8, 4: 2.5, 6: 2.1}) == (4, 2.5)


def test_cheaper_protocol_raises_peak():
    rows = protocol_sensitivity(SUNOS_SPARCSTATION, scales=(0.25, 1.0, 4.0), **FAST)
    scales = [r[0] for r in rows]
    peaks = [r[2] for r in rows]
    assert scales == [0.25, 1.0, 4.0]
    # Cheaper protocol processing => higher peak speed-up.
    assert peaks[0] > peaks[1] > peaks[2]


def test_faster_bus_raises_peak():
    rows = bandwidth_sensitivity(SUNOS_SPARCSTATION, rates=(5e6, 100e6), **FAST)
    assert rows[1][2] > rows[0][2]


def test_conclusions_robust_across_protocol_scales():
    """The headline shape survives 4x calibration error in either
    direction: the peak stays at <= 6 processors."""
    rows = protocol_sensitivity(SUNOS_SPARCSTATION, scales=(0.25, 4.0), **FAST)
    for _scale, peak_p, _peak_s in rows:
        assert peak_p <= 6
