"""Tests for tools/lint_repro.py, the determinism lint.

Each rule must fire on a minimal offending fixture and stay silent on
the blessed alternative; the repo's own source must lint clean (that is
the CI gate this tool exists for).
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "lint_repro", REPO_ROOT / "tools" / "lint_repro.py"
)
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)


def lint_source(tmp_path, source):
    """Lint one source string; returns the list of error lines."""
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_repro.lint_file(path, tmp_path)


def rules_of(errors):
    return [err.split("[", 1)[1].split("]", 1)[0] for err in errors]


# -- wall-clock ---------------------------------------------------------------
def test_wall_clock_flags_time_time(tmp_path):
    errors = lint_source(tmp_path, "import time\nt = time.time()\n")
    assert rules_of(errors) == ["wall-clock"]
    assert "fixture.py:2" in errors[0]


def test_wall_clock_flags_monotonic_and_datetime_now(tmp_path):
    source = (
        "import time, datetime\n"
        "a = time.monotonic()\n"
        "b = datetime.datetime.now()\n"
        "c = datetime.date.today()\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["wall-clock"] * 3


def test_wall_clock_allows_perf_counter(tmp_path):
    source = "import time\nt0 = time.perf_counter()\nt1 = time.perf_counter_ns()\n"
    assert lint_source(tmp_path, source) == []


def test_strict_clock_bans_perf_counter_in_replay_paths(tmp_path):
    # Inside repro/replay even benchmark-grade timers are divergence bugs.
    replay_dir = tmp_path / "repro" / "replay"
    replay_dir.mkdir(parents=True)
    path = replay_dir / "fixture.py"
    path.write_text(
        "import time\n"
        "a = time.perf_counter()\n"
        "b = time.perf_counter_ns()\n"
        "c = time.process_time()\n"
    )
    errors = lint_repro.lint_file(path, tmp_path)
    assert rules_of(errors) == ["wall-clock"] * 3
    assert "pure function of the recording" in errors[0]


def test_strict_clock_rule_is_suppressible_and_scoped(tmp_path):
    replay_dir = tmp_path / "repro" / "replay"
    replay_dir.mkdir(parents=True)
    allowed = replay_dir / "allowed.py"
    allowed.write_text(
        "import time\nt = time.perf_counter()  # lint: allow-wall-clock\n"
    )
    assert lint_repro.lint_file(allowed, tmp_path) == []
    # ...and the strict rule must not leak outside repro/replay paths.
    outside = tmp_path / "repro" / "bench.py"
    outside.write_text("import time\nt = time.perf_counter()\n")
    assert lint_repro.lint_file(outside, tmp_path) == []


# -- global-random ------------------------------------------------------------
def test_global_random_flags_module_level_draws(tmp_path):
    source = (
        "import random\nimport numpy as np\n"
        "a = random.random()\n"
        "b = random.randint(0, 3)\n"
        "c = np.random.rand(3)\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["global-random"] * 3


def test_global_random_allows_seeded_constructors(tmp_path):
    source = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "x = rng.random()\n"
        "g = np.random.default_rng(7)\n"
        "ss = np.random.SeedSequence(7)\n"
    )
    assert lint_source(tmp_path, source) == []


# -- unseeded-shuffle ---------------------------------------------------------
def test_unseeded_shuffle_gets_its_own_rule(tmp_path):
    # Ordering decisions on the shared RNG outrank plain global-random:
    # they get a dedicated rule name so suppressions stay precise.
    source = (
        "import random\nimport numpy as np\n"
        "random.shuffle([1, 2])\n"
        "x = random.choice([1, 2])\n"
        "y = random.sample([1, 2], 1)\n"
        "np.random.shuffle([1, 2])\n"
        "z = np.random.permutation(3)\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["unseeded-shuffle"] * 5


def test_unseeded_shuffle_allows_seeded_instances(tmp_path):
    source = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "rng.shuffle([1, 2])\n"
        "x = rng.choice([1, 2])\n"
        "g = np.random.default_rng(7)\n"
        "g.shuffle([1, 2])\n"
    )
    assert lint_source(tmp_path, source) == []


# -- mutable-default-arg ------------------------------------------------------
def test_mutable_default_arg_flags_literals_and_comprehensions(tmp_path):
    source = (
        "def f(a, xs=[], m={}, s={1}):\n    pass\n"
        "def g(*, ys=[v for v in (1,)]):\n    pass\n"
        "h = lambda zs={}: zs\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["mutable-default-arg"] * 5


def test_mutable_default_arg_allows_none_and_immutables(tmp_path):
    source = (
        "def f(a, xs=None, t=(1, 2), fs=frozenset({1}), n=0, s='x'):\n"
        "    xs = [] if xs is None else xs\n"
    )
    assert lint_source(tmp_path, source) == []


def test_mutable_default_arg_suppressible(tmp_path):
    source = "def f(xs=[]):  # lint: allow-mutable-default-arg\n    pass\n"
    assert lint_source(tmp_path, source) == []


# -- unsorted-set-iter --------------------------------------------------------
def test_set_iter_flags_literals_calls_and_methods(tmp_path):
    source = (
        "for x in {1, 2}:\n    pass\n"
        "for y in set([3, 4]):\n    pass\n"
        "for z in {1}.union({2}):\n    pass\n"
        "vals = [v for v in frozenset((5,))]\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["unsorted-set-iter"] * 4


def test_set_iter_tracks_local_names_and_set_algebra(tmp_path):
    source = (
        "def f(a, b):\n"
        "    s = set(a) & set(b)\n"
        "    for x in s:\n"
        "        pass\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["unsorted-set-iter"]


def test_set_iter_rebinding_to_non_set_clears_tracking(tmp_path):
    source = (
        "def f(a):\n"
        "    s = set(a)\n"
        "    s = sorted(s)\n"
        "    for x in s:\n"
        "        pass\n"
    )
    assert lint_source(tmp_path, source) == []


def test_set_iter_allows_sorted_wrapper_and_dicts(tmp_path):
    source = (
        "for x in sorted({1, 2}):\n    pass\n"
        "for k in {'a': 1}:\n    pass\n"
        "d = {'a': 1} | {'b': 2}\n"
        "for k in d:\n    pass\n"
    )
    assert lint_source(tmp_path, source) == []


# -- bare-except --------------------------------------------------------------
def test_bare_except_flagged_named_allowed(tmp_path):
    source = (
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept Exception:\n    pass\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["bare-except"]


# -- process-isolation --------------------------------------------------------
def test_process_isolation_flags_mp_imports_and_pid_reads(tmp_path):
    source = (
        "import multiprocessing\n"
        "from multiprocessing import Process\n"
        "from multiprocessing.connection import Connection\n"
        "import os\n"
        "pid = os.getpid()\n"
        "child = os.fork()\n"
    )
    errors = lint_source(tmp_path, source)
    assert rules_of(errors) == ["process-isolation"] * 5
    assert "fixture.py:1" in errors[0]
    assert "host process identity" in errors[-1]


def test_process_isolation_exempts_the_sanctioned_layers(tmp_path):
    source = "import multiprocessing\nimport os\npid = os.getpid()\n"
    for rel in ("repro/shard/procpool.py", "repro/experiments/parallel.py"):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        assert lint_repro.lint_file(path, tmp_path) == []
    # ...but a sibling experiments module gets no exemption.
    other = tmp_path / "repro" / "experiments" / "scaling.py"
    other.write_text(source)
    assert rules_of(lint_repro.lint_file(other, tmp_path)) == (
        ["process-isolation"] * 2
    )


def test_process_isolation_allows_benign_os_calls_and_suppression(tmp_path):
    clean = "import os\nn = os.cpu_count()\npath = os.getcwd()\n"
    assert lint_source(tmp_path, clean) == []
    suppressed = "import os\npid = os.getpid()  # lint: allow-process-isolation\n"
    assert lint_source(tmp_path, suppressed) == []


# -- suppression --------------------------------------------------------------
def test_allow_comment_suppresses_only_named_rule(tmp_path):
    source = (
        "import time\n"
        "t = time.time()  # lint: allow-wall-clock\n"
        "u = time.time()  # lint: allow-unsorted-set-iter\n"
    )
    errors = lint_source(tmp_path, source)
    assert rules_of(errors) == ["wall-clock"]
    assert "fixture.py:3" in errors[0]


def test_allow_comment_on_wrong_line_does_not_suppress(tmp_path):
    # Suppression is strictly per-line: a comment on the line above (or
    # below) the violation must not silence it.
    source = (
        "import time\n"
        "# lint: allow-wall-clock\n"
        "t = time.time()\n"
        "u = time.time()\n"
        "# lint: allow-wall-clock\n"
    )
    errors = lint_source(tmp_path, source)
    assert rules_of(errors) == ["wall-clock"] * 2
    assert "fixture.py:3" in errors[0] and "fixture.py:4" in errors[1]


def test_multiple_rules_fire_and_suppress_on_one_line(tmp_path):
    # One line can violate two rules; one allow comment can name both.
    source = "import time\nvals = [time.time() for v in {1, 2}]\n"
    assert sorted(rules_of(lint_source(tmp_path, source))) == [
        "unsorted-set-iter", "wall-clock",
    ]
    suppressed = (
        "import time\n"
        "vals = [time.time() for v in {1, 2}]"
        "  # lint: allow-wall-clock allow-unsorted-set-iter\n"
    )
    assert lint_source(tmp_path, suppressed) == []


def test_strict_clock_set_matches_nested_replay_paths(tmp_path):
    # The strict-clock rules key on the "repro/replay" path fragment, so
    # the real layout (src/repro/replay/...) must be covered too.
    replay_dir = tmp_path / "src" / "repro" / "replay"
    replay_dir.mkdir(parents=True)
    path = replay_dir / "fixture.py"
    path.write_text(
        "import time\n"
        "a = time.process_time()\n"
        "b = time.thread_time_ns()\n"
    )
    assert rules_of(lint_repro.lint_file(path, tmp_path)) == ["wall-clock"] * 2


# -- protocol wiring ----------------------------------------------------------
def wiring_tree(tmp_path, *, messages=None, kernel=None, statreg=None, extra=None):
    """Build a minimal src/repro tree and run the wiring pass over it."""
    dse = tmp_path / "src" / "repro" / "dse"
    sim = tmp_path / "src" / "repro" / "sim"
    dse.mkdir(parents=True)
    sim.mkdir(parents=True)
    (dse / "messages.py").write_text(messages if messages is not None else (
        "class MsgType(Enum):\n"
        "    GM_READ_REQ = 'gm_read_req'\n"
        "    GM_READ_RSP = 'gm_read_rsp'\n"
        "    PROC_DONE = 'proc_done'\n"
        "_REQUESTS = {t for t in MsgType if t.value.endswith('_req')} | "
        "{MsgType.PROC_DONE}\n"
        "_DATA_CLASS = frozenset({MsgType.GM_READ_REQ, MsgType.GM_READ_RSP})\n"
    ))
    (dse / "kernel.py").write_text(kernel if kernel is not None else (
        "def dispatch(t):\n"
        "    if t is MsgType.GM_READ_REQ: pass\n"
        "    if t is MsgType.PROC_DONE: pass\n"
    ))
    (sim / "statreg.py").write_text(statreg if statreg is not None else (
        "COUNTERS = frozenset({'delivered'})\nTALLIES = frozenset({'rtt'})\n"
    ))
    for name, source in (extra or {}).items():
        (tmp_path / "src" / "repro" / name).write_text(source)
    return lint_repro.lint_wiring(tmp_path)


def test_wiring_clean_fixture_passes(tmp_path):
    assert wiring_tree(tmp_path) == []


def test_wiring_flags_unknown_msgtype_reference(tmp_path):
    errors = wiring_tree(
        tmp_path, extra={"gmem.py": "x = MsgType.GM_RAED_RSP\n"}
    )
    assert rules_of(errors) == ["unknown-msg-type"]
    assert "GM_RAED_RSP" in errors[0]


def test_wiring_flags_unhandled_request_and_oneway(tmp_path):
    errors = wiring_tree(tmp_path, kernel="def dispatch(t):\n    pass\n")
    assert rules_of(errors) == ["unhandled-request"] * 2
    assert "GM_READ_REQ" in errors[0] and "PROC_DONE" in errors[1]


def test_wiring_accepts_register_service_as_handler(tmp_path):
    errors = wiring_tree(
        tmp_path,
        kernel="def dispatch(t):\n    if t is MsgType.GM_READ_REQ: pass\n",
        extra={
            "svc.py": "kernel.register_service(MsgType.PROC_DONE, handler)\n"
        },
    )
    assert errors == []


def test_wiring_flags_split_channel_pair(tmp_path):
    errors = wiring_tree(tmp_path, messages=(
        "class MsgType(Enum):\n"
        "    GM_READ_REQ = 'gm_read_req'\n"
        "    GM_READ_RSP = 'gm_read_rsp'\n"
        "_REQUESTS = {t for t in MsgType if t.value.endswith('_req')}\n"
        "_DATA_CLASS = frozenset({MsgType.GM_READ_REQ})\n"
    ), kernel="def dispatch(t):\n    if t is MsgType.GM_READ_REQ: pass\n")
    assert rules_of(errors) == ["channel-pairing"]
    assert "GM_READ_RSP" in errors[0]


def test_wiring_flags_undeclared_stat_key_and_suppression(tmp_path):
    errors = wiring_tree(tmp_path, extra={
        "gmem.py": (
            "def f(stats):\n"
            "    stats.counter('deliverd').increment()\n"
            "    stats.tally('rtt').record(1)\n"
            "    stats.counter('adhoc').increment()  # lint: allow-unknown-stat-key\n"
        ),
    })
    assert rules_of(errors) == ["unknown-stat-key"]
    assert "'deliverd'" in errors[0]


def test_repo_wiring_is_clean():
    assert lint_repro.lint_wiring(REPO_ROOT) == []


# -- whole-tree gate ----------------------------------------------------------
def test_repo_source_lints_clean():
    targets = [
        REPO_ROOT / "src" / "repro",
        REPO_ROOT / "tools",
        REPO_ROOT / "benchmarks",
    ]
    checked, errors = lint_repro.lint_paths(targets, REPO_ROOT)
    assert checked > 50
    assert errors == []


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_repro.main(["lint_repro.py", str(clean)]) == 0
    assert lint_repro.main(["lint_repro.py", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "1 violation(s)" in out
