"""Tests for tools/lint_repro.py, the determinism lint.

Each rule must fire on a minimal offending fixture and stay silent on
the blessed alternative; the repo's own source must lint clean (that is
the CI gate this tool exists for).
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "lint_repro", REPO_ROOT / "tools" / "lint_repro.py"
)
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)


def lint_source(tmp_path, source):
    """Lint one source string; returns the list of error lines."""
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_repro.lint_file(path, tmp_path)


def rules_of(errors):
    return [err.split("[", 1)[1].split("]", 1)[0] for err in errors]


# -- wall-clock ---------------------------------------------------------------
def test_wall_clock_flags_time_time(tmp_path):
    errors = lint_source(tmp_path, "import time\nt = time.time()\n")
    assert rules_of(errors) == ["wall-clock"]
    assert "fixture.py:2" in errors[0]


def test_wall_clock_flags_monotonic_and_datetime_now(tmp_path):
    source = (
        "import time, datetime\n"
        "a = time.monotonic()\n"
        "b = datetime.datetime.now()\n"
        "c = datetime.date.today()\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["wall-clock"] * 3


def test_wall_clock_allows_perf_counter(tmp_path):
    source = "import time\nt0 = time.perf_counter()\nt1 = time.perf_counter_ns()\n"
    assert lint_source(tmp_path, source) == []


def test_strict_clock_bans_perf_counter_in_replay_paths(tmp_path):
    # Inside repro/replay even benchmark-grade timers are divergence bugs.
    replay_dir = tmp_path / "repro" / "replay"
    replay_dir.mkdir(parents=True)
    path = replay_dir / "fixture.py"
    path.write_text(
        "import time\n"
        "a = time.perf_counter()\n"
        "b = time.perf_counter_ns()\n"
        "c = time.process_time()\n"
    )
    errors = lint_repro.lint_file(path, tmp_path)
    assert rules_of(errors) == ["wall-clock"] * 3
    assert "pure function of the recording" in errors[0]


def test_strict_clock_rule_is_suppressible_and_scoped(tmp_path):
    replay_dir = tmp_path / "repro" / "replay"
    replay_dir.mkdir(parents=True)
    allowed = replay_dir / "allowed.py"
    allowed.write_text(
        "import time\nt = time.perf_counter()  # lint: allow-wall-clock\n"
    )
    assert lint_repro.lint_file(allowed, tmp_path) == []
    # ...and the strict rule must not leak outside repro/replay paths.
    outside = tmp_path / "repro" / "bench.py"
    outside.write_text("import time\nt = time.perf_counter()\n")
    assert lint_repro.lint_file(outside, tmp_path) == []


# -- global-random ------------------------------------------------------------
def test_global_random_flags_module_level_draws(tmp_path):
    source = (
        "import random\nimport numpy as np\n"
        "a = random.random()\n"
        "b = random.shuffle([1])\n"
        "c = np.random.rand(3)\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["global-random"] * 3


def test_global_random_allows_seeded_constructors(tmp_path):
    source = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "x = rng.random()\n"
        "g = np.random.default_rng(7)\n"
        "ss = np.random.SeedSequence(7)\n"
    )
    assert lint_source(tmp_path, source) == []


# -- unsorted-set-iter --------------------------------------------------------
def test_set_iter_flags_literals_calls_and_methods(tmp_path):
    source = (
        "for x in {1, 2}:\n    pass\n"
        "for y in set([3, 4]):\n    pass\n"
        "for z in {1}.union({2}):\n    pass\n"
        "vals = [v for v in frozenset((5,))]\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["unsorted-set-iter"] * 4


def test_set_iter_tracks_local_names_and_set_algebra(tmp_path):
    source = (
        "def f(a, b):\n"
        "    s = set(a) & set(b)\n"
        "    for x in s:\n"
        "        pass\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["unsorted-set-iter"]


def test_set_iter_rebinding_to_non_set_clears_tracking(tmp_path):
    source = (
        "def f(a):\n"
        "    s = set(a)\n"
        "    s = sorted(s)\n"
        "    for x in s:\n"
        "        pass\n"
    )
    assert lint_source(tmp_path, source) == []


def test_set_iter_allows_sorted_wrapper_and_dicts(tmp_path):
    source = (
        "for x in sorted({1, 2}):\n    pass\n"
        "for k in {'a': 1}:\n    pass\n"
        "d = {'a': 1} | {'b': 2}\n"
        "for k in d:\n    pass\n"
    )
    assert lint_source(tmp_path, source) == []


# -- bare-except --------------------------------------------------------------
def test_bare_except_flagged_named_allowed(tmp_path):
    source = (
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept Exception:\n    pass\n"
    )
    assert rules_of(lint_source(tmp_path, source)) == ["bare-except"]


# -- suppression --------------------------------------------------------------
def test_allow_comment_suppresses_only_named_rule(tmp_path):
    source = (
        "import time\n"
        "t = time.time()  # lint: allow-wall-clock\n"
        "u = time.time()  # lint: allow-unsorted-set-iter\n"
    )
    errors = lint_source(tmp_path, source)
    assert rules_of(errors) == ["wall-clock"]
    assert "fixture.py:3" in errors[0]


# -- whole-tree gate ----------------------------------------------------------
def test_repo_source_lints_clean():
    targets = [
        REPO_ROOT / "src" / "repro",
        REPO_ROOT / "tools",
        REPO_ROOT / "benchmarks",
    ]
    checked, errors = lint_repro.lint_paths(targets, REPO_ROOT)
    assert checked > 50
    assert errors == []


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_repro.main(["lint_repro.py", str(clean)]) == 0
    assert lint_repro.main(["lint_repro.py", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "1 violation(s)" in out
