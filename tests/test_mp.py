"""Tests for the PVM/MPI-style message-passing baseline."""

import numpy as np
import pytest

from repro.apps import make_system
from repro.dse import ClusterConfig
from repro.errors import ConfigurationError
from repro.hardware import get_platform
from repro.mp import MAX, SUM, gauss_seidel_mp_worker, run_mp


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def test_send_recv_pair():
    def worker(comm):
        if comm.rank == 0:
            yield from comm.send(1, {"x": 1}, 64)
            return "sent"
        if comm.rank == 1:
            msg = yield from comm.recv(src=0)
            return msg
        yield from comm.barrier()
        return None

    # Only 2 ranks to keep the barrier out of the exchange.
    res = run_mp(cfg(2), worker)
    assert res.returns[1] == {"x": 1}


def test_recv_filters_by_source_and_tag():
    def worker(comm):
        if comm.rank == 0:
            yield from comm.send(2, "from0-t5", 16, tag=5)
        elif comm.rank == 1:
            yield from comm.send(2, "from1-t9", 16, tag=9)
        else:
            a = yield from comm.recv(tag=9)
            b = yield from comm.recv(src=0, tag=5)
            return (a, b)
        return None

    res = run_mp(cfg(3), worker)
    assert res.returns[2] == ("from1-t9", "from0-t5")


def test_barrier_synchronises():
    def worker(comm):
        yield from comm.socket.proc.compute_seconds(0.001 * comm.rank)
        yield from comm.barrier()
        return comm.socket.proc.sim.now

    res = run_mp(cfg(4), worker)
    times = list(res.returns.values())
    assert max(times) - min(times) < 0.3 * max(times)


def test_barrier_reusable():
    def worker(comm):
        for _ in range(3):
            yield from comm.barrier()
        return True

    res = run_mp(cfg(3), worker)
    assert all(res.returns.values())


def test_bcast():
    def worker(comm):
        data = [1, 2, 3] if comm.rank == 0 else None
        data = yield from comm.bcast(data, nbytes=24, root=0)
        return data

    res = run_mp(cfg(4), worker)
    assert all(v == [1, 2, 3] for v in res.returns.values())


def test_bcast_nonzero_root():
    def worker(comm):
        data = "root2" if comm.rank == 2 else None
        return (yield from comm.bcast(data, nbytes=5, root=2))

    res = run_mp(cfg(4), worker)
    assert all(v == "root2" for v in res.returns.values())


def test_gather_in_rank_order():
    def worker(comm):
        return (yield from comm.gather(comm.rank * 10, nbytes=8, root=0))

    res = run_mp(cfg(4), worker)
    assert res.returns[0] == [0, 10, 20, 30]
    assert all(res.returns[r] is None for r in range(1, 4))


def test_scatter():
    def worker(comm):
        items = [f"item{r}" for r in range(comm.size)] if comm.rank == 0 else None
        return (yield from comm.scatter(items, nbytes=8, root=0))

    res = run_mp(cfg(4), worker)
    assert res.returns == {r: f"item{r}" for r in range(4)}


def test_scatter_requires_items_at_root():
    def worker(comm):
        if comm.rank == 0:
            # wrong length (3 items for 2 ranks): rejected before any send
            with pytest.raises(ConfigurationError):
                yield from comm.scatter([1, 2, 3], nbytes=8, root=0)
        yield from comm.barrier()
        return True

    res = run_mp(cfg(2), worker)
    assert all(res.returns.values())


def test_reduce_sum_and_max():
    def worker(comm):
        s = yield from comm.reduce(comm.rank + 1, nbytes=8, op=SUM, root=0, tag=40)
        m = yield from comm.reduce(comm.rank + 1, nbytes=8, op=MAX, root=0, tag=50)
        return (s, m)

    res = run_mp(cfg(4), worker)
    assert res.returns[0] == (10, 4)


def test_allgather_everyone_gets_everything():
    def worker(comm):
        return (yield from comm.allgather(comm.rank**2, nbytes=8))

    res = run_mp(cfg(4), worker)
    assert all(v == [0, 1, 4, 9] for v in res.returns.values())


def test_allreduce():
    def worker(comm):
        return (yield from comm.allreduce(1, nbytes=8, op=SUM))

    res = run_mp(cfg(5), worker)
    assert all(v == 5 for v in res.returns.values())


def test_invalid_rank_rejected():
    def worker(comm):
        with pytest.raises(ConfigurationError):
            yield from comm.send(99, None, 1)
        return True

    res = run_mp(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_unknown_reduce_op_rejected():
    def worker(comm):
        with pytest.raises(ConfigurationError):
            yield from comm.reduce(1, nbytes=8, op="xor")
        return True

    res = run_mp(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_mp_gauss_seidel_converges():
    res = run_mp(cfg(3), gauss_seidel_mp_worker, args=(50, 25))
    a, b = make_system(50)
    truth = np.linalg.solve(a, b)
    for out in res.returns.values():
        assert np.allclose(out["x"], truth, atol=1e-6)


def test_mp_gauss_seidel_matches_dse_numerics():
    """Same partitioning and update rule: MP and DSE solutions identical."""
    from repro.apps import gauss_seidel_worker
    from repro.dse import run_parallel

    mp_res = run_mp(cfg(3), gauss_seidel_mp_worker, args=(40, 8))
    dse_res = run_parallel(cfg(3), gauss_seidel_worker, args=(40, 8))
    assert np.allclose(mp_res.returns[0]["x"], dse_res.returns[0]["x"], atol=1e-12)


def test_mp_deterministic():
    def worker(comm):
        v = yield from comm.allreduce(comm.rank, nbytes=8)
        return (v, comm.socket.proc.sim.now)

    r1 = run_mp(cfg(4), worker)
    r2 = run_mp(cfg(4), worker)
    assert r1.returns == r2.returns
