"""Event.cancel() interacting with conditions, kill(), and the Timeout pool.

The engine deletes cancelled events *lazily* — the heap slot is nulled and
the object may be recycled — so these tests pin the safety properties that
lazy deletion must preserve: a cancelled event never resurrects a waiter,
never runs a stale callback, and never leaks a registration on another
event's callback list.
"""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator


# -- cancel vs AllOf/AnyOf ----------------------------------------------------
def test_anyof_fires_when_other_child_cancelled():
    sim = Simulator()
    e = Event(sim)
    t = sim.timeout(10.0)
    cond = AnyOf(sim, [e, t])
    done = []

    def proc():
        done.append((yield cond))

    sim.process(proc())
    e.succeed("winner")
    t.cancel()  # superseded timer: must not hang or resurrect anything
    sim.run_all()
    assert done and done[0][e] == "winner"
    assert sim.now == 0.0  # the 10s timer never dispatched


def test_cancelled_child_never_triggers_anyof():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    t2 = sim.timeout(5.0)
    cond = AnyOf(sim, [t1, t2])
    t1.cancel()
    sim.run_all()
    # Only the surviving child can fire the condition, at its own time.
    # (A cancelled Timeout still *reads* as triggered — its value is set at
    # construction — which is why the cancel contract is owner-only.)
    assert cond.triggered and cond.ok
    assert sim.now == 5.0
    assert t2 in cond.value


def test_allof_with_cancelled_child_never_resurrects():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    t2 = sim.timeout(2.0)
    cond = AllOf(sim, [t1, t2])
    t2.cancel()
    sim.run_all()
    # t2 will never trigger, so the AllOf stays pending forever — but it
    # must not half-fire, and the queue must drain cleanly.
    assert not cond.triggered
    assert sim.now == 1.0


def test_cancel_drops_condition_callback_without_leak():
    sim = Simulator()
    e = Event(sim)
    t = sim.timeout(3.0)
    AnyOf(sim, [e, t])
    assert len(t.callbacks) == 1  # the condition's _check registration
    t.cancel()
    assert t.callbacks is None  # registration gone with the event
    e.succeed("v")
    sim.run_all()
    assert sim.now == 0.0


def test_recycled_timeout_cannot_resurrect_condition():
    sim = Simulator()
    t = sim.timeout(1.0)
    cond = AnyOf(sim, [t])
    t.cancel()
    # The pool re-arms the same object for an unrelated purpose; the old
    # condition must not observe its completion.
    t2 = sim.timeout(0.5, value="other")
    assert t2 is t
    sim.run_all()
    assert not cond.triggered
    assert sim.now == 0.5


# -- cancel vs Process.kill ----------------------------------------------------
def test_kill_removes_waiter_registration():
    sim = Simulator()
    gate = Event(sim)

    def waiter():
        yield gate

    p = sim.process(waiter())
    sim.run(until=0.0)  # let it reach the yield
    assert len(gate.callbacks) == 1
    p.kill()
    assert gate.callbacks == []  # no leaked callback
    gate.succeed("late")
    sim.run_all()
    assert p.triggered and p.ok  # killed quietly, not resumed by the gate


def test_kill_process_waiting_on_cancelled_timeout():
    sim = Simulator()
    hold = sim.timeout(4.0)

    def waiter():
        yield hold

    p = sim.process(waiter())
    sim.run(until=0.0)
    hold.cancel()  # waiter is now stranded on a dead event
    p.kill()  # must not raise despite target.callbacks is None
    sim.run_all()
    assert p.triggered and p.ok
    assert sim.now == 0.0


def test_kill_runs_finally_blocks():
    sim = Simulator()
    cleaned = []

    def waiter():
        try:
            yield sim.timeout(10.0)
        finally:
            cleaned.append(True)

    p = sim.process(waiter())
    sim.run(until=0.0)
    p.kill()
    assert cleaned == [True]


def test_kill_then_interrupt_is_error():
    sim = Simulator()

    def waiter():
        yield sim.timeout(1.0)

    p = sim.process(waiter())
    sim.run(until=0.0)
    p.kill()
    with pytest.raises(RuntimeError):
        p.interrupt("too late")


def test_cancel_unscheduled_and_double_cancel_are_noops():
    sim = Simulator()
    e = Event(sim)
    e.cancel()  # never scheduled: no-op
    assert sim.events_cancelled == 0
    t = sim.timeout(1.0)
    t.cancel()
    t.cancel()  # second cancel: no-op, not double-counted
    assert sim.events_cancelled == 1


def test_cancelled_event_visible_in_census_counter():
    sim = Simulator()
    for _ in range(3):
        sim.timeout(1.0).cancel()
    sim.timeout(2.0)
    sim.run_all()
    assert sim.events_cancelled == 3
    assert sim.events_processed == 1
