"""Property-based tests for the DSM: random operation sequences against a
plain numpy mirror, under both coherence policies."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dse import Cluster, ClusterConfig, ParallelAPI
from repro.hardware import get_platform
from repro.protocol import fragment_sizes
from repro.protocol.packet import UDP_HEADER_BYTES

TOTAL_WORDS = 2048
BLOCK_WORDS = 32


def _op_strategy():
    addr = st.integers(min_value=0, max_value=TOTAL_WORDS - 1)
    count = st.integers(min_value=1, max_value=64)
    kind = st.sampled_from(["read", "write"])
    return st.tuples(kind, addr, count)


def _run_ops(policy, ops):
    """Drive random reads/writes from the master; mirror with numpy."""
    config = ClusterConfig(
        platform=get_platform("linux"),
        n_processors=3,
        coherence=policy,
        total_gm_words=TOTAL_WORDS,
        block_words=BLOCK_WORDS,
    )
    cluster = Cluster(config)
    mirror = np.zeros(TOTAL_WORDS)
    mismatches = []

    def master():
        api = ParallelAPI(cluster.kernel(0), 0)
        counter = 0.0
        for kind, addr, count in ops:
            count = min(count, TOTAL_WORDS - addr)
            if kind == "write":
                counter += 1.0
                values = np.arange(count, dtype=float) + counter
                yield from api.gm_write(addr, values)
                mirror[addr : addr + count] = values
            else:
                data = yield from api.gm_read(addr, count)
                if not np.array_equal(data, mirror[addr : addr + count]):
                    mismatches.append((kind, addr, count))
        yield from cluster.shutdown_from(0)

    cluster.sim.process(master())
    cluster.sim.run_all()
    return mismatches


@given(ops=st.lists(_op_strategy(), min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_home_policy_matches_numpy_mirror(ops):
    assert _run_ops("home", ops) == []


@given(ops=st.lists(_op_strategy(), min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_cache_policy_matches_numpy_mirror(ops):
    assert _run_ops("cache", ops) == []


@given(
    addr=st.integers(min_value=0, max_value=TOTAL_WORDS - 1),
    count=st.integers(min_value=1, max_value=TOTAL_WORDS),
)
@settings(max_examples=100, deadline=None)
def test_home_runs_partition_exactly(addr, count):
    """home_runs must partition [addr, addr+count) with no gaps/overlaps
    and consistent home assignment."""
    count = min(count, TOTAL_WORDS - addr)
    cluster = Cluster(
        ClusterConfig(
            platform=get_platform("linux"),
            n_processors=4,
            total_gm_words=TOTAL_WORDS,
            block_words=BLOCK_WORDS,
        )
    )
    gm = cluster.kernel(0).gmem
    runs = gm.home_runs(addr, count)
    pos = addr
    for home, start, n in runs:
        assert start == pos and n > 0
        assert gm.home_of(start) == home
        assert gm.home_of(start + n - 1) == home
        pos += n
    assert pos == addr + count
    # adjacent runs have different homes (maximal coalescing)
    for (h1, _, _), (h2, _, _) in zip(runs, runs[1:]):
        assert h1 != h2


@given(payload=st.integers(min_value=0, max_value=200_000))
@settings(max_examples=200)
def test_fragment_sizes_properties(payload):
    sizes = fragment_sizes(payload)
    assert sum(sizes) == payload or (payload == 0 and sizes == [0])
    usable = 1500 - UDP_HEADER_BYTES
    assert all(0 <= s <= usable for s in sizes)
    # minimal fragment count
    import math

    expected = max(1, math.ceil(payload / usable))
    assert len(sizes) == expected
