"""Tests for the go-back-N windowed reliable transport + fault injection."""

import pytest

from repro.errors import NetworkError, ProtocolError
from repro.network import EthernetBus, LossInjector, NIC
from repro.protocol import DatagramService, WindowedReliableService, make_transport
from repro.sim import RandomStreams, Simulator


def make_pair(sim, window=8, timeout=0.01, seed=7):
    bus = EthernetBus(sim, RandomStreams(seed))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    a = WindowedReliableService(
        sim, DatagramService(sim, nic_a), window=window, retransmit_timeout=timeout
    )
    b = WindowedReliableService(
        sim, DatagramService(sim, nic_b), window=window, retransmit_timeout=timeout
    )
    return a, b, nic_a, nic_b


def test_basic_stream_in_order():
    sim = Simulator()
    a, b, *_ = make_pair(sim)
    mbox = b.bind(4)

    def sender():
        for i in range(20):
            yield from a.send(1, 4, i, 32)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(20):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == list(range(20))


def test_window_limits_in_flight():
    """With window=2, the third send must wait for an acknowledgement."""
    sim = Simulator()
    a, b, *_ = make_pair(sim, window=2)
    b.bind(4)
    sent_times = []

    def sender():
        for i in range(4):
            yield from a.send(1, 4, i, 32)
            sent_times.append(sim.now)
        yield from a.flush(1, 4)

    sim.run(sim.process(sender()))
    # First two enter the window back-to-back; the third waits for an ack
    # (at least one wire round trip, ~150us at 10 Mbit/s, later).
    assert sent_times[1] - sent_times[0] < 0.00005
    assert sent_times[2] - sent_times[1] > 0.0001


def test_flush_waits_for_all_acks():
    sim = Simulator()
    a, b, *_ = make_pair(sim)
    b.bind(4)

    def sender():
        for i in range(5):
            yield from a.send(1, 4, i, 64)
        before = a._streams[(1, 4)].in_flight
        yield from a.flush(1, 4)
        after = a._streams[(1, 4)].in_flight
        return before, after

    before, after = sim.run(sim.process(sender()))
    assert before > 0
    assert after == 0


def test_recovers_from_lossy_link():
    """10% frame drop: every message still arrives exactly once, in order."""
    sim = Simulator()
    a, b, nic_a, nic_b = make_pair(sim, window=4, timeout=0.005)
    mbox = b.bind(4)
    injector = LossInjector(
        sim, nic_b, RandomStreams(99), drop_rate=0.10,
        predicate=lambda f: getattr(f.payload.packet.payload, "kind", "") == "data",
    )
    injector.arm()
    n = 40

    def sender():
        for i in range(n):
            yield from a.send(1, 4, i, 32)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(n):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    got = sim.run(sim.process(receiver()))
    assert got == list(range(n))
    assert injector.stats.counter("dropped").value > 0
    assert a.stats.counter("retransmissions").value > 0


def test_recovers_from_lost_acks():
    sim = Simulator()
    a, b, nic_a, nic_b = make_pair(sim, window=4, timeout=0.005)
    mbox = b.bind(4)
    injector = LossInjector(
        sim, nic_a, RandomStreams(5), drop_rate=0.3,
        predicate=lambda f: getattr(f.payload.packet.payload, "kind", "") == "ack",
    )
    injector.arm()
    n = 20

    def sender():
        for i in range(n):
            yield from a.send(1, 4, i, 32)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(n):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    got = sim.run(sim.process(receiver()))
    assert got == list(range(n))
    assert b.stats.counter("delivered").value == n


def test_duplicate_frames_suppressed():
    sim = Simulator()
    a, b, nic_a, nic_b = make_pair(sim)
    mbox = b.bind(4)
    injector = LossInjector(sim, nic_b, RandomStreams(3), duplicate_rate=0.5)
    injector.arm()
    n = 15

    def sender():
        for i in range(n):
            yield from a.send(1, 4, i, 32)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(n):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    got = sim.run(sim.process(receiver()))
    sim.run_all()
    assert got == list(range(n))
    assert len(mbox) == 0  # no extra deliveries queued
    assert injector.stats.counter("duplicated").value > 0


def test_delayed_frames_still_ordered():
    sim = Simulator()
    a, b, nic_a, nic_b = make_pair(sim, window=4, timeout=0.004)
    mbox = b.bind(4)
    injector = LossInjector(
        sim, nic_b, RandomStreams(11), delay_rate=0.3, delay_seconds=0.01
    )
    injector.arm()
    n = 15

    def sender():
        for i in range(n):
            yield from a.send(1, 4, i, 32)
        yield from a.flush(1, 4)

    def receiver():
        got = []
        for _ in range(n):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    got = sim.run(sim.process(receiver()))
    assert got == list(range(n))


def test_stalled_stream_raises_after_max_retries():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    a = WindowedReliableService(
        sim, DatagramService(sim, nic_a), retransmit_timeout=0.001, max_retries=3
    )
    b = WindowedReliableService(sim, DatagramService(sim, nic_b))
    b.bind(4)
    nic_b.on_receive(lambda frame: None)  # black hole

    def sender():
        yield from a.send(1, 4, "void", 32)
        yield from a.flush(1, 4)

    sim.process(sender())
    with pytest.raises(ProtocolError, match="stalled"):
        sim.run_all()


def test_two_streams_independent():
    sim = Simulator()
    a, b, *_ = make_pair(sim)
    m4, m5 = b.bind(4), b.bind(5)

    def sender():
        for i in range(5):
            yield from a.send(1, 4, ("p4", i), 16)
            yield from a.send(1, 5, ("p5", i), 16)
        yield from a.flush(1, 4)
        yield from a.flush(1, 5)

    def receiver(mbox, label):
        got = []
        for _ in range(5):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    g4 = sim.process(receiver(m4, "p4"))
    g5 = sim.process(receiver(m5, "p5"))
    assert sim.run(g4) == [("p4", i) for i in range(5)]
    assert sim.run(g5) == [("p5", i) for i in range(5)]


def test_window_validation():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic = NIC(sim, bus, 0)
    with pytest.raises(ProtocolError):
        WindowedReliableService(sim, DatagramService(sim, nic), window=0)


def test_make_transport_gbn():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic = NIC(sim, bus, 0)
    t = make_transport(sim, nic, "reliable-gbn")
    assert isinstance(t, WindowedReliableService)


def test_injector_arm_disarm():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    b = DatagramService(sim, nic_b)
    a = DatagramService(sim, nic_a)
    mbox = b.bind(1)
    injector = LossInjector(sim, nic_b, RandomStreams(1), drop_rate=1.0)
    injector.arm()
    injector.arm()  # idempotent

    def send_one(tag):
        yield from a.send(1, 1, tag, 8)

    sim.process(send_one("lost"))
    sim.run_all()
    assert len(mbox) == 0
    injector.disarm()
    sim.process(send_one("through"))
    sim.run_all()
    assert len(mbox) == 1


def test_injector_rate_validation():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic = NIC(sim, bus, 0)
    with pytest.raises(NetworkError):
        LossInjector(sim, nic, RandomStreams(0), drop_rate=1.5)
