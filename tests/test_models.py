"""Model-vs-simulation validation for the analytic performance model."""

import pytest

from repro.apps import gauss_seidel_worker
from repro.experiments import sweep_processors
from repro.experiments.models import (
    barrier_cost,
    colocation_factor,
    message_cost,
    predict_gauss_seidel,
)
from repro.hardware import LINUX_PCAT, SUNOS_SPARCSTATION, get_platform

PROCS = (1, 2, 4, 6, 8, 12)


def test_colocation_factor_shape():
    assert colocation_factor(1, 6, LINUX_PCAT) == 1.0
    assert colocation_factor(6, 6, LINUX_PCAT) == 1.0
    f8 = colocation_factor(8, 6, LINUX_PCAT)
    f12 = colocation_factor(12, 6, LINUX_PCAT)
    assert f8 == f12 > 2.0  # two kernels per machine + tax
    assert colocation_factor(13, 6, LINUX_PCAT) > f12  # three on some machine


def test_message_cost_monotone_in_size_and_platform():
    small = message_cost(SUNOS_SPARCSTATION, 64)
    large = message_cost(SUNOS_SPARCSTATION, 8000)
    assert large > small
    assert message_cost(SUNOS_SPARCSTATION, 64) > message_cost(LINUX_PCAT, 64)


def test_message_cost_in_millisecond_ballpark():
    """1999 user-level UDP round trips were ~1-3 ms on SunOS."""
    rt = message_cost(SUNOS_SPARCSTATION, 64)
    assert 0.5e-3 < rt < 5e-3


def test_barrier_cost_grows_with_parties():
    assert barrier_cost(LINUX_PCAT, 1) == 0.0
    assert barrier_cost(LINUX_PCAT, 12) > barrier_cost(LINUX_PCAT, 4)


@pytest.mark.parametrize("platform_key", ["sunos", "linux"])
@pytest.mark.parametrize("n", [100, 900])
def test_model_tracks_simulation(platform_key, n):
    """The closed-form prediction stays within 3x of the simulator at
    every point, and much closer where compute dominates."""
    platform = get_platform(platform_key)
    model = predict_gauss_seidel(platform, n, 5, PROCS)
    sim = {
        m.n_processors: m.elapsed
        for m in sweep_processors(
            platform, gauss_seidel_worker, (n, 5, 7, False), PROCS
        )
    }
    for p in PROCS:
        ratio = model[p] / sim[p]
        assert 1 / 3 < ratio < 3, (p, model[p], sim[p])
    # Sequential point: near-exact (the simulator adds small local
    # global-memory access costs the model omits).
    assert model[1] == pytest.approx(sim[1], rel=0.10)


def test_model_predicts_the_knee():
    """Both model and simulation put the N=900 optimum at 4-6 processors
    and agree that 12 is worse than the optimum."""
    platform = get_platform("sunos")
    model = predict_gauss_seidel(platform, 900, 5, PROCS)
    best = min(model, key=model.get)
    assert best in (4, 6)
    assert model[12] > model[best]


def test_model_predicts_small_n_collapse():
    platform = get_platform("linux")
    model = predict_gauss_seidel(platform, 100, 5, PROCS)
    assert model[6] > model[1]  # parallelising n=100 is a net loss
