"""Property-based tests for the simulation engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.osmodel import ProcessorSharingCPU
from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.process(proc(d))
    sim.run_all()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(
    demands=st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=12)
)
@settings(max_examples=50, deadline=None)
def test_processor_sharing_conservation(demands):
    """PS invariants: every job takes at least its demand; total elapsed is
    at least the sum of demands (one CPU) and at most sum * (1 + tiny)."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)  # no context-switch tax
    completions = []

    def proc(d):
        yield cpu.execute(d)
        completions.append((d, sim.now))

    for d in demands:
        sim.process(proc(d))
    sim.run_all()
    assert len(completions) == len(demands)
    for demand, done_at in completions:
        assert done_at >= demand - 1e-9
    total = sum(demands)
    assert abs(sim.now - total) < 1e-6 * max(1.0, total)
    assert cpu.load == 0


@given(
    demands=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_processor_sharing_srpt_order(demands, seed):
    """With simultaneous arrival and equal sharing, shorter jobs always
    finish no later than longer ones."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)
    done = {}

    def proc(i, d):
        yield cpu.execute(d)
        done[i] = sim.now

    for i, d in enumerate(demands):
        sim.process(proc(i, d))
    sim.run_all()
    order = sorted(range(len(demands)), key=lambda i: demands[i])
    for a, b in zip(order, order[1:]):
        assert done[a] <= done[b] + 1e-9


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_store_fifo_property(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.1)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run_all()
    assert got == items


@given(
    capacity=st.integers(min_value=1, max_value=5),
    n_users=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(capacity, n_users):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = 0

    def user():
        nonlocal max_seen
        req = res.request()
        yield req
        max_seen = max(max_seen, res.count)
        yield sim.timeout(1.0)
        res.release(req)

    for _ in range(n_users):
        sim.process(user())
    sim.run_all()
    assert max_seen <= capacity
    assert res.count == 0
    assert res.total_requests == n_users
