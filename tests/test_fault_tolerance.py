"""End-to-end fault tolerance: whole DSE applications on a lossy LAN.

The DSE default transport is a datagram service (like the original's UDP
path) — fine on a healthy LAN, where the MAC layer's collision handling
is the only repair needed.  On a *lossy* LAN the reliable transports must
carry a complete application run to the correct result.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel_worker, make_system
from repro.dse import Cluster, ClusterConfig, ParallelAPI
from repro.hardware import get_platform
from repro.network import LossInjector
from repro.sim import RandomStreams


def run_lossy(transport: str, drop_rate: float, n=30, sweeps=6, p=3):
    """Run parallel Gauss-Seidel with every NIC dropping frames."""
    config = ClusterConfig(
        platform=get_platform("linux"), n_processors=p, transport=transport
    )
    cluster = Cluster(config)
    injectors = []
    for nic in cluster.network.nics.values():
        injector = LossInjector(
            cluster.sim, nic, RandomStreams(77 + nic.station_id), drop_rate=drop_rate
        )
        injector.arm()
        injectors.append(injector)
    out = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        handles = yield from api.spawn_workers(
            gauss_seidel_worker, args_of=lambda r: (n, sweeps)
        )
        mine = yield from gauss_seidel_worker(api, n, sweeps)
        results = yield from api.wait_workers(handles)
        results[0] = mine
        out["returns"] = results
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all(max_events=5_000_000)
    dropped = sum(i.stats.counter("dropped").value for i in injectors)
    return out["returns"], dropped, cluster


@pytest.mark.parametrize("transport", ["reliable", "reliable-gbn"])
def test_application_survives_frame_loss(transport):
    returns, dropped, _ = run_lossy(transport, drop_rate=0.05)
    assert dropped > 0, "the injector should actually have dropped frames"
    a, b = make_system(30)
    truth = np.linalg.solve(a, b)
    for rank, out in returns.items():
        assert np.allclose(out["x"], truth, atol=1e-4), f"rank {rank} corrupted"


def test_reliable_transports_work_lossless_too():
    returns, dropped, _ = run_lossy("reliable", drop_rate=0.0)
    assert dropped == 0
    assert len(returns) == 3


def test_loss_costs_time():
    """Retransmission delays show up as longer simulated runs."""

    def elapsed(drop_rate):
        returns, _, cluster = run_lossy("reliable", drop_rate=drop_rate)
        return max(r["t1"] - r["t0"] for r in returns.values())

    assert elapsed(0.05) > elapsed(0.0)


def test_datagram_faster_than_reliable_on_clean_network():
    """The transport ablation: acks cost time, which is why DSE (like the
    original) defaults to the datagram path on a healthy LAN."""

    def elapsed(transport):
        returns, _, _ = run_lossy(transport, drop_rate=0.0)
        return max(r["t1"] - r["t0"] for r in returns.values())

    assert elapsed("datagram") < elapsed("reliable")
