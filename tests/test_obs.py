"""Tests for the cross-layer observability subsystem (repro.obs).

Covers the tentpole's hard requirements:

* determinism — tracing must not perturb simulated time or results;
* causality — one remote global-memory read is a single connected span
  tree crossing the DSE, OS, protocol, and link layers on both machines;
* export — the Chrome trace JSON is well-formed;
* metrics — the periodic sampler produces ring-buffered series without
  preventing the event queue from draining.
"""

import io
import json

import pytest

from repro.dse import ClusterConfig, run_master, run_parallel
from repro.hardware import get_platform
from repro.network.ethernet import EthernetBus, SEND_OK
from repro.network.frame import EthernetFrame
from repro.obs import (
    MetricsSampler,
    NET_TID,
    SpanRecorder,
    TraceContext,
    chrome_trace_json,
    metrics_rows,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.sim import Simulator
from repro.sim.monitor import StatSet
from repro.sim.rng import RandomStreams


# ---------------------------------------------------------------------------
# recorder unit behaviour
# ---------------------------------------------------------------------------


def test_recorder_disabled_records_nothing_via_guard():
    rec = SpanRecorder(enabled=False)
    # Instrumentation sites guard on .enabled; the recorder itself still
    # works if called, so the guard is the only thing between us and cost.
    assert rec.enabled is False
    assert rec.spans == []


def test_span_parenting_and_trace_grouping():
    rec = SpanRecorder(enabled=True)
    root = rec.begin(0.0, "api.gm_read", "api", 0, 100, None)
    child = rec.begin(0.1, "rpc:gm_read_req", "dse", 0, 100, root.ctx)
    other = rec.begin(0.2, "api.gm_write", "api", 1, 101, None)
    rec.end(child, 0.3)
    rec.end(root, 0.4)
    assert root.ctx.trace_id != other.ctx.trace_id
    assert child.ctx.trace_id == root.ctx.trace_id
    assert child.parent_id == root.ctx.span_id
    assert rec.roots() == [root, other]
    assert rec.trace(root.ctx.trace_id) == [root, child]
    assert root.duration == pytest.approx(0.4)


def test_span_limit_counts_drops():
    rec = SpanRecorder(enabled=True, limit=2)
    for i in range(5):
        rec.begin(float(i), f"s{i}", "t", 0, 0, None)
    assert len(rec.spans) == 2
    assert rec.dropped == 3
    rec.clear()
    assert rec.spans == [] and rec.dropped == 0


def test_instant_has_zero_duration_and_i_phase():
    rec = SpanRecorder(enabled=True)
    root = rec.begin(0.0, "r", "t", 0, 0, None)
    mark = rec.instant(0.5, "sigio", "os", 0, 0, root.ctx)
    assert mark.phase == "i"
    assert mark.duration == 0.0
    assert mark.parent_id == root.ctx.span_id


# ---------------------------------------------------------------------------
# determinism: tracing must not perturb the simulation
# ---------------------------------------------------------------------------


def _gs_run(**obs_kwargs):
    from repro.apps.gauss_seidel import gauss_seidel_worker

    config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=3, **obs_kwargs
    )
    return run_parallel(config, gauss_seidel_worker, args=(48, 2, 7, True))


def test_tracing_does_not_perturb_virtual_time_or_results():
    base = _gs_run()
    traced = _gs_run(obs_trace=True)
    # Span tracing adds no simulation events: bit-identical virtual clocks.
    assert traced.elapsed == base.elapsed
    assert traced.cluster.sim.now == base.cluster.sim.now
    for rank in base.returns:
        assert traced.returns[rank]["t0"] == base.returns[rank]["t0"]
        assert traced.returns[rank]["t1"] == base.returns[rank]["t1"]
        assert traced.returns[rank]["residual"] == base.returns[rank]["residual"]
    # ...and the traced run actually recorded something.
    assert len(traced.cluster.obs.spans) > 0
    assert base.cluster.obs.spans == []


def test_metrics_sampler_does_not_perturb_workload_timing():
    """The sampler adds its own clock ticks (final sim.now may land on the
    last tick) but must never change what the application observes."""
    base = _gs_run()
    sampled = _gs_run(obs_trace=True, obs_metrics_interval=0.0005)
    assert sampled.elapsed == base.elapsed
    for rank in base.returns:
        assert sampled.returns[rank]["t0"] == base.returns[rank]["t0"]
        assert sampled.returns[rank]["t1"] == base.returns[rank]["t1"]
        assert sampled.returns[rank]["residual"] == base.returns[rank]["residual"]
    assert sampled.cluster.metrics.samples_taken > 0


# ---------------------------------------------------------------------------
# causality: one remote read = one connected cross-layer tree
# ---------------------------------------------------------------------------


def _remote_read_master(api):
    addr = api.home_base(1)  # homed on the *other* kernel
    yield from api.gm_write(addr, [4.0, 5.0])
    data = yield from api.gm_read(addr, 2)
    return float(data.sum())


def remote_read_run(**kwargs):
    config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=2, obs_trace=True, **kwargs
    )
    return run_master(config, _remote_read_master)


def test_remote_read_is_one_connected_span_tree():
    result = remote_read_run()
    assert result.returns[0] == 9.0
    obs = result.cluster.obs
    read_roots = [s for s in obs.roots() if s.name == "api.gm_read"]
    assert len(read_roots) == 1
    tree = obs.trace(read_roots[0].ctx.trace_id)
    # Every span in the trace reaches the root through parent links.
    by_id = {s.ctx.span_id: s for s in tree}
    for span in tree:
        node = span
        while node.parent_id is not None:
            node = by_id[node.parent_id]
        assert node is read_roots[0]
    names = [s.name for s in tree]
    # The full request path crosses every layer...
    for expected in (
        "api.gm_read", "rpc:gm_read_req", "sock.send", "udp.send",
        "nic.tx", "eth.tx", "sigio", "sock.recv", "serve:gm_read_req",
    ):
        assert expected in names, f"missing {expected} in {names}"
    # ...and both machines appear in the one tree.
    assert {s.pid for s in tree} == {0, 1}
    # Link-layer spans sit on the NET lane, kernel spans on the kernel's pid.
    assert all(s.tid == NET_TID for s in tree if s.name in ("nic.tx", "eth.tx"))
    # Every completed span has an end no earlier than its start.
    assert all(s.end is not None and s.end >= s.start for s in tree)


def test_serve_span_runs_on_remote_kernel_lane():
    result = remote_read_run()
    obs = result.cluster.obs
    serves = obs.by_name("serve:gm_read_req")
    assert serves and all(s.pid == 1 for s in serves)
    rpcs = obs.by_name("rpc:gm_read_req")
    assert rpcs and all(s.pid == 0 for s in rpcs)


def test_reliable_transport_carries_trace():
    result = remote_read_run(transport="reliable")
    obs = result.cluster.obs
    read_roots = [s for s in obs.roots() if s.name == "api.gm_read"]
    tree_names = [s.name for s in obs.trace(read_roots[0].ctx.trace_id)]
    assert "serve:gm_read_req" in tree_names
    assert "eth.tx" in tree_names


def test_gbn_transport_carries_trace():
    result = remote_read_run(transport="reliable-gbn")
    obs = result.cluster.obs
    read_roots = [s for s in obs.roots() if s.name == "api.gm_read"]
    tree_names = [s.name for s in obs.trace(read_roots[0].ctx.trace_id)]
    assert "serve:gm_read_req" in tree_names


def test_caching_coherence_carries_trace():
    result = remote_read_run(coherence="cache")
    obs = result.cluster.obs
    # The write misses and transacts GM_OWN_REQ with home; the read that
    # follows is then a pure cache hit (no messages, root span only).
    write_roots = [s for s in obs.roots() if s.name == "api.gm_write"]
    write_tree = [s.name for s in obs.trace(write_roots[0].ctx.trace_id)]
    assert "rpc:gm_own_req" in write_tree
    assert "serve:gm_own_req" in write_tree
    read_roots = [s for s in obs.roots() if s.name == "api.gm_read"]
    read_tree = obs.trace(read_roots[0].ctx.trace_id)
    assert [s.name for s in read_tree] == ["api.gm_read"]


def test_collision_instants_recorded():
    """Two stations transmitting together must collide and mark it."""
    sim = Simulator()
    sim.obs = SpanRecorder(enabled=True)
    rng = RandomStreams(7)
    bus = EthernetBus(sim, rng)
    bus.attach(0, lambda f: None)
    bus.attach(1, lambda f: None)
    statuses = []

    def tx(src):
        ctx = sim.obs.begin(sim.now, f"test-root-{src}", "test", src, NET_TID, None).ctx
        frame = EthernetFrame(src=src, dst=1 - src, payload=None,
                              payload_bytes=256, trace=ctx)
        status = yield from bus.send(frame)
        statuses.append(status)

    sim.process(tx(0))
    sim.process(tx(1))
    sim.run_all()
    assert statuses == [SEND_OK, SEND_OK]
    collisions = sim.obs.by_name("eth.collision")
    assert collisions and all(s.phase == "i" for s in collisions)
    eth = sim.obs.by_name("eth.tx")
    assert len(eth) == 2
    assert all(s.args and s.args["attempts"] >= 2 for s in eth)


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


def test_chrome_trace_json_well_formed(tmp_path):
    result = remote_read_run()
    cluster = result.cluster
    doc = json.loads(chrome_trace_json(cluster.obs, cluster))
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("X", "i", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] != "M":
            assert isinstance(event["ts"], float) or isinstance(event["ts"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
    # metadata names every machine and kernel
    meta_names = [e["args"]["name"] for e in events if e["ph"] == "M"]
    assert any("station 0" in n for n in meta_names)
    assert any(n.startswith("kernel k") for n in meta_names)
    assert any("net" in n for n in meta_names)
    # round-trip through a file too
    path = tmp_path / "trace.json"
    count = write_chrome_trace(cluster.obs, str(path), cluster=cluster)
    on_disk = json.loads(path.read_text())
    assert len(on_disk["traceEvents"]) == count
    assert on_disk["otherData"]["dropped"] == 0


# ---------------------------------------------------------------------------
# metrics sampler + series export
# ---------------------------------------------------------------------------


def test_sampler_samples_at_interval_and_terminates():
    sim = Simulator()
    sampler = MetricsSampler(sim, interval=0.5)
    ticks = []
    sampler.register("level", lambda: float(len(ticks)))

    def busy():
        for _ in range(4):
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(busy())
    sampler.start()
    sim.run_all()  # must terminate: the sampler stops when the queue drains
    series = sampler.get("level")
    assert len(series) >= 8
    times = [t for t, _v in series.items()]
    assert times == sorted(times)
    assert times[1] - times[0] == pytest.approx(0.5)


def test_sampler_ring_buffer_caps_length():
    sim = Simulator()
    sampler = MetricsSampler(sim, interval=0.1, maxlen=10)
    sampler.register("const", lambda: 1.0)

    def busy():
        yield sim.timeout(100.0)

    sim.process(busy())
    sampler.start()
    sim.run_all()
    assert len(sampler.get("const")) == 10  # oldest samples evicted


def test_register_statset_snapshots_counters():
    sim = Simulator()
    sampler = MetricsSampler(sim, interval=1.0)
    stats = StatSet("x")
    stats.counter("hits").increment(3)
    stats.tally("wait").observe(2.0)
    sampler.register_statset("x", stats)
    sampler.sample()
    assert sampler.get("x.hits").last == 3
    assert sampler.get("x.wait.mean").last == 2.0


def test_cluster_metrics_series_and_exports(tmp_path):
    result = remote_read_run(obs_metrics_interval=0.0002)
    sampler = result.cluster.metrics
    assert sampler is not None
    assert len(sampler.get("bus.utilization")) > 0
    hit_ratio = sampler.get("k0.gmem.hit_ratio").last
    assert 0.0 <= hit_ratio <= 1.0
    rows = metrics_rows(sampler)
    assert rows and all(set(r) == {"series", "time", "value"} for r in rows)
    # CSV
    buf = io.StringIO()
    n = write_metrics_csv(sampler, buf)
    lines = buf.getvalue().splitlines()
    assert lines[0] == "series,time,value"
    assert len(lines) == n + 1
    # JSONL
    path = tmp_path / "metrics.jsonl"
    n2 = write_metrics_jsonl(sampler, str(path))
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(parsed) == n2 == n


def test_statset_snapshot_min_max_guarded():
    stats = StatSet("s")
    stats.tally("empty")  # no observations: min/max sentinels must not leak
    stats.tally("seen").observe(3.0)
    stats.tally("seen").observe(-1.0)
    snap = stats.snapshot()
    assert "empty.min" not in snap and "empty.max" not in snap
    assert snap["seen.min"] == -1.0
    assert snap["seen.max"] == 3.0


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


def test_config_rejects_bad_obs_values():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ClusterConfig(obs_metrics_interval=-1.0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(obs_span_limit=-1)


def test_trace_context_slots():
    ctx = TraceContext(1, 2)
    assert (ctx.trace_id, ctx.span_id) == (1, 2)
    with pytest.raises(AttributeError):
        ctx.extra = 1  # __slots__: no surprise dict per context
