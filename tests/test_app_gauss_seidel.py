"""Tests for the Gauss-Seidel application (sequential + DSE-parallel)."""

import numpy as np
import pytest

from repro.apps.gauss_seidel import (
    DEFAULT_SWEEPS,
    gauss_seidel_seq,
    gauss_seidel_worker,
    make_system,
    row_partition,
    sequential_work,
    sweep_work,
)
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def test_make_system_diagonally_dominant():
    a, b = make_system(50)
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    assert np.all(diag > off)
    assert a.shape == (50, 50) and b.shape == (50,)


def test_make_system_deterministic():
    a1, b1 = make_system(20, seed=3)
    a2, b2 = make_system(20, seed=3)
    assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
    a3, _ = make_system(20, seed=4)
    assert not np.array_equal(a1, a3)


def test_make_system_validation():
    with pytest.raises(ValueError):
        make_system(0)


def test_sequential_converges_to_true_solution():
    a, b = make_system(40)
    x, residuals = gauss_seidel_seq(a, b, sweeps=30)
    assert np.allclose(x, np.linalg.solve(a, b), atol=1e-8)
    # Residuals must decrease monotonically until they hit round-off.
    for r1, r2 in zip(residuals, residuals[1:]):
        if r1 < 1e-12:
            break
        assert r2 < r1


def test_row_partition_covers_all_rows():
    bounds = row_partition(10, 3)
    assert bounds == [(0, 4), (4, 7), (7, 10)]
    assert bounds[0][0] == 0 and bounds[-1][1] == 10


def test_row_partition_more_ranks_than_rows():
    bounds = row_partition(2, 4)
    assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_work_model_scaling():
    w1 = sweep_work(10, 100)
    w2 = sweep_work(20, 100)
    assert w2.flops == pytest.approx(2 * w1.flops)
    seq = sequential_work(100, 5)
    assert seq.flops == pytest.approx(5 * sweep_work(100, 100).flops)


def test_parallel_matches_convergence_quality():
    """The block-parallel variant must converge (to the same solution)."""
    res = run_parallel(cfg(3), gauss_seidel_worker, args=(60, 25))
    a, b = make_system(60)
    truth = np.linalg.solve(a, b)
    for rank, out in res.returns.items():
        assert np.allclose(out["x"], truth, atol=1e-6), f"rank {rank} diverged"
        assert out["residual"] < 1e-6


def test_parallel_identical_across_ranks():
    res = run_parallel(cfg(4), gauss_seidel_worker, args=(30, 10))
    xs = [out["x"] for out in res.returns.values()]
    for x in xs[1:]:
        assert np.array_equal(x, xs[0])


def test_parallel_single_processor_equals_sequential():
    """With one processor the block variant IS plain Gauss-Seidel."""
    n, sweeps = 30, 8
    res = run_parallel(cfg(1, n_machines=1), gauss_seidel_worker, args=(n, sweeps))
    a, b = make_system(n)
    x_seq, _ = gauss_seidel_seq(a, b, sweeps)
    assert np.allclose(res.returns[0]["x"], x_seq, atol=1e-12)


def test_parallel_row_assignment():
    res = run_parallel(cfg(3), gauss_seidel_worker, args=(10, 2))
    assert [res.returns[r]["rows"] for r in range(3)] == [(0, 4), (4, 7), (7, 10)]


def test_more_ranks_than_rows_still_correct():
    res = run_parallel(cfg(6), gauss_seidel_worker, args=(4, 20))
    a, b = make_system(4)
    truth = np.linalg.solve(a, b)
    assert np.allclose(res.returns[0]["x"], truth, atol=1e-8)


def test_timing_markers_present_and_ordered():
    res = run_parallel(cfg(2), gauss_seidel_worker, args=(20, 3))
    for out in res.returns.values():
        assert 0 <= out["t0"] < out["t1"]


def test_verify_false_skips_gather():
    res = run_parallel(cfg(2), gauss_seidel_worker, args=(20, 3, 7, False))
    assert "x" not in res.returns[0]
    assert "t1" in res.returns[0]


def test_small_system_parallel_slower_than_sequential():
    """The paper's small-N result: parallelising n=100 on several
    processors is a net loss."""
    t1 = run_parallel(cfg(1, n_machines=1), gauss_seidel_worker, args=(100, 5, 7, False))
    t6 = run_parallel(cfg(6), gauss_seidel_worker, args=(100, 5, 7, False))
    e1 = max(r["t1"] - r["t0"] for r in t1.returns.values())
    e6 = max(r["t1"] - r["t0"] for r in t6.returns.values())
    assert e6 > e1


def test_large_system_parallel_faster():
    """...and the large-N result: n=700 on 4 processors wins clearly."""
    t1 = run_parallel(cfg(1, n_machines=1), gauss_seidel_worker, args=(700, 4, 7, False))
    t4 = run_parallel(cfg(4), gauss_seidel_worker, args=(700, 4, 7, False))
    e1 = max(r["t1"] - r["t0"] for r in t1.returns.values())
    e4 = max(r["t1"] - r["t0"] for r in t4.returns.values())
    assert e4 < 0.6 * e1
