"""Tests for the Knight's Tour application."""

import pytest

from repro.apps.knights_tour import (
    DEFAULT_BOARD,
    DEFAULT_START,
    count_tours_seq,
    knight_moves,
    knights_tour_worker,
    knights_tour_workload,
)
from repro.dse import ClusterConfig, run_parallel
from repro.errors import ApplicationError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


# ------------------------------------------------------------- moves
def test_knight_moves_counts():
    moves = knight_moves(5)
    # Corner has 2 moves, centre of 5x5 has 8.
    assert len(moves[0]) == 2
    assert len(moves[12]) == 8
    assert all(0 <= d < 25 for dests in moves for d in dests)


def test_knight_moves_symmetric():
    moves = knight_moves(6)
    for sq, dests in enumerate(moves):
        for d in dests:
            assert sq in moves[d]


def test_knight_moves_validation():
    with pytest.raises(ApplicationError):
        knight_moves(2)


# ------------------------------------------------------------- sequential
def test_count_tours_5x5_from_corner_is_304():
    """The known result: 304 open knight's tours start at a 5x5 corner."""
    tours, nodes = count_tours_seq(5, 0)
    assert tours == 304
    assert nodes > 100_000


def test_count_tours_5x5_from_center_square():
    """5x5 tours exist only from squares of the majority colour; the centre
    square is one of them."""
    tours, _ = count_tours_seq(5, 12)
    assert tours == 64


def test_count_tours_impossible_start():
    """From a minority-colour square of the 5x5 board no tour exists."""
    tours, _ = count_tours_seq(5, 1)
    assert tours == 0


def test_count_tours_4x4_has_none():
    tours, _ = count_tours_seq(4, 0)
    assert tours == 0


# ------------------------------------------------------------- workload
def test_workload_partitions_preserve_totals():
    seq_tours, seq_nodes = count_tours_seq()
    for req in (1, 8, 32, 128):
        w = knights_tour_workload(req)
        assert w.total_tours == seq_tours, f"req={req}"
        assert len(w.jobs) >= min(req, 2)


def test_workload_more_jobs_requested_gives_more_jobs():
    sizes = [len(knights_tour_workload(req).jobs) for req in (8, 32, 128, 512)]
    assert sizes == sorted(sizes)
    assert sizes[0] < sizes[-1]


def test_workload_prefixes_unique_and_valid():
    w = knights_tour_workload(32)
    prefixes = [j.prefix for j in w.jobs]
    assert len(set(prefixes)) == len(prefixes)
    moves = knight_moves(DEFAULT_BOARD)
    for prefix in prefixes:
        assert prefix[0] == DEFAULT_START
        assert len(set(prefix)) == len(prefix)  # no revisits
        for a, b in zip(prefix, prefix[1:]):
            assert b in moves[a]  # consecutive squares knight-connected


def test_workload_validation():
    with pytest.raises(ApplicationError):
        knights_tour_workload(0)


# ------------------------------------------------------------- parallel
@pytest.mark.parametrize("n_jobs", [8, 32, 128])
def test_parallel_counts_all_tours(n_jobs):
    res = run_parallel(cfg(4), knights_tour_worker, args=(n_jobs,))
    out = res.returns[0]
    assert out["tours"] == 304
    assert out["tours"] == out["expected_tours"]


def test_parallel_every_job_processed():
    res = run_parallel(cfg(5), knights_tour_worker, args=(32,))
    total = sum(out["jobs_done"] for out in res.returns.values())
    assert total == res.returns[0]["n_jobs_actual"]


def test_parallel_static_assignment_is_cyclic():
    res = run_parallel(cfg(3), knights_tour_worker, args=(8,))
    njobs = res.returns[0]["n_jobs_actual"]
    for rank, out in res.returns.items():
        expected = len(range(rank, njobs, 3))
        assert out["jobs_done"] == expected


def test_parallel_midrange_jobs_beat_extremes_at_six_procs():
    """The paper's granularity result (Figures 19-21): at 6 processors a
    middling job count beats both very few and very many jobs."""
    plat = get_platform("sunos")

    def elapsed(n_jobs):
        res = run_parallel(cfg(6, platform=plat), knights_tour_worker, args=(n_jobs,))
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    e_few, e_mid, e_many = elapsed(2), elapsed(32), elapsed(512)
    assert e_mid < e_few
    assert e_mid < e_many


def test_parallel_speedup_declines_past_six_processors():
    plat = get_platform("sunos")

    def elapsed(p):
        res = run_parallel(cfg(p, platform=plat), knights_tour_worker, args=(32,))
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    assert elapsed(8) > elapsed(6)  # kernels double up beyond 6 machines
