"""Tests for global-memory message batching (write/read combining)."""

import numpy as np
import pytest

from repro.dse import Cluster, ClusterConfig, run_master, run_parallel
from repro.hardware import get_platform


def cfg(**kw):
    kw.setdefault("platform", get_platform("linux"))
    kw.setdefault("n_processors", 4)
    kw.setdefault("total_gm_words", 1 << 16)
    kw.setdefault("block_words", 64)
    kw.setdefault("gmem_batching", True)
    return ClusterConfig(**kw)


def test_batching_off_by_default():
    assert ClusterConfig().gmem_batching is False
    assert Cluster(cfg(gmem_batching=False)).kernel(0).gmem.batching is False
    assert Cluster(cfg()).kernel(0).gmem.batching is True


def test_batched_writes_visible_after_barrier():
    """Combined writes must be flushed by the barrier, not lost in buffers."""

    def worker(api):
        base = api.home_base(0)
        if api.rank == 1:
            yield from api.gm_write(base, np.arange(8, dtype=float))
        yield from api.barrier("w")
        data = yield from api.gm_read(base, 8)
        return list(data)

    res = run_parallel(cfg(), worker)
    for values in res.returns.values():
        assert values == [float(i) for i in range(8)]
    assert res.stats["gm.batch_flushes"] >= 1


def test_batched_write_spanning_home_boundary():
    """One write crossing a slice boundary batches to BOTH homes correctly."""

    def worker(api):
        boundary = api.home_base(1)  # first word homed at kernel 1
        if api.rank == 2:
            yield from api.gm_write(boundary - 4, np.arange(10, dtype=float))
        yield from api.barrier("w")
        data = yield from api.gm_read(boundary - 4, 10)
        return list(data)

    res = run_parallel(cfg(), worker)
    for values in res.returns.values():
        assert values == [float(i) for i in range(10)]
    # Rank 2's flush sent one batch to home 0 and one to home 1.
    assert res.stats["gm.batch_flushes"] >= 2


def test_read_observes_own_buffered_writes():
    """A read overlapping the write-combining buffer flushes it first."""

    def master(api):
        addr = api.home_base(1)  # remote from kernel 0, so it is buffered
        yield from api.gm_write(addr, [1.0, 2.0, 3.0])
        data = yield from api.gm_read(addr, 3)  # no synchronisation between
        return list(data)

    assert run_master(cfg(), master).returns[0] == [1.0, 2.0, 3.0]


def test_adjacent_writes_combine_into_one_run():
    """Word-at-a-time writes to a contiguous range flush as ONE message."""

    def master(api):
        gm = api.kernel.gmem
        addr = api.home_base(1)
        for i in range(16):
            yield from api.gm_write_scalar(addr + i, float(i))
        data = yield from api.gm_read(addr, 16)  # forces the flush
        return (
            list(data),
            gm.stats.counter("remote_writes").value,
            gm.stats.counter("batch_flushes").value,
            gm.stats.counter("batched_runs").value,
        )

    values, remote_writes, flushes, runs = run_master(cfg(), master).returns[0]
    assert values == [float(i) for i in range(16)]
    assert remote_writes == 16  # every write was counted...
    assert flushes == 1  # ...but one wire message carried them all
    assert runs == 1  # merged into a single contiguous run


def test_latest_write_wins_in_buffer():
    """Overlapping buffered writes merge with last-writer-wins semantics."""

    def master(api):
        addr = api.home_base(1)
        yield from api.gm_write(addr, np.zeros(8))
        yield from api.gm_write(addr + 2, [9.0, 9.0])  # overlaps the first run
        data = yield from api.gm_read(addr, 8)
        return list(data)

    assert run_master(cfg(), master).returns[0] == [0, 0, 9, 9, 0, 0, 0, 0]


def test_buffer_cap_forces_flush():
    """A home's buffer past WC_FLUSH_WORDS flushes without a sync point."""

    def master(api):
        gm = api.kernel.gmem
        addr = api.home_base(1)
        yield from api.gm_write(addr, np.zeros(9000))
        before = gm.stats.counter("batch_flushes").value
        yield from api.gm_write(addr + 9000, np.ones(9000))
        after = gm.stats.counter("batch_flushes").value
        return (before, after)

    before, after = run_master(cfg(total_gm_words=1 << 18), master).returns[0]
    assert before == 0 and after == 1


def test_read_combining_shares_one_fetch():
    """Concurrent identical remote reads on one kernel share a single wire
    round trip; the joiner waits on the leader's in-flight marker."""

    def master(api):
        gm = api.kernel.gmem
        sim = api.kernel.sim
        addr = api.home_base(1)
        yield from api.gm_write(addr, np.full(32, 5.0))
        yield from gm.flush()  # make the subsequent reads true remote reads
        out = {}

        def reader(tag):
            data = yield from gm.read(addr, 32)
            out[tag] = list(data)

        p1 = sim.process(reader("a"))
        p2 = sim.process(reader("b"))
        yield p1
        yield p2
        return (
            out["a"],
            out["b"],
            gm.stats.counter("remote_reads").value,
            gm.stats.counter("combined_reads").value,
        )

    a, b, remote, combined = run_master(cfg(), master).returns[0]
    assert a == b == [5.0] * 32
    assert remote == 1  # one wire message...
    assert combined == 1  # ...shared by the second reader


def test_batching_reduces_wire_messages():
    """Same workload, same config: batching must cut total messages."""

    def worker(api):
        # Everyone writes a private result strip into kernel 0's slice and
        # reads a shared table from it — the knight's-tour communication
        # shape in miniature.
        table = api.home_base(0)
        strip = table + 64 + api.rank * 16
        yield from api.gm_read(table, 64)
        for i in range(16):
            yield from api.gm_write_scalar(strip + i, float(api.rank))
        yield from api.barrier("done")
        return True

    msgs = {}
    for batching in (False, True):
        res = run_parallel(cfg(gmem_batching=batching), worker)
        assert all(res.returns.values())
        msgs[batching] = res.stats["msgs_sent"]
    assert msgs[True] < msgs[False]


def test_coherence_multiblock_prefetch():
    """Under the caching policy, a read spanning several missing blocks of
    one home fetches them with one message."""

    def worker(api):
        base = api.home_base(0)
        if api.rank == 0:
            yield from api.gm_write(base, np.arange(256, dtype=float))
        yield from api.barrier("w")
        data = yield from api.gm_read(base, 256)  # 4 blocks of 64 words
        return (
            float(data.sum()),
            api.kernel.gmem.stats.counter("batched_fills").value,
        )

    res = run_parallel(cfg(coherence="cache"), worker)
    expected = float(np.arange(256).sum())
    for rank, (total, fills) in res.returns.items():
        assert total == expected
        if rank != 0:
            assert fills >= 1  # the 4-block read was one wire message


def test_coherence_batched_values_match_unbatched():
    """Batched coherence changes the clock, never the values."""

    def worker(api):
        base = api.home_base(0)
        if api.rank == 0:
            yield from api.gm_write(base, np.arange(128, dtype=float))
        yield from api.barrier("w")
        data = yield from api.gm_read(base, 128)
        return list(data)

    results = {}
    for batching in (False, True):
        res = run_parallel(
            cfg(coherence="cache", gmem_batching=batching), worker
        )
        results[batching] = res.returns
    assert results[False] == results[True]
