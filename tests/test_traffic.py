"""Tests for the repro.traffic multi-tenant request layer.

The ISSUE-level properties live here: seed-deterministic streams (same
config => byte-identical results, serial vs pooled sweeps identical),
heavy-tail moment sanity for the service distributions, the
JSQ-never-worse-than-random property, and clone-cancel leaving no
orphaned work on any server — plus coverage of admission control,
elasticity, crash reassignment, the SSI service directory, and the
full-stack cluster backend.
"""

import json
import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.resilience.campaign import CrashPlan
from repro.sim.statreg import COUNTERS, TALLIES
from repro.ssi import ServiceDirectory
from repro.traffic.analytic import (
    clone_mean_response,
    clone_vs_random,
    expected_ordering,
    ps_mean_response,
    random_dispatch_mean_response,
)
from repro.traffic.arrivals import (
    Deterministic,
    Exponential,
    MMPPArrivals,
    Pareto,
    PoissonArrivals,
    make_arrivals,
    make_service,
)
from repro.traffic.bench import run_point
from repro.traffic.cli import _sweep_task, build_sweep_config, run_traced_traffic
from repro.traffic.engine import (
    ElasticConfig,
    TrafficConfig,
    TrafficEngine,
    run_traffic,
)
from repro.traffic.policies import make_policy
from repro.traffic.slo import SUBDIV, LatencyHistogram
from repro.traffic.tenants import QuotaConfig, TenantSpec, TokenBucket


def _single_tenant(policy, rho=0.5, requests=2000, service=None, **kw):
    service = service if service is not None else Exponential(1.0)
    return TrafficConfig(
        tenants=(TenantSpec("t", PoissonArrivals(rho * 4), service, requests),),
        n_servers=4,
        policy=policy,
        seed=11,
        **kw,
    )


# -- arrivals and service distributions ---------------------------------------
def test_poisson_gaps_deterministic_and_mean():
    gaps1 = PoissonArrivals(2.0).gaps(random.Random(5))
    gaps2 = PoissonArrivals(2.0).gaps(random.Random(5))
    seq = [gaps1() for _ in range(5000)]
    assert seq[:100] == [gaps2() for _ in range(100)]
    assert sum(seq) / len(seq) == pytest.approx(0.5, rel=0.1)


def test_mmpp_long_run_rate_matches_mean_rate():
    mmpp = make_arrivals("mmpp", 13.0)
    assert isinstance(mmpp, MMPPArrivals)
    assert mmpp.mean_rate == pytest.approx(13.0)
    next_gap = mmpp.gaps(random.Random(3))
    n = 40000
    total = sum(next_gap() for _ in range(n))
    assert n / total == pytest.approx(13.0, rel=0.1)


def test_pareto_moments_and_min_of_d():
    dist = Pareto(alpha=2.2, mean=1.0)
    assert dist.xm == pytest.approx(1.2 / 2.2)
    rng = random.Random(17)
    samples = [dist.sample(rng) for _ in range(60000)]
    assert min(samples) >= dist.xm
    assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.1)
    # empirical E[min of 2] against the closed form (Pareto(2*alpha, xm))
    mins = [min(samples[i], samples[i + 1]) for i in range(0, len(samples), 2)]
    assert sum(mins) / len(mins) == pytest.approx(dist.min_of_mean(2), rel=0.1)


def test_scv_classifies_variability():
    assert Deterministic(1.0).scv == 0.0
    assert Exponential(1.0).scv == 1.0
    assert Pareto(alpha=1.5, mean=1.0).scv == float("inf")
    assert Pareto(alpha=3.0, mean=1.0).scv == pytest.approx(1.0 / 3.0)


def test_factories_reject_unknown_specs():
    with pytest.raises(ConfigurationError):
        make_arrivals("lognormal", 1.0)
    with pytest.raises(ConfigurationError):
        make_service("weibull", 1.0)
    assert make_service("pareto:1.5", 2.0).alpha == 1.5
    with pytest.raises(ConfigurationError):
        Pareto(alpha=1.0, mean=1.0)
    with pytest.raises(ConfigurationError):
        MMPPArrivals(rates=(1.0, 2.0), dwells=(1.0,))


# -- latency histogram --------------------------------------------------------
def test_histogram_bucket_bounds_cover_value():
    # (the 5e-324 denormal floor is excluded: its bounds underflow)
    for value in (1e-300, 1e-9, 0.3, 1.0, 7.25, 1e9):
        index = LatencyHistogram.bucket_of(value)
        lo, hi = LatencyHistogram.bucket_bounds(index)
        assert lo <= value < hi
        # linear subdivision within each octave: relative width is at
        # most 1/SUBDIV (at the bottom of the octave)
        assert 1.0 < hi / lo <= 1.0 + 1.0 / SUBDIV


def test_histogram_merge_equals_combined():
    rng = random.Random(1)
    a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for i in range(2000):
        v = rng.expovariate(1.0)
        (a if i % 2 else b).observe(v)
        both.observe(v)
    a.merge(b)
    assert a.buckets == both.buckets
    assert a.count == both.count
    assert a.total == pytest.approx(both.total)  # addition order differs
    assert a.min == both.min and a.max == both.max


def test_histogram_quantiles_track_exponential():
    hist = LatencyHistogram()
    rng = random.Random(2)
    for _ in range(50000):
        hist.observe(rng.expovariate(1.0))
    assert hist.quantile(0.5) == pytest.approx(math.log(2), rel=0.1)
    assert hist.quantile(0.99) == pytest.approx(math.log(100), rel=0.1)
    summary = hist.summary()
    assert set(summary) == {"count", "mean", "min", "max", "p50", "p99", "p999"}
    empty = LatencyHistogram()
    assert empty.quantile(0.5) == 0.0 and empty.summary()["min"] == 0.0


def test_histogram_floors_nonpositive_values():
    hist = LatencyHistogram()
    hist.observe(0.0)
    assert hist.count == 1 and hist.min == 5e-324


# -- admission control --------------------------------------------------------
def test_token_bucket_rejects_then_refills():
    bucket = TokenBucket(QuotaConfig(rate=1.0, burst=2.0), now=0.0)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # burst exhausted
    assert bucket.try_take(1.5)      # 1.5 tokens refilled
    assert not bucket.try_take(1.6)
    bucket2 = TokenBucket(QuotaConfig(rate=1.0, burst=2.0), now=0.0)
    assert bucket2.try_take(100.0)   # refill caps at burst
    assert bucket2.tokens == pytest.approx(1.0)


def test_quota_validation():
    with pytest.raises(ConfigurationError):
        QuotaConfig(rate=0.0, burst=2.0)
    with pytest.raises(ConfigurationError):
        QuotaConfig(rate=1.0, burst=0.5)


# -- service directory --------------------------------------------------------
def test_directory_register_resolve_idempotent():
    directory = ServiceDirectory()
    directory.register("svc", 1, 0.0)
    directory.register("svc", 0, 1.0)
    directory.register("svc", 1, 2.0)  # idempotent, no journal entry
    assert directory.resolve("svc") == [0, 1]
    assert directory.resolve("nope") == []
    assert directory.services() == ["svc"]
    assert len(directory.journal) == 2


def test_directory_membership_replay():
    directory = ServiceDirectory()
    directory.register("svc", 0, 0.0)
    directory.register("svc", 1, 1.0)
    directory.deregister("svc", 0, 2.0)
    directory.register("svc", 2, 3.0)
    assert directory.membership_at("svc", 0.5) == [0]
    assert directory.membership_at("svc", 1.5) == [0, 1]
    assert directory.membership_at("svc", 2.5) == [1]
    assert directory.membership_at("svc", 99.0) == [1, 2]


# -- policies -----------------------------------------------------------------
def test_make_policy_spellings():
    assert make_policy("clone-3").n_clones == 3
    for name in ("random", "rr", "jsq", "lwl"):
        assert make_policy(name).n_clones == 1
    with pytest.raises(ConfigurationError):
        make_policy("p2c")
    with pytest.raises(ConfigurationError):
        make_policy("clone-x")
    with pytest.raises(ConfigurationError):
        make_policy("clone-1")


def test_config_validation_fails_fast():
    spec = TenantSpec("t", PoissonArrivals(1.0), Exponential(1.0), 10)
    with pytest.raises(ConfigurationError):
        TrafficConfig(tenants=(), n_servers=2)
    with pytest.raises(ConfigurationError):
        TrafficConfig(tenants=(spec, spec), n_servers=2)
    with pytest.raises(ConfigurationError):
        TrafficConfig(tenants=(spec,), n_servers=2, policy="bogus")
    # capacity checks live in the engine (they need the built cluster)
    with pytest.raises(ConfigurationError):
        TrafficEngine(TrafficConfig(tenants=(spec,), n_servers=2, policy="clone-4"))
    with pytest.raises(ConfigurationError):
        TrafficEngine(TrafficConfig(
            tenants=(spec,), n_servers=2, policy="clone-2",
            elastic=ElasticConfig(min_servers=1, max_servers=4),
        ))


# -- determinism --------------------------------------------------------------
def test_same_config_byte_identical():
    config = _single_tenant("jsq", requests=1500)
    a = run_traffic(config).canonical()
    b = run_traffic(config).canonical()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_seed_changes_the_sample_path():
    base = _single_tenant("random", requests=800)
    other = TrafficConfig(
        tenants=base.tenants, n_servers=base.n_servers,
        policy=base.policy, seed=base.seed + 1,
    )
    assert run_traffic(base).canonical() != run_traffic(other).canonical()


def test_policy_change_keeps_arrival_stream_paired():
    """Common random numbers: tenant streams are policy-independent."""
    a = run_traffic(_single_tenant("random", requests=1200)).canonical()
    b = run_traffic(_single_tenant("jsq", requests=1200)).canonical()
    assert a["stats"]["requests_offered"] == b["stats"]["requests_offered"]
    assert a["stats"]["request_work.total"] == pytest.approx(
        b["stats"]["request_work.total"]
    )


def test_sweep_identical_across_jobs():
    from repro.experiments.parallel import run_tasks

    grid = [
        {"policy": policy, "rho": 0.5, "requests": 500, "seed": 9,
         "n_servers": 4, "elastic": False, "crashes": 0}
        for policy in ("random", "clone-2")
    ]
    serial = run_tasks(_sweep_task, grid, jobs=1)
    pooled = run_tasks(_sweep_task, grid, jobs=2)
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)


# -- the report's orderings ---------------------------------------------------
def test_jsq_never_worse_than_random():
    for rho in (0.4, 0.7):
        jsq = run_point("jsq", rho, n_requests=4000)
        rand = run_point("random", rho, n_requests=4000)
        assert jsq["mean"] <= rand["mean"]
        assert jsq["p99"] <= rand["p99"]


def test_clone_beats_random_on_heavy_tail():
    clone = run_point("clone-2", 0.5, n_requests=4000)
    rand = run_point("random", 0.5, n_requests=4000)
    assert clone["mean"] < rand["mean"]


def test_cloning_loses_on_deterministic_service():
    clone = run_point("clone-2", 0.45, "det", n_requests=4000)
    rand = run_point("random", 0.45, "det", n_requests=4000)
    assert rand["mean"] < clone["mean"]


def test_mm_ps_matches_insensitivity_formula():
    """M/M/1-PS via random dispatch: E[T] = E[S] / (1 - rho)."""
    result = run_traffic(_single_tenant("random", rho=0.5, requests=30000))
    analytic = random_dispatch_mean_response(Exponential(1.0), 2.0, 4)
    assert analytic == pytest.approx(2.0)
    assert result.mean_response == pytest.approx(analytic, rel=0.1)


# -- clone lifecycle hygiene --------------------------------------------------
def test_clone_cancel_leaves_no_orphaned_work():
    engine = TrafficEngine(_single_tenant(
        "clone-2", requests=3000, service=Pareto(alpha=1.5, mean=1.0),
    ))
    result = engine.run()
    assert engine._outstanding == 0
    for server in engine.cluster.servers:
        assert server.jobs == {}
        assert not any(entry[2].alive for entry in server._heap)
    stats = result.stats
    admitted = stats["requests_admitted"]
    assert stats["requests_completed"] == admitted
    assert stats["clones_dispatched"] == 2 * admitted
    # exactly one sibling cancelled per completed request
    assert stats["clones_cancelled"] == admitted
    assert result.overall["count"] == admitted


def test_single_dispatch_has_no_cancellations():
    result = run_traffic(_single_tenant("lwl", requests=1000))
    assert result.stats.get("clones_cancelled", 0) == 0
    assert result.stats["clones_dispatched"] == result.stats["requests_admitted"]


# -- multi-tenant sweep scenario ----------------------------------------------
def test_sweep_scenario_quota_and_accounting():
    result = run_traffic(build_sweep_config("random", 0.6, 4000, seed=3))
    for name in ("web", "batch"):
        tenant = result.per_tenant[name]
        assert tenant["offered"] == tenant["rejected"] + tenant["count"]
    batch = result.per_tenant["batch"]
    assert batch["rejected"] > 0          # MMPP bursts overflow the quota
    assert result.per_tenant["web"]["rejected"] == 0  # no quota on web
    assert result.stats["requests_offered"] == (
        result.per_tenant["web"]["offered"] + batch["offered"]
    )


def test_elastic_resizes_and_completes():
    config = build_sweep_config("random", 0.7, 4000, seed=5, elastic=True)
    engine = TrafficEngine(config)
    result = engine.run()
    assert result.stats["requests_completed"] == result.stats["requests_admitted"]
    resizes = (result.stats.get("servers_added", 0) - config.n_servers
               + result.stats.get("servers_removed", 0))
    assert resizes > 0
    assert config.elastic.min_servers <= result.servers_final <= config.elastic.max_servers
    assert engine.cluster.total_queue() == 0


def test_crash_reassigns_and_every_request_completes():
    lam = 0.5 * 4
    config = TrafficConfig(
        tenants=(TenantSpec(
            "t", PoissonArrivals(lam), Pareto(alpha=1.5, mean=1.0), 3000,
        ),),
        n_servers=4,
        policy="random",
        seed=13,
        crashes=(
            CrashPlan(kernel_id=1, at=200.0, restart_after=50.0),
            CrashPlan(kernel_id=2, at=900.0, restart_after=None),
        ),
    )
    engine = TrafficEngine(config)
    result = engine.run()
    assert result.stats["server_crashes"] == 2
    assert result.stats["server_restarts"] == 1
    assert result.stats["requests_reassigned"] > 0
    assert result.stats["requests_completed"] == result.stats["requests_admitted"]
    assert engine._outstanding == 0
    for server in engine.cluster.servers:
        assert server.jobs == {}


# -- observability ------------------------------------------------------------
def test_traced_run_emits_request_spans():
    from repro.experiments.timeline import span_census

    engine = run_traced_traffic(requests=600, span_sample=25, seed=3)
    request_spans = [
        s for s in engine.recorder.spans if s.cat == "request"
    ]
    assert request_spans
    assert all(s.end is not None for s in request_spans)
    census = span_census(engine.recorder, sim=engine.sim)
    assert "request spans" in census
    assert "trf.request.web" in census


def test_metrics_series_sampled():
    config = _single_tenant("random", requests=400, metrics_interval=5.0)
    engine = TrafficEngine(config)
    engine.run()
    series = engine.sampler.series
    assert "trf.servers_active" in series
    assert series["trf.servers_active"].items()[-1][1] == 4.0
    assert "trf.requests_completed" in series


def test_stat_keys_are_registered():
    result = run_traffic(build_sweep_config("clone-2", 0.6, 1500, seed=1, crashes=1))
    for key in result.stats:
        base = key.partition(".")[0]
        assert base in COUNTERS or base in TALLIES, key


# -- analytic module ----------------------------------------------------------
def test_analytic_formulas():
    assert ps_mean_response(1.0, 0.5) == pytest.approx(2.0)
    with pytest.raises(ConfigurationError):
        ps_mean_response(1.0, 1.0)
    heavy = Pareto(alpha=1.5, mean=1.0)
    # alpha 1.5: cloning is exactly load-neutral, wins at every load
    assert expected_ordering(heavy, 4.0, 8, 2) == "clone"
    # deterministic: clone loses both below and at clone-side saturation
    assert expected_ordering(Deterministic(1.0), 3.0, 8, 2) == "random"
    assert expected_ordering(Deterministic(1.0), 4.0, 8, 2) == "random"
    # exponential is load-neutral with half the min-mean: clone wins too
    assert expected_ordering(Exponential(1.0), 3.0, 8, 2) == "clone"
    clone, rand = clone_vs_random(heavy, 4.0, 8, 2)
    assert clone == clone_mean_response(heavy, 4.0, 8, 2)
    assert rand == random_dispatch_mean_response(heavy, 4.0, 8)
    assert clone < rand
    with pytest.raises(ConfigurationError):
        clone_mean_response(heavy, 4.0, 7, 2)  # n must divide by d


# -- full-stack cluster backend -----------------------------------------------
def test_cluster_traffic_deterministic_and_complete():
    from repro.traffic.cluster_backend import run_cluster_traffic

    kw = dict(n_kernels=3, n_requests=24, arrival_rate=30.0,
              mean_service=0.02, seed=5)
    a = run_cluster_traffic(**kw)
    b = run_cluster_traffic(**kw)
    assert a == b
    assert a["count"] == 24
    assert a["mean"] > 0


def test_cluster_traffic_survives_burst_loss():
    from repro.traffic.cluster_backend import run_cluster_traffic

    lossy = run_cluster_traffic(
        n_kernels=3, n_requests=16, arrival_rate=30.0, mean_service=0.02,
        transport="sr", p_enter_bad=0.05, seed=5,
    )
    assert lossy["count"] == 16


def test_dual_equals_sr_without_payload_traffic():
    """Request RPCs are all control-class: with no GM payload the dual
    transport's unreliable lane is unused and results match sr exactly."""
    from repro.traffic.cluster_backend import run_cluster_traffic

    kw = dict(n_kernels=3, n_requests=20, arrival_rate=30.0,
              mean_service=0.02, p_enter_bad=0.03, seed=5)
    assert run_cluster_traffic(transport="sr", **kw) == dict(
        run_cluster_traffic(transport="dual", **kw), transport="sr"
    )


def test_payload_traffic_diverges_under_dual():
    from repro.traffic.cluster_backend import run_cluster_traffic

    kw = dict(n_kernels=3, n_requests=20, arrival_rate=30.0,
              mean_service=0.02, p_enter_bad=0.03, payload_words=64, seed=5)
    sr = run_cluster_traffic(transport="sr", **kw)
    dual = run_cluster_traffic(transport="dual", **kw)
    assert sr["count"] == dual["count"] == 20
    assert sr["mean"] != dual["mean"]  # the bulk lane changes the path


def test_resilient_traffic_retries_through_crashes():
    from repro.traffic.cluster_backend import run_resilient_traffic

    summary = run_resilient_traffic(
        n_kernels=3, n_requests=30, arrival_rate=40.0,
        mean_service=0.02, crash_times=(0.2,), seed=5,
    )
    assert summary["completed"] == 30
    assert summary["retries"] >= 1
