"""Tests for the matrix-multiply extension app and SSI remote execution."""

import numpy as np
import pytest

from repro.apps import make_matrices, matmul_work, matmul_worker
from repro.dse import Cluster, ClusterConfig, ParallelAPI, run_parallel
from repro.errors import ApplicationError, SSIError
from repro.hardware import get_platform
from repro.ssi import pick_least_loaded, remote_run


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


# ------------------------------------------------------------- matmul
def test_make_matrices_deterministic():
    a1, b1 = make_matrices(10)
    a2, b2 = make_matrices(10)
    assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
    with pytest.raises(ApplicationError):
        make_matrices(0)


def test_matmul_work_scaling():
    w = matmul_work(10, 100)
    assert w.flops == pytest.approx(2 * 10 * 100 * 100)


@pytest.mark.parametrize("p", [1, 3, 4])
def test_matmul_matches_numpy(p):
    n = 24
    kw = {"n_machines": 1} if p == 1 else {}
    res = run_parallel(cfg(p, **kw), matmul_worker, args=(n,))
    a, b = make_matrices(n)
    assert np.allclose(res.returns[0]["c"], a @ b, atol=1e-10)


def test_matmul_more_ranks_than_rows():
    n = 3
    res = run_parallel(cfg(5), matmul_worker, args=(n,))
    a, b = make_matrices(n)
    assert np.allclose(res.returns[0]["c"], a @ b, atol=1e-10)


def test_matmul_speeds_up():
    # n^3 compute vs n^2 traffic: large enough n wins despite B replication
    # over the 10 Mbit/s bus.
    n = 192
    t1 = run_parallel(cfg(1, n_machines=1, platform=get_platform("sunos")),
                      matmul_worker, args=(n, 23, False))
    t4 = run_parallel(cfg(4, platform=get_platform("sunos")),
                      matmul_worker, args=(n, 23, False))
    e1 = max(r["t1"] - r["t0"] for r in t1.returns.values())
    e4 = max(r["t1"] - r["t0"] for r in t4.returns.values())
    assert e4 < 0.6 * e1


# ------------------------------------------------------------- remote exec
def _run_master(config, master):
    cluster = Cluster(config)
    out = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        out["value"] = yield from master(api)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()
    return out["value"], cluster


def compute_task(api, x):
    yield from api.compute_seconds(0.01)
    return (x * x, api.kernel.kernel_id, api.hostname)


def test_remote_run_returns_value_from_other_node():
    def master(api):
        value, kernel_id, host = yield from remote_run(api, compute_task, (7,))
        return value, kernel_id, host

    (value, kernel_id, host), _ = _run_master(cfg(4), master)
    assert value == 49
    assert kernel_id != 0  # excluded self by default
    assert host != "node00"


def test_remote_run_explicit_target():
    def master(api):
        return (yield from remote_run(api, compute_task, (3,), target=2))

    (value, kernel_id, _), _ = _run_master(cfg(4), master)
    assert (value, kernel_id) == (9, 2)


def test_remote_run_bad_target():
    def master(api):
        with pytest.raises(SSIError):
            yield from remote_run(api, compute_task, (1,), target=99)
        return True

    value, _ = _run_master(cfg(2), master)
    assert value is True


def test_remote_tasks_can_use_global_memory():
    def task(api, addr):
        yield from api.gm_write_scalar(addr, 123.0)
        return (yield from api.gm_read_scalar(addr))

    def master(api):
        value = yield from remote_run(api, task, (50,))
        mine = yield from api.gm_read_scalar(50)
        return value, mine

    (value, mine), _ = _run_master(cfg(3), master)
    assert value == 123.0
    assert mine == 123.0  # shared memory: visible from the master too


def test_pick_least_loaded_prefers_idle():
    cluster = Cluster(cfg(4))
    cluster.sim.run(until=0.001)
    api = ParallelAPI(cluster.kernel(0), 0)
    cluster.machines[1].spawn(lambda proc: iter(()), name="hog")
    choice = pick_least_loaded(api)
    assert cluster.kernel(choice).machine is not cluster.machines[1]


def test_many_remote_tasks_spread_results():
    """Fan out 6 tasks from the master; all results return correctly."""

    def master(api):
        results = []
        for i in range(6):
            value, kid, _ = yield from remote_run(api, compute_task, (i,))
            results.append((i * i, kid))
        return results

    results, _ = _run_master(cfg(3), master)
    assert [v for v, _ in results] == [i * i for i in range(6)]
