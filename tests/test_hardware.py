"""Tests for CPU/platform models and the Table-1 registry."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    AIX_RS6000,
    CPUSpec,
    LINUX_PCAT,
    NodeSpec,
    OSCosts,
    SUNOS_SPARCSTATION,
    Work,
    get_platform,
    platform_names,
    table1_rows,
)


def test_work_addition_and_scaling():
    w = Work(flops=10, iops=20, mems=30) + Work(flops=1, iops=2, mems=3)
    assert (w.flops, w.iops, w.mems) == (11, 22, 33)
    s = w.scaled(2)
    assert (s.flops, s.iops, s.mems) == (22, 44, 66)
    assert s.total_ops == 132


def test_cpu_seconds_for():
    cpu = CPUSpec("test", clock_mhz=100, mflops=10, mips=100, mmemops=50)
    # 10 MFLOPS -> 1e6 flops takes 0.1 s
    assert cpu.seconds_for(Work(flops=1e6)) == pytest.approx(0.1)
    assert cpu.seconds_for(Work(iops=1e6)) == pytest.approx(0.01)
    assert cpu.seconds_for(Work(mems=1e6)) == pytest.approx(0.02)
    combined = cpu.seconds_for(Work(flops=1e6, iops=1e6, mems=1e6))
    assert combined == pytest.approx(0.1 + 0.01 + 0.02)


def test_cpu_validation():
    with pytest.raises(ValueError):
        CPUSpec("bad", clock_mhz=0, mflops=1, mips=1, mmemops=1)


def test_oscosts_validation():
    with pytest.raises(ValueError):
        OSCosts(
            syscall=-1e-6,
            context_switch=0,
            signal_delivery=0,
            protocol_per_message=0,
            protocol_per_byte=0,
        )


def test_three_platforms_registered():
    assert platform_names() == ["sunos", "aix", "linux"]
    assert get_platform("sunos") is SUNOS_SPARCSTATION
    assert get_platform("aix") is AIX_RS6000
    assert get_platform("linux") is LINUX_PCAT


def test_get_platform_by_display_name():
    assert get_platform("PentiumII 266MHz / Linux 2.0") is LINUX_PCAT


def test_get_platform_unknown():
    with pytest.raises(ConfigurationError):
        get_platform("windows-nt")


def test_platform_relative_speeds():
    """The PII/Linux box must be the fastest, SparcStation the slowest —
    both in raw compute and in OS path costs (era-calibration sanity)."""
    w = Work(flops=1e6, iops=1e6)
    t_sun = SUNOS_SPARCSTATION.cpu.seconds_for(w)
    t_aix = AIX_RS6000.cpu.seconds_for(w)
    t_linux = LINUX_PCAT.cpu.seconds_for(w)
    assert t_sun > t_aix > t_linux
    assert (
        SUNOS_SPARCSTATION.os_costs.syscall
        > AIX_RS6000.os_costs.syscall
        > LINUX_PCAT.os_costs.syscall
    )
    assert (
        SUNOS_SPARCSTATION.os_costs.protocol_per_message
        > AIX_RS6000.os_costs.protocol_per_message
        > LINUX_PCAT.os_costs.protocol_per_message
    )


def test_table1_rows():
    rows = table1_rows()
    assert len(rows) == 3
    assert any("SparcStation" in r[0] for r in rows)
    assert any("RS/6000" in r[0] for r in rows)
    assert any("Pentium" in r[0] for r in rows)


def test_node_spec_defaults():
    node = NodeSpec(node_id=3, platform=LINUX_PCAT)
    assert node.hostname == "node03"
    assert node.global_memory_bytes > 0
    assert "Linux" in str(node)


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(node_id=-1, platform=LINUX_PCAT)


def test_platform_describe():
    text = SUNOS_SPARCSTATION.describe()
    assert "SunOS" in text and "syscall" in text
