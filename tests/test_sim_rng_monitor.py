"""Tests for deterministic RNG streams and monitoring primitives."""

import pytest

from repro.sim import RandomStreams, StatSet, Tally, TimeWeighted, Tracer


def test_streams_reproducible_across_instances():
    a = RandomStreams(42).stream("backoff:3")
    b = RandomStreams(42).stream("backoff:3")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_differ_by_name():
    rs = RandomStreams(42)
    xs = [rs.stream("a").random() for _ in range(5)]
    ys = [rs.stream("b").random() for _ in range(5)]
    assert xs != ys


def test_streams_differ_by_seed():
    xs = [RandomStreams(1).stream("s").random() for _ in range(5)]
    ys = [RandomStreams(2).stream("s").random() for _ in range(5)]
    assert xs != ys


def test_stream_identity_cached():
    rs = RandomStreams(0)
    assert rs.stream("x") is rs.stream("x")


def test_spawn_gives_independent_space():
    rs = RandomStreams(7)
    child1 = rs.spawn("machine0")
    child2 = rs.spawn("machine1")
    assert child1.stream("s").random() != child2.stream("s").random()
    # spawn is itself deterministic
    again = RandomStreams(7).spawn("machine0")
    assert again.stream("s").random() == RandomStreams(7).spawn("machine0").stream("s").random()


def test_tally_statistics():
    t = Tally("t")
    for v in (1.0, 2.0, 3.0, 4.0):
        t.observe(v)
    assert t.count == 4
    assert t.mean == pytest.approx(2.5)
    assert t.min == 1.0
    assert t.max == 4.0
    assert t.variance == pytest.approx(1.25)


def test_tally_empty():
    t = Tally("t")
    assert t.mean == 0.0
    assert t.variance == 0.0


def test_time_weighted_average():
    tw = TimeWeighted("queue", start_time=0.0, level=0.0)
    tw.set(2.0, now=1.0)  # level 0 for [0,1)
    tw.set(4.0, now=3.0)  # level 2 for [1,3)
    # level 4 for [3,5)
    assert tw.average(now=5.0) == pytest.approx((0 * 1 + 2 * 2 + 4 * 2) / 5.0)


def test_time_weighted_adjust():
    tw = TimeWeighted("q")
    tw.adjust(+3, now=1.0)
    tw.adjust(-1, now=2.0)
    assert tw.level == 2


def test_time_weighted_rejects_backwards_time():
    tw = TimeWeighted("q")
    tw.set(1.0, now=5.0)
    with pytest.raises(ValueError):
        tw.set(2.0, now=4.0)


def test_statset_lazy_counters():
    s = StatSet("net")
    s.counter("frames").increment()
    s.counter("frames").increment(2)
    s.tally("wait").observe(1.5)
    snap = s.snapshot()
    assert snap["frames"] == 3
    assert snap["wait.count"] == 1
    assert snap["wait.mean"] == pytest.approx(1.5)


def test_tracer_disabled_by_default():
    tr = Tracer()
    tr.emit(0.0, "x", "kind")
    assert tr.records == []


def test_tracer_records_and_filters():
    tr = Tracer(enabled=True)
    tr.emit(1.0, "bus", "collision")
    tr.emit(2.0, "bus", "send")
    tr.emit(3.0, "nic", "send")
    assert len(tr.filter(kind="send")) == 2
    assert len(tr.filter(source="bus")) == 2
    assert len(tr.filter(kind="send", source="nic")) == 1


def test_tracer_limit():
    tr = Tracer(enabled=True, limit=2)
    for i in range(5):
        tr.emit(float(i), "s", "k")
    assert len(tr.records) == 2
