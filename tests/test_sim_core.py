"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    ConditionError,
    Event,
    Interrupt,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.5)
        return sim.now

    p = sim.process(proc())
    assert sim.run(p) == 3.5
    assert sim.now == 3.5


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        return v

    assert sim.run(sim.process(proc())) == "payload"


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 42

    assert sim.run(sim.process(proc())) == 42


def test_processes_interleave_in_time_order():
    sim = Simulator()
    log = []

    def proc(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(proc("b", 2.0))
    sim.process(proc("a", 1.0))
    sim.process(proc("c", 3.0))
    sim.run_all()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_simultaneous_events_fifo_order():
    """Ties at the same timestamp break by scheduling order (determinism)."""
    sim = Simulator()
    log = []

    def proc(name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abcde":
        sim.process(proc(name))
    sim.run_all()
    assert log == list("abcde")


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        v = yield ev
        return v

    def trigger():
        yield sim.timeout(2.0)
        ev.succeed("done")

    p = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(p) == "done"
    assert sim.now == 2.0


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught:{exc}"

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    p = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(p) == "caught:boom"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc():
        yield 42

    p = sim.process(proc())
    with pytest.raises(TypeError):
        sim.run(p)


def test_waiting_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late_waiter():
        yield sim.timeout(5.0)
        v = yield ev  # processed long ago; must resume immediately
        assert sim.now == 5.0
        return v

    assert sim.run(sim.process(late_waiter())) == "early"


def test_unhandled_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("app bug")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="app bug"):
        sim.run_all()


def test_waiter_sees_process_exception():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("inner")

    def outer():
        try:
            yield sim.process(bad())
        except ValueError:
            return "handled"

    assert sim.run(sim.process(outer())) == "handled"


def test_process_as_event_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    assert sim.run(sim.process(parent())) == "child-result"


def test_interrupt_waiting_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
            return "slept"
        except Interrupt as i:
            return ("interrupted", i.cause, sim.now)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3)
        p.interrupt("collision")

    sim.process(interrupter())
    assert sim.run(p) == ("interrupted", "collision", 3.0)


def test_interrupt_dead_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run(p)
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    sim = Simulator()

    def sleeper():
        target = sim.timeout(10)
        try:
            yield target
        except Interrupt:
            pass
        yield sim.timeout(1)
        return sim.now

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2)
        p.interrupt()

    sim.process(interrupter())
    assert sim.run(p) == 3.0


def test_all_of_waits_for_every_child():
    sim = Simulator()

    def proc(delay):
        yield sim.timeout(delay)
        return delay

    def main():
        children = [sim.process(proc(d)) for d in (3, 1, 2)]
        results = yield sim.all_of(children)
        return sorted(results.values())

    assert sim.run(sim.process(main())) == [1, 2, 3]
    assert sim.now == 3.0


def test_all_of_empty_triggers_immediately():
    sim = Simulator()

    def main():
        yield sim.all_of([])
        return sim.now

    assert sim.run(sim.process(main())) == 0.0


def test_any_of_returns_on_first():
    sim = Simulator()

    def proc(delay):
        yield sim.timeout(delay)
        return delay

    def main():
        children = [sim.process(proc(d)) for d in (5, 1, 9)]
        results = yield sim.any_of(children)
        return list(results.values())

    assert sim.run(sim.process(main())) == [1]
    assert sim.now == 1.0


def test_all_of_child_failure_raises_condition_error():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("x")

    def main():
        try:
            yield sim.all_of([sim.process(bad())])
        except ConditionError:
            return "condition-failed"

    assert sim.run(sim.process(main())) == "condition-failed"


def test_run_until_time():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(ticker())
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sim.now == 5.5


def test_run_until_past_is_error():
    sim = Simulator()
    sim.process(iter_timeout(sim, 10))
    sim.run(until=5)
    with pytest.raises(ValueError):
        sim.run(until=1)


def iter_timeout(sim, t):
    yield sim.timeout(t)


def test_run_max_events_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1)

    sim.process(forever())
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=50)


def test_deadlock_detected_when_waiting_on_unreachable_event():
    sim = Simulator()
    ev = sim.event()

    def stuck():
        yield ev

    p = sim.process(stuck())
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(p)


def test_events_processed_counter():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    sim.run(sim.process(proc()))
    assert sim.events_processed >= 3  # init + 2 timeouts (+ termination)
