"""Tests for the synthetic workload generator and scheduling workers."""

import numpy as np
import pytest

from repro.apps import (
    DISTRIBUTIONS,
    dynamic_schedule_worker,
    job_sizes,
    static_schedule_worker,
)
from repro.dse import ClusterConfig, run_parallel
from repro.errors import ApplicationError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_job_sizes_mean_and_determinism(distribution):
    sizes = job_sizes(200, distribution, mean_seconds=0.02, seed=1)
    assert len(sizes) == 200
    assert np.mean(sizes) == pytest.approx(0.02, rel=1e-9)
    assert all(s > 0 for s in sizes)
    assert sizes == job_sizes(200, distribution, mean_seconds=0.02, seed=1)


def test_job_sizes_skew_ordering():
    """Heavy tail > bimodal > uniform in max/mean skew."""
    skew = {}
    for d in DISTRIBUTIONS:
        sizes = job_sizes(300, d, seed=3)
        skew[d] = max(sizes) / np.mean(sizes)
    assert skew["heavy_tail"] > skew["bimodal"] > skew["uniform"]


def test_job_sizes_validation():
    with pytest.raises(ApplicationError):
        job_sizes(0)
    with pytest.raises(ApplicationError):
        job_sizes(10, "gaussian")
    with pytest.raises(ApplicationError):
        job_sizes(10, mean_seconds=0)


@pytest.mark.parametrize("worker", [static_schedule_worker, dynamic_schedule_worker])
def test_scheduling_workers_complete_all_jobs(worker):
    sizes = job_sizes(20, "uniform", mean_seconds=0.002)
    res = run_parallel(cfg(4), worker, args=(sizes,))
    assert res.returns[0]["all_done"] is True
    total = sum(r["jobs_done"] for r in res.returns.values())
    assert total == 20


def test_static_assignment_counts():
    sizes = job_sizes(10, "uniform", mean_seconds=0.001)
    res = run_parallel(cfg(3), static_schedule_worker, args=(sizes,))
    assert [res.returns[r]["jobs_done"] for r in range(3)] == [4, 3, 3]


def test_dynamic_beats_static_under_skewed_stacking():
    """The scheduling trade-off: when the static cyclic deal stacks several
    long jobs on one rank (imbalance ~2x here), the pulling queue wins
    despite its per-job lock round trips."""
    sizes = job_sizes(48, "bimodal", mean_seconds=0.05, seed=7)
    per_rank = [sum(sizes[j] for j in range(r, len(sizes), 6)) for r in range(6)]
    assert max(per_rank) / (sum(per_rank) / 6) > 1.7  # the seed stacks badly

    def elapsed(worker):
        res = run_parallel(cfg(6, platform=get_platform("sunos")), worker, args=(sizes,))
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    assert elapsed(dynamic_schedule_worker) < elapsed(static_schedule_worker)


def test_static_beats_dynamic_with_uniform_tiny_jobs():
    """...and many uniform tiny jobs favour the overhead-free static deal."""
    sizes = job_sizes(60, "uniform", mean_seconds=0.0005, seed=9)

    def elapsed(worker):
        res = run_parallel(cfg(6, platform=get_platform("sunos")), worker, args=(sizes,))
        return max(r["t1"] - r["t0"] for r in res.returns.values())

    assert elapsed(static_schedule_worker) < elapsed(dynamic_schedule_worker)
