"""Tests for DSE collective operations."""

import numpy as np
import pytest

from repro.dse import (
    ClusterConfig,
    allreduce,
    broadcast,
    gather,
    reduce,
    run_parallel,
    scatter,
)
from repro.errors import DSEError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def test_broadcast_all_ranks_receive():
    def worker(api):
        values = [1.5, 2.5, 3.5] if api.rank == 0 else None
        data = yield from broadcast(api, "b1", values, 3)
        return list(data)

    res = run_parallel(cfg(), worker)
    assert all(v == [1.5, 2.5, 3.5] for v in res.returns.values())


def test_broadcast_nonzero_root():
    def worker(api):
        values = [float(api.rank)] if api.rank == 2 else None
        data = yield from broadcast(api, "b2", values, 1, root=2)
        return float(data[0])

    res = run_parallel(cfg(), worker)
    assert all(v == 2.0 for v in res.returns.values())


def test_broadcast_length_mismatch():
    def worker(api):
        if api.rank == 0:
            with pytest.raises(DSEError, match="words"):
                yield from broadcast(api, "b3", [1.0, 2.0], 3)
        # Abort coherently so nobody hangs on the collective's barriers.
        return True

    res = run_parallel(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_reduce_sum_vector():
    def worker(api):
        out = yield from reduce(api, "r1", [float(api.rank), 1.0], op="sum")
        return None if out is None else list(out)

    res = run_parallel(cfg(4), worker)
    assert res.returns[0] == [0 + 1 + 2 + 3, 4.0]
    assert all(res.returns[r] is None for r in range(1, 4))


@pytest.mark.parametrize("op,expected", [("max", 3.0), ("min", 0.0), ("prod", 0.0)])
def test_reduce_ops(op, expected):
    def worker(api):
        out = yield from reduce(api, f"r-{op}", [float(api.rank)], op=op)
        return None if out is None else float(out[0])

    res = run_parallel(cfg(4), worker)
    assert res.returns[0] == expected


def test_reduce_unknown_op():
    def worker(api):
        with pytest.raises(DSEError, match="unknown reduction"):
            yield from reduce(api, "r-bad", [1.0], op="xor")
        return True

    res = run_parallel(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_allreduce_everyone_gets_result():
    def worker(api):
        out = yield from allreduce(api, "ar1", [float(api.rank + 1)])
        return float(out[0])

    res = run_parallel(cfg(5), worker)
    assert all(v == 15.0 for v in res.returns.values())


def test_gather_shape_and_order():
    def worker(api):
        out = yield from gather(api, "g1", [float(api.rank), float(api.rank * 10)])
        if out is None:
            return None
        return out.tolist()

    res = run_parallel(cfg(3), worker)
    assert res.returns[0] == [[0.0, 0.0], [1.0, 10.0], [2.0, 20.0]]


def test_scatter_slices():
    def worker(api):
        values = list(range(8)) if api.rank == 0 else None
        out = yield from scatter(api, "s1", values, 2)
        return list(out)

    res = run_parallel(cfg(4), worker)
    assert res.returns == {0: [0, 1], 1: [2, 3], 2: [4, 5], 3: [6, 7]}


def test_scatter_length_validation():
    def worker(api):
        with pytest.raises(DSEError, match="need"):
            yield from scatter(api, "s2", [1.0], 2)
        return True

    res = run_parallel(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_oversized_collective_rejected():
    def worker(api):
        with pytest.raises(DSEError, match="slot size"):
            yield from broadcast(api, "huge", None, 100_000, root=1)
        return True

    res = run_parallel(cfg(1, n_machines=1), worker)
    assert res.returns[0] is True


def test_successive_collectives_reuse_scratch():
    def worker(api):
        total = 0.0
        for i in range(3):
            out = yield from allreduce(api, "loop", [1.0])
            total += float(out[0])
        return total

    res = run_parallel(cfg(3), worker)
    assert all(v == 9.0 for v in res.returns.values())


def test_collectives_compose_into_dot_product():
    """A realistic use: distributed dot product via scatter + allreduce."""
    n = 32

    def worker(api):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=n), rng.normal(size=n)
        chunk = n // api.size
        xs = yield from scatter(api, "dotx", x if api.rank == 0 else None, chunk)
        ys = yield from scatter(api, "doty", y if api.rank == 0 else None, chunk)
        partial = float(xs @ ys)
        out = yield from allreduce(api, "dot", [partial])
        return float(out[0])

    res = run_parallel(cfg(4), worker)
    rng = np.random.default_rng(5)
    x, y = rng.normal(size=32), rng.normal(size=32)
    expected = float(x @ y)
    assert all(abs(v - expected) < 1e-9 for v in res.returns.values())
