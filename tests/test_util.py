"""Tests for the util package: units and table rendering."""

import pytest

from repro.util import (
    KB,
    MB,
    MBPS,
    MS,
    US,
    Table,
    bits,
    bytes_from_bits,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    render_series,
    render_table,
    transmission_time,
)


# ------------------------------------------------------------- units
def test_constants():
    assert KB == 1024 and MB == 1024 * 1024
    assert US == pytest.approx(1e-6) and MS == pytest.approx(1e-3)


def test_bits_roundtrip():
    assert bits(100) == 800
    assert bytes_from_bits(800) == 100


def test_transmission_time():
    # 1500 bytes at 10 Mbit/s = 1.2 ms
    assert transmission_time(1500, 10e6) == pytest.approx(1.2e-3)
    assert transmission_time(0, 10e6) == 0.0


def test_transmission_time_validation():
    with pytest.raises(ValueError):
        transmission_time(100, 0)
    with pytest.raises(ValueError):
        transmission_time(-1, 10e6)


def test_fmt_time_scales():
    assert fmt_time(0) == "0s"
    assert fmt_time(5e-7) == "0.5us"
    assert fmt_time(2.5e-3) == "2.50ms"
    assert fmt_time(1.5) == "1.500s"
    assert fmt_time(300) == "5.00min"
    assert fmt_time(-1.5) == "-1.500s"


def test_fmt_bytes_scales():
    assert fmt_bytes(100) == "100B"
    assert fmt_bytes(2048) == "2.0KiB"
    assert fmt_bytes(3 * MB) == "3.00MiB"


def test_fmt_rate_scales():
    assert fmt_rate(10e6) == "10.0Mbit/s"
    assert fmt_rate(9600) == "9.6kbit/s"
    assert fmt_rate(300) == "300bit/s"
    assert fmt_rate(MBPS) == "1.0Mbit/s"


# ------------------------------------------------------------- tables
def test_render_table_alignment():
    text = render_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert len({len(l) for l in lines}) == 1
    assert "long-name" in lines[3]


def test_render_table_title():
    text = render_table(["x"], [[1]], title="My Title")
    assert text.splitlines()[0] == "My Title"


def test_render_table_ragged_row_rejected():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_table_float_formats():
    text = render_table(["v"], [[0.00001], [12345678.0], [1.5], [0.0]])
    assert "1.000e-05" in text
    assert "1.235e+07" in text
    assert "1.5" in text
    assert "0" in text


def test_render_series():
    text = render_series("p", [1, 2], {"a": [1.0, 2.0], "b": [3.0]}, title="fig")
    assert "fig" in text
    lines = text.splitlines()
    assert len(lines) == 5  # title + header + sep + 2 rows
    # shorter series padded with blank
    assert lines[-1].rstrip().endswith("")


def test_table_incremental():
    t = Table(["a", "b"], title="T")
    t.add(1, 2)
    t.add(3, 4)
    text = str(t)
    assert "T" in text and "3" in text


def test_table_wrong_width():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)
