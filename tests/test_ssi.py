"""Tests for the single-system-image layer."""

import pytest

from repro.dse import Cluster, ClusterConfig, ParallelAPI, run_master, run_parallel
from repro.errors import SSIError
from repro.hardware import get_platform
from repro.ssi import (
    GlobalNamespace,
    KVClient,
    KVService,
    SSIFileSystem,
    SSIView,
    install_policy,
    least_loaded,
    node_info,
    round_robin_machines,
)


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def run_with_services(config, master):
    """run_master with a KV service installed on kernel 0."""
    from repro.dse.runtime import run_master as _run

    # Build the cluster manually so we can install the service pre-run.
    cluster = Cluster(config)
    KVService(cluster.kernel(0))
    outcome = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        outcome["value"] = yield from master(api, cluster)
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()
    return outcome["value"], cluster


# ------------------------------------------------------------- namespace
def test_gpid_roundtrip():
    gpid = GlobalNamespace.gpid_of(3, 123)
    assert GlobalNamespace.split(gpid) == (3, 123)


def test_gpid_stride_guard():
    with pytest.raises(SSIError):
        GlobalNamespace.gpid_of(0, 10**7)


def test_process_table_lists_kernels():
    cluster = Cluster(cfg(4))
    cluster.sim.run(until=0.001)
    ns = GlobalNamespace(cluster)
    rows = ns.processes()
    kernel_rows = [r for r in rows if r.name.startswith("dse-k")]
    assert len(kernel_rows) == 4
    hostnames = {r.hostname for r in rows}
    assert len(hostnames) == 4


def test_resolve_gpid():
    cluster = Cluster(cfg(2))
    cluster.sim.run(until=0.001)
    ns = GlobalNamespace(cluster)
    row = ns.processes()[0]
    proc = ns.resolve(row.gpid)
    assert proc.pid == row.local_pid


def test_resolve_bad_gpid():
    cluster = Cluster(cfg(2))
    ns = GlobalNamespace(cluster)
    with pytest.raises(SSIError):
        ns.resolve(GlobalNamespace.gpid_of(1, 99999))
    with pytest.raises(SSIError):
        ns.resolve(GlobalNamespace.gpid_of(77, 1))


def test_find_by_name():
    cluster = Cluster(cfg(2))
    cluster.sim.run(until=0.001)
    ns = GlobalNamespace(cluster)
    assert ns.find("dse-k1") is not None
    assert ns.find("nonexistent-daemon") is None


# ------------------------------------------------------------- views
def test_uname_presents_single_system():
    cluster = Cluster(cfg(6))
    view = SSIView(cluster)
    text = view.uname()
    assert "6 processors" in text and "Linux" in text


def test_ps_and_top_render():
    cluster = Cluster(cfg(8, n_machines=6))  # virtual cluster
    cluster.sim.run(until=0.01)
    view = SSIView(cluster)
    ps = view.ps()
    assert "cluster ps" in ps and "dse-k0" in ps
    top = view.top()
    assert "node00" in top
    # machine 0 hosts kernels 0 and 6 in the 8-on-6 layout
    assert "k0,k6" in top
    net = view.netstat()
    assert "collisions" in net


def test_node_info_rpc():
    def worker(api):
        infos = []
        for k in range(api.size):
            info = yield from node_info(api, k)
            infos.append(info)
        return infos

    res = run_parallel(cfg(3), worker)
    infos = res.returns[0]
    assert [i["kernel_id"] for i in infos] == [0, 1, 2]
    assert all("hostname" in i and "load_average" in i for i in infos)


# ------------------------------------------------------------- KV + FS
def test_kv_put_get_delete_list():
    def master(api, cluster):
        kv = KVClient(api)
        yield from kv.put("alpha", 1, 8)
        yield from kv.put("beta", [2, 3], 16)
        v = yield from kv.get("alpha")
        missing = yield from kv.get("gamma", default="dflt")
        keys = yield from kv.list()
        removed = yield from kv.delete("alpha")
        removed_again = yield from kv.delete("alpha")
        return (v, missing, keys, removed, removed_again)

    value, _ = run_with_services(cfg(2), master)
    assert value == (1, "dflt", ["alpha", "beta"], True, False)


def test_kv_empty_key_rejected():
    def master(api, cluster):
        kv = KVClient(api)
        with pytest.raises(SSIError):
            yield from kv.put("", 1, 8)
        return True

    value, _ = run_with_services(cfg(1, n_machines=1), master)
    assert value is True


def test_fs_single_namespace_across_nodes():
    """A file written on one node must be readable by all other nodes —
    the single-file-system-image property."""
    cluster = Cluster(cfg(4))
    KVService(cluster.kernel(0))
    seen = {}

    def worker(api):
        fs = SSIFileSystem(api)
        if api.rank == 2:
            yield from fs.write("/etc/motd", "one system image")
        yield from api.barrier("written")
        content = yield from fs.read("/etc/motd")
        seen[api.rank] = content
        yield from api.barrier("read")
        return content

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        handles = yield from api.spawn_workers(worker)
        mine = yield from worker(api)
        yield from api.wait_workers(handles)
        yield from cluster.shutdown_from(0)
        return mine

    cluster.sim.process(driver())
    cluster.sim.run_all()
    assert seen == {r: "one system image" for r in range(4)}


def test_fs_operations():
    def master(api, cluster):
        fs = SSIFileSystem(api)
        yield from fs.write("/home/user/a.txt", "A")
        yield from fs.write("/home/user/b.txt", "B")
        yield from fs.write("/home/user/sub/c.txt", "C")
        names = yield from fs.listdir("/home/user")
        exists = yield from fs.exists("/home/user/a.txt")
        yield from fs.append("/home/user/a.txt", "A2")
        content = yield from fs.read("/home/user/a.txt")
        yield from fs.unlink("/home/user/b.txt")
        gone = yield from fs.exists("/home/user/b.txt")
        return (names, exists, content, gone)

    value, _ = run_with_services(cfg(2), master)
    names, exists, content, gone = value
    assert names == ["a.txt", "b.txt", "sub/"]
    assert exists is True
    assert content == "AA2"
    assert gone is False


def test_fs_errors():
    def master(api, cluster):
        fs = SSIFileSystem(api)
        with pytest.raises(SSIError):
            yield from fs.read("/missing")
        with pytest.raises(SSIError):
            yield from fs.unlink("/missing")
        with pytest.raises(SSIError):
            yield from fs.write("relative/path", "x")
        return True

    value, _ = run_with_services(cfg(1, n_machines=1), master)
    assert value is True


# ------------------------------------------------------------- placement
def test_round_robin_machines_policy():
    cluster = Cluster(cfg(8, n_machines=4))
    install_policy(cluster, round_robin_machines)
    placements = [cluster.placement(r) for r in range(8)]
    machines = [cluster.config.machine_of(k) for k in placements]
    # First four processes land on four distinct machines.
    assert len(set(machines[:4])) == 4


def test_least_loaded_policy_prefers_idle_machines():
    cluster = Cluster(cfg(4))
    cluster.sim.run(until=0.001)  # let the kernels boot
    install_policy(cluster, least_loaded)
    # All machines host 1 kernel process; add one extra on machine 0.
    cluster.machines[0].spawn(lambda proc: iter(()), name="hog")
    choice = cluster.placement(0)
    assert cluster.kernel(choice).machine is not cluster.machines[0]


def test_placement_policy_validated():
    cluster = Cluster(cfg(2))
    install_policy(cluster, lambda rank, c: 99)
    with pytest.raises(SSIError):
        cluster.placement(0)
