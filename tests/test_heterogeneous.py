"""Tests for heterogeneous clusters (mixed platforms in one DSE system).

The paper's stated goal is a *portable* environment across heterogeneous
UNIX boxes; this verifies a single DSE program runs correctly — and with
sensible timing — on a cluster mixing all three Table-1 platforms.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel_worker, make_system
from repro.dse import Cluster, ClusterConfig, run_parallel
from repro.errors import ConfigurationError
from repro.hardware import AIX_RS6000, LINUX_PCAT, SUNOS_SPARCSTATION


MIXED = (SUNOS_SPARCSTATION, AIX_RS6000, LINUX_PCAT)


def mixed_cfg(p=3, **kw):
    return ClusterConfig(n_processors=p, n_machines=3, platforms=MIXED, **kw)


def test_machines_get_their_platforms():
    cluster = Cluster(mixed_cfg())
    names = [m.platform.name for m in cluster.machines]
    assert names == [p.name for p in MIXED]


def test_platforms_cycle_when_fewer_than_machines():
    config = ClusterConfig(
        n_processors=6, n_machines=6, platforms=(SUNOS_SPARCSTATION, LINUX_PCAT)
    )
    cluster = Cluster(config)
    names = [m.platform.name for m in cluster.machines]
    assert names[0] == names[2] == SUNOS_SPARCSTATION.name
    assert names[1] == names[3] == LINUX_PCAT.name


def test_empty_platforms_rejected():
    with pytest.raises(ConfigurationError):
        ClusterConfig(n_processors=2, platforms=())


def test_mixed_cluster_runs_correctly():
    """Same program, mixed machines: results identical to homogeneous."""

    def worker(api):
        yield from api.gm_write(api.rank, [float(api.rank + 1)])
        yield from api.barrier("w")
        data = yield from api.gm_read(0, api.size)
        return float(data.sum())

    res = run_parallel(mixed_cfg(), worker)
    assert all(v == 6.0 for v in res.returns.values())


def test_mixed_cluster_gauss_seidel_converges():
    res = run_parallel(mixed_cfg(), gauss_seidel_worker, args=(40, 20))
    a, b = make_system(40)
    truth = np.linalg.solve(a, b)
    assert np.allclose(res.returns[0]["x"], truth, atol=1e-6)


def test_slowest_machine_dominates_synchronous_phases():
    """A barrier-coupled compute phase runs at the SparcStation's pace."""

    def worker(api):
        yield from api.barrier("start")
        t0 = api.now
        yield from api.compute(
            __import__("repro.hardware", fromlist=["Work"]).Work(flops=1e6)
        )
        yield from api.barrier("end")
        return api.now - t0

    res = run_parallel(mixed_cfg(), worker)
    phase = res.returns[0]
    # 1e6 flops on the slowest (4 MFLOPS) machine = 0.25s; the barrier
    # stretches every rank to at least that.
    assert phase >= 0.24


def test_mixed_cluster_deterministic():
    def worker(api):
        yield from api.lock("L")
        yield from api.unlock("L")
        yield from api.barrier("b")
        return api.now

    r1 = run_parallel(mixed_cfg(), worker)
    r2 = run_parallel(mixed_cfg(), worker)
    assert r1.returns == r2.returns
