"""Tests for the transport layer: fragmentation, datagram, reliable."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.network import NIC, EthernetBus, EthernetFrame, ETH_MTU
from repro.protocol import (
    DatagramService,
    Packet,
    ReliableService,
    UDP_HEADER_BYTES,
    fragment_sizes,
    make_transport,
)
from repro.sim import RandomStreams, Simulator


def make_pair(sim, kind="datagram", n=2):
    """Two (or n) stations on one bus with the requested transport."""
    bus = EthernetBus(sim, RandomStreams(7))
    out = []
    for i in range(n):
        nic = NIC(sim, bus, i)
        out.append(make_transport(sim, nic, kind))
    return bus, out


# ------------------------------------------------------------- fragmentation
def test_fragment_sizes_small():
    assert fragment_sizes(100) == [100]


def test_fragment_sizes_zero_payload_one_fragment():
    assert fragment_sizes(0) == [0]


def test_fragment_sizes_exact_boundary():
    usable = ETH_MTU - UDP_HEADER_BYTES
    assert fragment_sizes(usable) == [usable]
    assert fragment_sizes(usable + 1) == [usable, 1]


def test_fragment_sizes_total_preserved():
    for n in (1, 1000, 5000, 123457):
        assert sum(fragment_sizes(n)) == n


def test_fragment_sizes_tiny_mtu_rejected():
    with pytest.raises(ProtocolError):
        fragment_sizes(10, mtu=UDP_HEADER_BYTES)


def test_packet_port_validation():
    with pytest.raises(ProtocolError):
        Packet(src=0, dst=1, src_port=0, dst_port=70000, payload=None, payload_bytes=0)


# ------------------------------------------------------------- datagram
def test_datagram_roundtrip():
    sim = Simulator()
    _, (a, b) = make_pair(sim)
    mbox = b.bind(9)

    def sender():
        yield from a.send(1, 9, {"op": "ping"}, 64)

    def receiver():
        pkt = yield mbox.get()
        return pkt.payload

    sim.process(sender())
    p = sim.process(receiver())
    assert sim.run(p) == {"op": "ping"}


def test_datagram_large_payload_fragments_and_reassembles():
    sim = Simulator()
    _, (a, b) = make_pair(sim)
    mbox = b.bind(5)
    nbytes = 10_000  # > 6 fragments

    def sender():
        yield from a.send(1, 5, "big", nbytes)

    def receiver():
        pkt = yield mbox.get()
        return pkt

    sim.process(sender())
    pkt = sim.run(sim.process(receiver()))
    assert pkt.payload == "big"
    assert pkt.payload_bytes == nbytes
    assert a.stats.counter("fragments_sent").value >= 7
    # exactly one packet delivered despite many fragments
    assert b.stats.counter("packets_received").value == 1


def test_datagram_multiple_ports_independent():
    sim = Simulator()
    _, (a, b) = make_pair(sim)
    m1, m2 = b.bind(1), b.bind(2)

    def sender():
        yield from a.send(1, 2, "to-2", 10)
        yield from a.send(1, 1, "to-1", 10)

    def recv(m):
        pkt = yield m.get()
        return pkt.payload

    sim.process(sender())
    p1 = sim.process(recv(m1))
    p2 = sim.process(recv(m2))
    assert sim.run(p1) == "to-1"
    assert sim.run(p2) == "to-2"


def test_datagram_unbound_port_drops():
    sim = Simulator()
    _, (a, b) = make_pair(sim)

    def sender():
        yield from a.send(1, 42, "lost", 10)

    sim.process(sender())
    sim.run_all()
    assert b.stats.counter("packets_no_port").value == 1


def test_datagram_double_bind_rejected():
    sim = Simulator()
    _, (a, _b) = make_pair(sim)
    a.bind(3)
    with pytest.raises(ProtocolError):
        a.bind(3)


def test_datagram_unbind():
    sim = Simulator()
    _, (a, _b) = make_pair(sim)
    a.bind(3)
    a.unbind(3)
    a.bind(3)  # rebindable
    with pytest.raises(ProtocolError):
        a.unbind(99)


def test_datagram_on_arrival_hook_fires_before_queue():
    sim = Simulator()
    _, (a, b) = make_pair(sim)
    mbox = b.bind(9)
    hooks = []
    mbox.on_arrival = lambda pkt: hooks.append(pkt.payload)

    def sender():
        yield from a.send(1, 9, "sig", 10)

    sim.process(sender())
    sim.run_all()
    assert hooks == ["sig"]
    assert len(mbox) == 1


def test_datagram_filtered_get():
    sim = Simulator()
    _, (a, b) = make_pair(sim)
    mbox = b.bind(9)

    def sender():
        yield from a.send(1, 9, ("req", 1), 10)
        yield from a.send(1, 9, ("rsp", 2), 10)

    def receiver():
        pkt = yield mbox.get(filter=lambda p: p.payload[0] == "rsp")
        return pkt.payload

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == ("rsp", 2)


def test_datagram_interleaved_fragments_from_two_senders():
    sim = Simulator()
    _, (a, b, c) = make_pair(sim, n=3)
    mbox = c.bind(7)

    def sender(svc, tag):
        yield from svc.send(2, 7, tag, 6000)

    def receiver():
        got = []
        for _ in range(2):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return sorted(got)

    sim.process(sender(a, "from-a"))
    sim.process(sender(b, "from-b"))
    assert sim.run(sim.process(receiver())) == ["from-a", "from-b"]


# ------------------------------------------------------------- reliable
def test_reliable_roundtrip():
    sim = Simulator()
    _, (a, b) = make_pair(sim, kind="reliable")
    mbox = b.bind(4)

    def sender():
        yield from a.send(1, 4, "must-arrive", 128)
        return "acked"

    def receiver():
        pkt = yield mbox.get()
        return pkt.payload

    ps = sim.process(sender())
    pr = sim.process(receiver())
    assert sim.run(pr) == "must-arrive"
    assert sim.run(ps) == "acked"
    assert a.stats.counter("retransmissions").value == 0


def test_reliable_in_order_stream():
    sim = Simulator()
    _, (a, b) = make_pair(sim, kind="reliable")
    mbox = b.bind(4)

    def sender():
        for i in range(5):
            yield from a.send(1, 4, i, 32)

    def receiver():
        got = []
        for _ in range(5):
            pkt = yield mbox.get()
            got.append(pkt.payload)
        return got

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == [0, 1, 2, 3, 4]


def test_reliable_retransmits_on_loss():
    """Drop the first data segment at the link layer; the reliable layer
    must retransmit and still deliver exactly once."""
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    a = ReliableService(sim, DatagramService(sim, nic_a), retransmit_timeout=0.01)
    b = ReliableService(sim, DatagramService(sim, nic_b))
    mbox = b.bind(4)

    # Sabotage: swallow the first data frame before the datagram layer sees it.
    real_cb = nic_b._rx_callback
    dropped = []

    def lossy(frame):
        frag = frame.payload
        if not dropped and getattr(frag.packet.payload, "kind", "") == "data":
            dropped.append(frame)
            return
        real_cb(frame)

    nic_b.on_receive(lossy)

    def sender():
        yield from a.send(1, 4, "persistent", 64)

    def receiver():
        pkt = yield mbox.get()
        return pkt.payload

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == "persistent"
    assert dropped, "test harness should have dropped one frame"
    assert a.stats.counter("retransmissions").value >= 1
    assert b.stats.counter("delivered").value == 1


def test_reliable_duplicate_suppression():
    """A lost *ack* causes a retransmission the receiver must drop."""
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    a = ReliableService(sim, DatagramService(sim, nic_a), retransmit_timeout=0.01)
    b = ReliableService(sim, DatagramService(sim, nic_b))
    mbox = b.bind(4)

    real_cb = nic_a._rx_callback
    dropped = []

    def lossy(frame):
        frag = frame.payload
        if not dropped and getattr(frag.packet.payload, "kind", "") == "ack":
            dropped.append(frame)
            return
        real_cb(frame)

    nic_a.on_receive(lossy)

    def sender():
        yield from a.send(1, 4, "once", 64)

    def receiver():
        pkt = yield mbox.get()
        return pkt.payload

    sim.process(sender())
    assert sim.run(sim.process(receiver())) == "once"
    sim.run_all()
    assert dropped
    assert b.stats.counter("duplicates_dropped").value >= 1
    assert b.stats.counter("delivered").value == 1


def test_reliable_gives_up_after_max_retries():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic_a, nic_b = NIC(sim, bus, 0), NIC(sim, bus, 1)
    a = ReliableService(
        sim, DatagramService(sim, nic_a), retransmit_timeout=0.001, max_retries=2
    )
    b = ReliableService(sim, DatagramService(sim, nic_b))
    b.bind(4)
    nic_b.on_receive(lambda frame: None)  # black hole

    def sender():
        yield from a.send(1, 4, "void", 64)

    p = sim.process(sender())
    with pytest.raises(ProtocolError, match="failed after"):
        sim.run(p)


def test_reliable_port_range_guard():
    sim = Simulator()
    _, (a, _b) = make_pair(sim, kind="reliable")
    with pytest.raises(ProtocolError):
        a.bind(40000)


def test_make_transport_unknown_kind():
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(7))
    nic = NIC(sim, bus, 0)
    with pytest.raises(ConfigurationError):
        make_transport(sim, nic, "carrier-pigeon")
