"""Smoke tests: every bundled example must run to completion.

The examples are the quickstart documentation; they execute real cluster
runs, so breaking any public API breaks these first.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{name} produced no output"
