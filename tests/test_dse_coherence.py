"""Tests for the write-invalidate caching DSM (coherence ablation)."""

import numpy as np
import pytest

from repro.dse import Cluster, ClusterConfig, run_master, run_parallel
from repro.dse.coherence import CachingGlobalMemory, EXCLUSIVE, SHARED
from repro.hardware import get_platform


def cfg(**kw):
    kw.setdefault("platform", get_platform("linux"))
    kw.setdefault("n_processors", 4)
    kw.setdefault("coherence", "cache")
    kw.setdefault("total_gm_words", 1 << 16)
    kw.setdefault("block_words", 64)
    return ClusterConfig(**kw)


def test_cluster_builds_caching_manager():
    cluster = Cluster(cfg())
    assert isinstance(cluster.kernel(0).gmem, CachingGlobalMemory)
    assert cluster.kernel(0).gmem.policy_name == "cache"


def test_block_span_covers_range():
    cluster = Cluster(cfg())
    gm = cluster.kernel(0).gmem
    spans = list(gm.block_span(60, 80))  # crosses a 64-word block boundary
    assert spans[0][0] == 0 and spans[-1][0] == 2
    covered = sum(hi - lo for _, _, lo, hi in spans)
    assert covered == 80


def test_roundtrip_and_cache_hit():
    def master(api):
        gm = api.kernel.gmem
        yield from api.gm_write(1000, np.arange(10, dtype=float))
        a = yield from api.gm_read(1000, 10)
        b = yield from api.gm_read(1000, 10)  # second read: cache hit
        return (
            list(a),
            list(b),
            gm.stats.counter("hits").value,
            gm.stats.counter("misses").value,
        )

    a, b, hits, misses = run_master(cfg(), master).returns[0]
    assert a == b == list(range(10))
    assert hits >= 1


def test_remote_read_caches_shared_state():
    def worker(api):
        gm = api.kernel.gmem
        if api.rank == 0:
            yield from api.gm_write(0, [7.0])
        yield from api.barrier("w")
        v1 = yield from api.gm_read_scalar(0)
        state = gm.cached_state(0)
        return (v1, state)

    res = run_parallel(cfg(), worker)
    for rank, (v, state) in res.returns.items():
        assert v == 7.0
        if rank != 0:
            assert state == SHARED
    # rank 0 wrote, so it holds the block exclusively
    assert res.returns[0][1] == EXCLUSIVE


def test_write_invalidates_sharers():
    """After rank 1 writes, every other rank must observe the new value."""

    def worker(api):
        yield from api.gm_read_scalar(0)  # everyone caches the block SHARED
        yield from api.barrier("cached")
        if api.rank == 1:
            yield from api.gm_write_scalar(0, 99.0)
        yield from api.barrier("written")
        v = yield from api.gm_read_scalar(0)
        return v

    res = run_parallel(cfg(), worker)
    assert all(v == 99.0 for v in res.returns.values())


def test_ownership_migrates_between_writers():
    def worker(api):
        for i in range(api.size):
            if api.rank == i:
                v = yield from api.gm_read_scalar(0)
                yield from api.gm_write_scalar(0, v + 1.0)
            yield from api.barrier(f"turn{i}")
        return (yield from api.gm_read_scalar(0))

    res = run_parallel(cfg(), worker)
    assert all(v == 4.0 for v in res.returns.values())


def test_dirty_data_recalled_to_reader():
    """A reader must see data that only ever lived in a writer's cache."""

    def worker(api):
        if api.rank == 2:
            yield from api.gm_write(128, np.full(64, 3.25))  # one whole block
        yield from api.barrier("w")
        if api.rank == 3:
            data = yield from api.gm_read(128, 64)
            return float(data.sum())
        return None

    res = run_parallel(cfg(), worker)
    assert res.returns[3] == pytest.approx(64 * 3.25)


def test_repeated_local_access_sends_no_messages():
    def master(api):
        gm = api.kernel.gmem
        addr = gm.slice_words + 10  # homed on kernel 1: remote for master
        yield from api.gm_write_scalar(addr, 1.0)
        before = gm.stats.counter("misses").value + gm.stats.counter("upgrades").value
        for i in range(20):
            v = yield from api.gm_read_scalar(addr)
            yield from api.gm_write_scalar(addr, v + 1.0)
        after = gm.stats.counter("misses").value + gm.stats.counter("upgrades").value
        final = yield from api.gm_read_scalar(addr)
        return (before, after, final)

    before, after, final = run_master(cfg(), master).returns[0]
    assert after == before  # all 40 accesses were cache hits
    assert final == 21.0


def test_cache_beats_home_for_repeated_remote_access():
    """The ablation's headline: repeated access to a remote block is much
    cheaper with caching than with per-access request/response."""

    def worker(api):
        gm = api.kernel.gmem
        addr = gm.slice_words * (api.size - 1) + 5  # homed on the last kernel
        if api.rank == 0:
            total = 0.0
            for _ in range(30):
                total += yield from api.gm_read_scalar(addr)
        yield from api.barrier("end")
        return True

    t_home = run_parallel(cfg(coherence="home"), worker).elapsed
    t_cache = run_parallel(cfg(coherence="cache"), worker).elapsed
    assert t_cache < 0.5 * t_home


def test_home_beats_cache_for_pingpong():
    """...and the reverse: a write-ping-pong between two ranks is cheaper
    without ownership migration."""

    def worker(api):
        for i in range(10):
            if api.rank == i % 2:
                v = yield from api.gm_read_scalar(0)
                yield from api.gm_write_scalar(0, v + 1)
            yield from api.barrier(f"b{i}")
        return (yield from api.gm_read_scalar(0))

    t_home = run_parallel(cfg(coherence="home", n_processors=2), worker)
    t_cache = run_parallel(cfg(coherence="cache", n_processors=2), worker)
    assert all(v == 10.0 for v in t_home.returns.values())
    assert all(v == 10.0 for v in t_cache.returns.values())
    assert t_home.elapsed < t_cache.elapsed


def test_concurrent_writers_different_blocks_no_interference():
    def worker(api):
        addr = api.rank * 64  # one block each
        for i in range(5):
            yield from api.gm_write(addr, np.full(64, float(i)))
        data = yield from api.gm_read(addr, 64)
        yield from api.barrier("end")
        return float(data[0])

    res = run_parallel(cfg(), worker)
    assert all(v == 4.0 for v in res.returns.values())


def test_contended_counter_correct_under_caching():
    def worker(api):
        for _ in range(8):
            yield from api.lock("c")
            v = yield from api.gm_read_scalar(0)
            yield from api.gm_write_scalar(0, v + 1)
            yield from api.unlock("c")
        yield from api.barrier("end")
        return (yield from api.gm_read_scalar(0))

    res = run_parallel(cfg(n_processors=6), worker)
    assert all(v == 48.0 for v in res.returns.values())


def test_recall_during_pending_install():
    """A recall targeting a grant whose response is still in flight must
    wait for the install, then invalidate — never miss the line.

    Every rank hammers the same block with unsynchronised exclusive writes,
    so the home's recalls constantly race the requesters' pending installs.
    If an invalidation ever slipped past an in-flight install, a stale
    exclusive copy would survive and the post-barrier reads would diverge
    (or the run would deadlock on a lost pending marker).
    """

    def worker(api):
        for i in range(5):
            yield from api.gm_write_scalar(0, float(api.rank * 100 + i))
        yield from api.barrier("done")
        return (yield from api.gm_read_scalar(0))

    res = run_parallel(cfg(), worker)
    values = set(res.returns.values())
    assert len(values) == 1  # every rank agrees on the final value
    # ...and it is one of the values actually written.
    assert values.pop() in {float(r * 100 + i) for r in range(4) for i in range(5)}


def test_recall_during_pending_install_batched():
    """The same install/recall race must hold for multi-block batched
    fills, where one pending marker covers a span of blocks."""

    def worker(api):
        # Multi-block unsynchronised writes: batched exclusive fills of
        # blocks 0-1 race recalls for both blocks.
        for i in range(5):
            yield from api.gm_write(0, np.full(128, float(api.rank * 100 + i)))
        yield from api.barrier("done")
        data = yield from api.gm_read(0, 128)
        return list(data)

    res = run_parallel(cfg(gmem_batching=True), worker)
    rows = list(res.returns.values())
    assert all(row == rows[0] for row in rows)  # all ranks agree
    legal = {float(r * 100 + i) for r in range(4) for i in range(5)}
    # Block-granularity writes: each 64-word block is uniform and holds one
    # of the written values (cross-block atomicity is NOT promised).
    for block in (rows[0][:64], rows[0][64:]):
        assert len(set(block)) == 1
        assert block[0] in legal


def test_cache_deterministic():
    def worker(api):
        for _ in range(3):
            yield from api.lock("c")
            v = yield from api.gm_read_scalar(0)
            yield from api.gm_write_scalar(0, v + 1)
            yield from api.unlock("c")
        yield from api.barrier("end")
        return api.now

    r1 = run_parallel(cfg(n_processors=5), worker)
    r2 = run_parallel(cfg(n_processors=5), worker)
    assert r1.returns == r2.returns
