"""Tests for the run profiler."""

import pytest

from repro.dse import ClusterConfig, RunResult, run_parallel
from repro.errors import ConfigurationError
from repro.experiments import profile_result
from repro.hardware import get_platform


def worker(api):
    yield from api.gm_write(api.rank, [1.0])
    yield from api.barrier("w")
    yield from api.gm_read(0, api.size)
    yield from api.barrier("r")
    return True


def run(p=4):
    return run_parallel(
        ClusterConfig(platform=get_platform("sunos"), n_processors=p), worker
    )


def test_profile_structure():
    profile = profile_result(run())
    assert len(profile.kernels) == 4
    assert len(profile.machines) == 4
    assert profile.fabric["frames_sent"] > 0
    assert profile.elapsed > 0


def test_profile_locality_ratio_bounds():
    profile = profile_result(run())
    assert 0.0 <= profile.locality_ratio <= 1.0
    # Some operations are local (own-slice writes), some remote (reads of
    # other slices): the ratio must be strictly between the extremes.
    assert profile.total_local_calls > 0
    assert profile.total_remote_requests > 0


def test_profile_single_processor_is_all_local():
    profile = profile_result(run(p=1))
    assert profile.total_remote_requests == 0
    assert profile.locality_ratio == 1.0
    assert profile.fabric["frames_sent"] == 0


def test_profile_render():
    text = profile_result(run()).render()
    assert "per-kernel profile" in text
    assert "per-machine profile" in text
    assert "collisions" in text
    assert "node00" in text


def test_profile_requires_cluster():
    bare = RunResult(elapsed=1.0, returns={})
    with pytest.raises(ConfigurationError):
        profile_result(bare)


def test_profile_books_balance():
    """Conservation: every kernel-to-kernel request is served somewhere."""
    profile = profile_result(run())
    sent = profile.total_remote_requests
    served_remote = sum(k["requests_served"] for k in profile.kernels)
    # requests_served counts wire-arriving requests (incl. barrier/lock
    # traffic), so it must be at least the gm remote requests we counted.
    assert served_remote >= sent * 0.5
