"""Tests for the task-farming utility (farm / farm_dynamic)."""

import pytest

from repro.dse import ClusterConfig, farm, farm_dynamic, run_master
from repro.errors import DSEError
from repro.hardware import get_platform


def cfg(p=4, **kw):
    kw.setdefault("platform", get_platform("linux"))
    return ClusterConfig(n_processors=p, **kw)


def square_task(api, x):
    yield from api.compute_seconds(0.001)
    return x * x


def where_task(api, _x):
    yield from api.sleep(0)
    return api.kernel.kernel_id


def test_farm_results_in_order():
    def master(api):
        return (yield from farm(api, square_task, list(range(10))))

    res = run_master(cfg(), master)
    assert res.returns[0] == [x * x for x in range(10)]


def test_farm_round_robin_targets():
    def master(api):
        return (yield from farm(api, where_task, list(range(8))))

    res = run_master(cfg(4), master)
    assert res.returns[0] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_farm_explicit_targets():
    def master(api):
        return (yield from farm(api, where_task, list(range(4)), targets=[1, 2]))

    res = run_master(cfg(4), master)
    assert res.returns[0] == [1, 2, 1, 2]


def test_farm_bad_target():
    def master(api):
        with pytest.raises(DSEError):
            yield from farm(api, where_task, [1], targets=[9])
        return True

    assert run_master(cfg(2), master).returns[0] is True


def test_farm_empty_items():
    def master(api):
        out = yield from farm(api, square_task, [])
        yield from api.sleep(0)
        return out

    assert run_master(cfg(2), master).returns[0] == []


def test_farm_runs_concurrently():
    """10 x 10ms tasks across 5 kernels must take far less than 100ms."""

    def master(api):
        start = api.now

        def slow_task(api2, x):
            yield from api2.compute_seconds(0.010)
            return x

        yield from farm(api, slow_task, list(range(10)))
        return api.now - start

    elapsed = run_master(cfg(5, n_machines=5), master).returns[0]
    assert elapsed < 0.06


def test_farm_dynamic_matches_farm():
    def master(api):
        a = yield from farm(api, square_task, list(range(12)))
        b = yield from farm_dynamic(api, square_task, list(range(12)))
        return a, b

    a, b = run_master(cfg(3), master).returns[0]
    assert a == b


def test_farm_dynamic_bounds_in_flight():
    peak = {"v": 0, "cur": 0}

    def tracking_task(api, x):
        peak["cur"] += 1
        peak["v"] = max(peak["v"], peak["cur"])
        yield from api.compute_seconds(0.005)
        peak["cur"] -= 1
        return x

    def master(api):
        return (
            yield from farm_dynamic(api, tracking_task, list(range(12)), max_in_flight=3)
        )

    res = run_master(cfg(4), master)
    assert res.returns[0] == list(range(12))
    assert peak["v"] <= 3


def test_farm_dynamic_validation():
    def master(api):
        with pytest.raises(DSEError):
            yield from farm_dynamic(api, square_task, [1], max_in_flight=0)
        return True

    assert run_master(cfg(2), master).returns[0] is True


def test_farmed_tasks_share_global_memory():
    def writer_task(api, slot):
        yield from api.gm_write_scalar(slot, float(slot * 10))
        return slot

    def master(api):
        yield from farm(api, writer_task, [1, 2, 3])
        vals = []
        for slot in (1, 2, 3):
            vals.append((yield from api.gm_read_scalar(slot)))
        return vals

    assert run_master(cfg(3), master).returns[0] == [10.0, 20.0, 30.0]
