"""Integration tests for the DSE runtime: global memory, sync, procman,
runner, virtual cluster, platform portability."""

import numpy as np
import pytest

from repro.dse import ClusterConfig, Cluster, run_master, run_parallel
from repro.errors import (
    ConfigurationError,
    DSEError,
    GlobalMemoryError,
)
from repro.hardware import get_platform


def cfg(**kw):
    kw.setdefault("platform", get_platform("linux"))
    kw.setdefault("n_processors", 4)
    return ClusterConfig(**kw)


# --------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ConfigurationError):
        cfg(n_processors=0)
    with pytest.raises(ConfigurationError):
        cfg(transport="smoke-signals")
    with pytest.raises(ConfigurationError):
        cfg(coherence="mesi-f")
    with pytest.raises(ConfigurationError):
        cfg(block_words=1 << 30, total_gm_words=128)


def test_config_virtual_cluster_placement():
    c = cfg(n_processors=12, n_machines=6)
    assert c.machines_used == 6
    assert c.machine_of(0) == 0
    assert c.machine_of(6) == 0
    assert c.machine_of(11) == 5
    assert c.max_colocation() == 2
    assert c.kernels_on(0) == [0, 6]


def test_config_small_cluster_uses_fewer_machines():
    c = cfg(n_processors=3, n_machines=6)
    assert c.machines_used == 3
    assert c.max_colocation() == 1


def test_config_with_processors_sweep_helper():
    c = cfg(n_processors=2)
    c8 = c.with_processors(8)
    assert c8.n_processors == 8 and c8.platform is c.platform


# --------------------------------------------------------------- gmem basics
def test_gm_write_read_roundtrip():
    def worker(api):
        if api.rank == 0:
            yield from api.gm_write(100, np.arange(32, dtype=float))
        yield from api.barrier("w")
        data = yield from api.gm_read(100, 32)
        return float(data.sum())

    res = run_parallel(cfg(), worker)
    expected = float(np.arange(32).sum())
    assert all(v == expected for v in res.returns.values())


def test_gm_alloc_returns_disjoint_ranges():
    def master(api):
        a = yield from api.gm_alloc(100)
        b = yield from api.gm_alloc(50)
        c = yield from api.gm_alloc(1)
        return (a, b, c)

    res = run_master(cfg(), master)
    a, b, c = res.returns[0]
    assert a < b < c
    assert b >= a + 100
    assert c >= b + 50


def test_gm_alloc_out_of_memory():
    def master(api):
        with pytest.raises(GlobalMemoryError):
            yield from api.gm_alloc(1 << 30)
        yield from api.sleep(0)
        return "ok"

    res = run_master(cfg(), master)
    assert res.returns[0] == "ok"


def test_gm_out_of_range_access_rejected():
    def master(api):
        with pytest.raises(GlobalMemoryError):
            yield from api.gm_read(api.kernel.gmem.total_words, 1)
        with pytest.raises(GlobalMemoryError):
            yield from api.gm_read(0, 0)
        with pytest.raises(GlobalMemoryError):
            yield from api.gm_write(api.kernel.gmem.total_words - 1, [1.0, 2.0])
        yield from api.sleep(0)
        return "ok"

    assert run_master(cfg(), master).returns[0] == "ok"


def test_gm_cross_slice_read_write():
    """A range spanning several home slices must still be coherent."""

    def master(api):
        gm = api.kernel.gmem
        # Straddle the boundary between kernel 0's and kernel 1's slices.
        addr = gm.slice_words - 10
        values = np.arange(20, dtype=float)
        yield from api.gm_write(addr, values)
        back = yield from api.gm_read(addr, 20)
        return np.array_equal(back, values)

    assert run_master(cfg(), master).returns[0] is True


def test_gm_home_runs_coalescing():
    """home_runs must merge contiguous words with the same home."""
    cluster = Cluster(cfg(n_processors=4, total_gm_words=4096, block_words=64))
    gm = cluster.kernel(0).gmem
    runs = gm.home_runs(0, 4096)
    assert len(runs) == 4  # one run per home slice
    assert [h for h, _, _ in runs] == [0, 1, 2, 3]
    assert sum(c for _, _, c in runs) == 4096


def test_gm_remote_vs_local_counters():
    def worker(api):
        gm = api.kernel.gmem
        # Address in kernel 0's slice: local for rank 0, remote otherwise.
        yield from api.gm_read(0, 4)
        return gm.stats.counter("remote_reads").value

    res = run_parallel(cfg(), worker)
    assert res.returns[0] == 0
    assert all(res.returns[r] == 1 for r in range(1, 4))


def test_gm_read_sees_latest_write_home_policy():
    def worker(api):
        for i in range(3):
            if api.rank == 0:
                yield from api.gm_write_scalar(7, float(i))
            yield from api.barrier(f"w{i}")
            v = yield from api.gm_read_scalar(7)
            assert v == float(i), (api.rank, i, v)
            yield from api.barrier(f"r{i}")
        return True

    res = run_parallel(cfg(), worker)
    assert all(res.returns.values())


# --------------------------------------------------------------- sync
def test_lock_mutual_exclusion():
    def worker(api):
        # Read-modify-write a shared counter 10 times under a lock; without
        # mutual exclusion updates would be lost.
        for _ in range(10):
            yield from api.lock("mutex")
            v = yield from api.gm_read_scalar(0)
            yield from api.gm_write_scalar(0, v + 1)
            yield from api.unlock("mutex")
        yield from api.barrier("end")
        return (yield from api.gm_read_scalar(0))

    res = run_parallel(cfg(n_processors=5), worker)
    assert all(v == 50.0 for v in res.returns.values())


def test_lock_without_mutex_loses_updates():
    """Sanity check that the lock test above is actually meaningful: the
    same read-modify-write WITHOUT the lock must lose updates."""

    def worker(api):
        for _ in range(10):
            v = yield from api.gm_read_scalar(0)
            yield from api.gm_write_scalar(0, v + 1)
        yield from api.barrier("end")
        return (yield from api.gm_read_scalar(0))

    res = run_parallel(cfg(n_processors=5), worker)
    assert any(v < 50.0 for v in res.returns.values())


def test_unlock_not_owner_fails():
    def master(api):
        with pytest.raises(DSEError):
            yield from api.unlock("never-held")
        yield from api.sleep(0)
        return "ok"

    assert run_master(cfg(), master).returns[0] == "ok"


def test_double_acquire_fails():
    def master(api):
        yield from api.lock("L")
        with pytest.raises(DSEError):
            yield from api.lock("L")
        yield from api.unlock("L")
        return "ok"

    assert run_master(cfg(), master).returns[0] == "ok"


def test_lock_fifo_handoff():
    order = []

    def worker(api):
        yield from api.barrier("go")
        yield from api.lock("q")
        order.append(api.rank)
        yield from api.compute_seconds(0.001)
        yield from api.unlock("q")
        return api.rank

    run_parallel(cfg(n_processors=4), worker)
    assert sorted(order) == [0, 1, 2, 3]
    assert len(set(order)) == 4


def test_barrier_synchronises_all_ranks():
    times = {}

    def worker(api):
        yield from api.compute_seconds(0.001 * (api.rank + 1))
        yield from api.barrier("sync")
        times[api.rank] = api.now
        return api.now

    res = run_parallel(cfg(n_processors=4), worker)
    vals = list(res.returns.values())
    # Everyone leaves the barrier at (nearly) the same time, after the
    # slowest rank's compute.
    assert max(vals) - min(vals) < 0.5 * max(vals)
    assert min(vals) >= 0.004


def test_barrier_reusable_same_name():
    def worker(api):
        for _ in range(3):
            yield from api.barrier("loop")
        return True

    res = run_parallel(cfg(n_processors=3), worker)
    assert all(res.returns.values())


def test_barrier_subset_parties():
    def worker(api):
        if api.rank < 2:
            yield from api.barrier("pair", parties=2)
        return True

    res = run_parallel(cfg(n_processors=4), worker)
    assert all(res.returns.values())


# --------------------------------------------------------------- procman / runtime
def test_run_parallel_returns_per_rank():
    def worker(api):
        yield from api.compute_seconds(0.0001)
        return api.rank * 10

    res = run_parallel(cfg(n_processors=6, n_machines=6), worker)
    assert res.returns == {r: r * 10 for r in range(6)}
    assert res.elapsed > 0
    assert res.sim_events > 0


def test_run_parallel_args():
    def worker(api, base):
        yield from api.sleep(0)
        return base + api.rank

    res = run_parallel(cfg(n_processors=3), worker, args=(100,))
    assert res.returns == {0: 100, 1: 101, 2: 102}


def test_run_parallel_args_of():
    def worker(api, v):
        yield from api.sleep(0)
        return v

    res = run_parallel(cfg(n_processors=3), worker, args_of=lambda r: (r * r,))
    assert res.returns == {0: 0, 1: 1, 2: 4}


def test_single_processor_run():
    def worker(api):
        yield from api.gm_write_scalar(0, 42.0)
        v = yield from api.gm_read_scalar(0)
        return v

    res = run_parallel(cfg(n_processors=1, n_machines=1), worker)
    assert res.returns == {0: 42.0}


def test_worker_exception_propagates():
    def worker(api):
        yield from api.sleep(0)
        raise ValueError("application bug")

    with pytest.raises(ValueError, match="application bug"):
        run_parallel(cfg(n_processors=2), worker)


# --------------------------------------------------------------- virtual cluster
def test_virtual_cluster_colocation_slows_compute():
    """8 kernels on 6 machines: the doubled machines dominate elapsed time."""

    def worker(api):
        yield from api.compute_seconds(0.1)
        yield from api.barrier("end")
        return True

    t6 = run_parallel(cfg(n_processors=6, n_machines=6), worker).elapsed
    t8 = run_parallel(cfg(n_processors=8, n_machines=6), worker).elapsed
    # With 8 kernels, two machines run 2 kernels each: compute there takes
    # >= 2x as long (plus context-switch tax).
    assert t8 > 1.8 * t6


def test_twelve_real_machines_avoid_the_slowdown():
    def worker(api):
        yield from api.compute_seconds(0.5)
        yield from api.barrier("end")
        return True

    t_virtual = run_parallel(cfg(n_processors=12, n_machines=6), worker).elapsed
    t_real = run_parallel(cfg(n_processors=12, n_machines=12), worker).elapsed
    assert t_virtual > 1.7 * t_real


# --------------------------------------------------------------- portability
@pytest.mark.parametrize("platform", ["sunos", "aix", "linux"])
def test_runs_identically_on_all_platforms(platform):
    """The portability claim: same program, same answers, every platform."""

    def worker(api):
        yield from api.gm_write(10 * api.rank, np.full(10, float(api.rank)))
        yield from api.barrier("w")
        data = yield from api.gm_read(0, 10 * api.size)
        return float(data.sum())

    res = run_parallel(cfg(platform=get_platform(platform)), worker)
    expected = float(sum(10 * r for r in range(4)))
    assert all(v == expected for v in res.returns.values())


def test_platform_order_preserved_in_elapsed():
    """Same compute-bound program: SparcStation slowest, PII fastest."""

    def worker(api):
        yield from api.compute(__import__("repro.hardware", fromlist=["Work"]).Work(flops=2e6))
        yield from api.barrier("end")
        return True

    times = {
        name: run_parallel(cfg(platform=get_platform(name), n_processors=2), worker).elapsed
        for name in ("sunos", "aix", "linux")
    }
    assert times["sunos"] > times["aix"] > times["linux"]


# --------------------------------------------------------------- determinism
def test_runs_are_deterministic():
    def worker(api):
        yield from api.lock("L")
        v = yield from api.gm_read_scalar(0)
        yield from api.gm_write_scalar(0, v + 1)
        yield from api.unlock("L")
        yield from api.barrier("end")
        return api.now

    r1 = run_parallel(cfg(n_processors=5), worker)
    r2 = run_parallel(cfg(n_processors=5), worker)
    assert r1.elapsed == r2.elapsed
    assert r1.returns == r2.returns
    assert r1.sim_events == r2.sim_events


def test_different_seed_changes_details_not_results():
    def worker(api):
        yield from api.lock("L")
        yield from api.unlock("L")
        yield from api.barrier("end")
        return api.rank

    r1 = run_parallel(cfg(n_processors=4, seed=1), worker)
    r2 = run_parallel(cfg(n_processors=4, seed=2), worker)
    assert r1.returns == r2.returns  # results identical
