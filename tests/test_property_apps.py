"""Property-based tests for the applications and the network."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.dct2 import compress_block, dct2_block, idct2_block
from repro.apps.gauss_seidel import make_system, row_partition
from repro.apps.knights_tour import knights_tour_workload
from repro.apps.othello import (
    BLACK,
    apply_move,
    evaluate,
    initial_board,
    legal_moves,
)
from repro.network import BROADCAST, EthernetBus, EthernetFrame
from repro.sim import RandomStreams, Simulator
from repro.util.tables import render_table


# ------------------------------------------------------------- Othello
def _random_position(rng_seed: int, plies: int):
    """A reachable position: random legal playout from the start."""
    import random

    rng = random.Random(rng_seed)
    board, player = initial_board(), BLACK
    for _ in range(plies):
        moves = legal_moves(board, player)
        if not moves:
            player = -player
            moves = legal_moves(board, player)
            if not moves:
                break
        board = apply_move(board, rng.choice(moves), player)
        player = -player
    return board, player


@given(seed=st.integers(0, 500), plies=st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_othello_move_invariants(seed, plies):
    board, player = _random_position(seed, plies)
    before = sum(1 for v in board if v != 0)
    for move in legal_moves(board, player):
        after_board = apply_move(board, move, player)
        after = sum(1 for v in after_board if v != 0)
        # exactly one disc added; at least one disc flipped to player
        assert after == before + 1
        own_before = sum(1 for v in board if v == player)
        own_after = sum(1 for v in after_board if v == player)
        assert own_after >= own_before + 2


@given(seed=st.integers(0, 500), plies=st.integers(0, 30))
@settings(max_examples=60, deadline=None)
def test_othello_evaluation_antisymmetric(seed, plies):
    board, _ = _random_position(seed, plies)
    assert evaluate(board, BLACK) == -evaluate(board, -BLACK)


@given(seed=st.integers(0, 100), plies=st.integers(0, 12))
@settings(max_examples=20, deadline=None)
def test_othello_alphabeta_equals_minimax(seed, plies):
    from repro.apps.othello import alphabeta

    def minimax(board, player, depth, passed=False):
        if depth == 0:
            return evaluate(board, player)
        moves = legal_moves(board, player)
        if not moves:
            if passed:
                return 1000 * sum(board) * player
            return -minimax(board, -player, depth - 1, True)
        return max(
            -minimax(apply_move(board, m, player), -player, depth - 1) for m in moves
        )

    board, player = _random_position(seed, plies)
    value, _nodes = alphabeta(board, player, 2)
    assert value == minimax(board, player, 2)


# ------------------------------------------------------------- Knight's Tour
@given(n_jobs=st.integers(min_value=1, max_value=400))
@settings(max_examples=12, deadline=None)
def test_knights_tour_split_preserves_totals(n_jobs):
    w = knights_tour_workload(n_jobs)
    assert w.total_tours == 304  # 5x5 corner constant
    # prefixes are a true partition: pairwise non-prefix of each other
    prefixes = [j.prefix for j in w.jobs]
    for i, a in enumerate(prefixes):
        for b in prefixes[i + 1 :]:
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            assert longer[: len(shorter)] != shorter or shorter == longer


# ------------------------------------------------------------- DCT
@given(
    data=st.lists(st.floats(min_value=-255, max_value=255), min_size=16, max_size=16),
)
@settings(max_examples=100)
def test_dct_roundtrip_property(data):
    block = np.array(data).reshape(4, 4)
    assert np.allclose(idct2_block(dct2_block(block)), block, atol=1e-8)


@given(
    data=st.lists(
        st.floats(min_value=-100, max_value=100), min_size=16, max_size=16
    ),
    keep=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=100)
def test_compress_never_increases_energy(data, keep):
    coeffs = np.array(data).reshape(4, 4)
    out = compress_block(coeffs, keep)
    assert np.sum(out**2) <= np.sum(coeffs**2) + 1e-9
    # surviving coefficients are unchanged
    mask = out != 0
    assert np.array_equal(out[mask], coeffs[mask])


# ------------------------------------------------------------- Gauss-Seidel
@given(n=st.integers(2, 80), size=st.integers(1, 12))
@settings(max_examples=100)
def test_row_partition_properties(n, size):
    bounds = row_partition(n, size)
    assert len(bounds) == size
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    lengths = [hi - lo for lo, hi in bounds]
    assert sum(lengths) == n
    assert max(lengths) - min(lengths) <= 1  # balanced
    for (l1, h1), (l2, h2) in zip(bounds, bounds[1:]):
        assert h1 == l2  # contiguous


@given(n=st.integers(2, 40), seed=st.integers(0, 1000))
@settings(max_examples=50)
def test_made_systems_always_dominant(n, seed):
    a, _ = make_system(n, seed)
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    assert np.all(diag > off)


# ------------------------------------------------------------- network
@given(
    n_stations=st.integers(min_value=2, max_value=8),
    n_frames=st.integers(min_value=1, max_value=10),
    seed=st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_ethernet_delivers_everything_exactly_once(n_stations, n_frames, seed):
    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(seed))
    received = []
    for i in range(n_stations):
        bus.attach(i, received.append)

    sent = []

    def sender(src):
        for k in range(n_frames):
            dst = (src + 1) % n_stations
            frame = EthernetFrame(src=src, dst=dst, payload=(src, k), payload_bytes=64)
            sent.append((src, k))
            yield from bus.send(frame)

    for i in range(n_stations):
        sim.process(sender(i))
    sim.run_all()
    got = [f.payload for f in received]
    assert sorted(got) == sorted(sent)


# ------------------------------------------------------------- tables
@given(
    rows=st.lists(
        st.tuples(
            st.integers(),
            st.floats(allow_nan=False, allow_infinity=False),
            # single-line cells (multi-line content is not supported)
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8,
            ),
        ),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=50)
def test_render_table_rectangular(rows):
    text = render_table(["a", "b", "c"], rows)
    lines = text.splitlines()
    assert len(lines) == 2 + len(rows)
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # perfectly aligned
