"""Tests for the sharded parallel-in-time engine (``repro.shard``).

The headline guarantee: ``--shards N`` produces byte-identical simulated
results — elapsed time, per-rank returns, the full statistics snapshot,
and even ``events_processed`` — for every N, including 1, and for both
worker backends (inline and OS processes).  Everything else here defends
the pieces that guarantee rests on: the lookahead bound at its exact
boundary, canonical cross-shard ordering, the contiguous partitioner,
and the configuration fences around features that assume one global
event stream.
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro.apps.gauss_seidel import gauss_seidel_worker
from repro.apps.matmul import matmul_worker
from repro.dse.config import ClusterConfig
from repro.dse.runtime import launch_parallel, run_master, run_parallel
from repro.errors import ConfigurationError, DSEError, NetworkError
from repro.experiments.parallel import cache_key
from repro.network.frame import EthernetFrame
from repro.network.topology import FabricConfig
from repro.shard import (
    ShardEngine,
    ShardPlan,
    ShardSwitchCard,
    merge_partial_stats,
    min_frame_time,
    plan_shards,
)
from repro.sim.core import Simulator
from repro.traffic.cluster_backend import run_cluster_traffic


def _config(shards, kernels=8, machines=8, **kw):
    return ClusterConfig(
        n_processors=kernels,
        n_machines=machines,
        fabric=FabricConfig(kind="switch"),
        shards=shards,
        **kw,
    )


def _fingerprint(result):
    """Every simulated quantity of a run, as one comparable value."""
    return repr(
        (
            result.elapsed,
            result.sim_events,
            sorted(result.stats.items()),
            sorted(result.returns.items()),
        )
    )


# -- byte-identity across shard counts ----------------------------------------
def test_matmul_identical_at_every_shard_count():
    prints = {
        s: _fingerprint(
            run_parallel(_config(s), matmul_worker, args=(24,))
        )
        for s in (1, 2, 4)
    }
    assert prints[2] == prints[1]
    assert prints[4] == prints[1]


def test_gauss_seidel_identical_at_every_shard_count():
    prints = {
        s: _fingerprint(
            run_parallel(
                _config(s, kernels=4, machines=4),
                gauss_seidel_worker,
                args=(16, 3),
            )
        )
        for s in (1, 2, 4)
    }
    assert prints[2] == prints[1]
    assert prints[4] == prints[1]


def test_traffic_full_stack_identical_at_every_shard_count():
    prints = {
        s: json.dumps(
            run_cluster_traffic(n_kernels=8, n_requests=120, shards=s),
            sort_keys=True,
        )
        for s in (1, 2, 4)
    }
    assert prints[2] == prints[1]
    assert prints[4] == prints[1]


@pytest.mark.skipif(
    not os.environ.get("REPRO_SHARD_HEAVY"),
    reason="120k-request sweep takes minutes; set REPRO_SHARD_HEAVY=1",
)
def test_traffic_120k_requests_identical_at_every_shard_count():
    prints = {
        s: json.dumps(
            run_cluster_traffic(
                n_kernels=16, n_requests=120_000, arrival_rate=400.0, shards=s
            ),
            sort_keys=True,
        )
        for s in (1, 2, 4)
    }
    assert prints[2] == prints[1]
    assert prints[4] == prints[1]


def test_process_backend_matches_inline():
    inline = run_parallel(
        _config(2, kernels=4, machines=4),
        gauss_seidel_worker,
        args=(12, 2),
    )
    process = run_parallel(
        _config(2, kernels=4, machines=4, shard_workers="process"),
        gauss_seidel_worker,
        args=(12, 2),
    )
    assert process.cluster is None  # state lives in the (gone) workers
    assert process.elapsed == inline.elapsed
    assert process.sim_events == inline.sim_events
    assert repr(sorted(process.returns.items())) == repr(
        sorted(inline.returns.items())
    )
    assert process.stats == inline.stats
    # byte-level: int counters must not come back as floats from the merge
    assert json.dumps(process.stats, sort_keys=True) == json.dumps(
        inline.stats, sort_keys=True
    )


def test_explicit_shard_map_changes_nothing_simulated():
    auto = run_parallel(
        _config(2, kernels=4, machines=4),
        gauss_seidel_worker,
        args=(12, 2),
    )
    skewed = run_parallel(
        _config(2, kernels=4, machines=4, shard_map=(0, 0, 0, 1)),
        gauss_seidel_worker,
        args=(12, 2),
    )
    assert _fingerprint(skewed) == _fingerprint(auto)


def test_fast_forward_skips_quiescent_spans():
    result = run_parallel(
        _config(2, kernels=4, machines=4),
        gauss_seidel_worker,
        args=(12, 2),
    )
    stats = result.cluster.engine.stats
    assert stats["windows"] > 0
    assert stats["crossings"] > 0  # the partition actually cut traffic
    assert stats["ff_jumps"] > 0  # idle spans were jumped analytically
    assert stats["ff_time_skipped"] > 0.0


# -- the lookahead bound at its exact boundary --------------------------------
def _two_station_fabric(n_shards):
    """Two stations on ``n_shards`` shard(s), raw callbacks attached."""
    cfg = FabricConfig(kind="switch", cut_through=False, forward_latency=0.0)
    plan = plan_shards(2, n_shards)
    sims = [Simulator() for _ in range(n_shards)]
    cards = [
        ShardSwitchCard(sims[s], s, plan.machine_shard, cfg)
        for s in range(n_shards)
    ]
    delivered = []
    for sid in (0, 1):
        card = cards[plan.machine_shard[sid]]
        card.attach(
            sid,
            lambda frame, c=card, s=sid: delivered.append((s, c.sim.now)),
        )
    engine = ShardEngine(
        SimpleNamespace(sims=sims, network=SimpleNamespace(cards=cards))
    )
    return sims, cards, engine, delivered


def _send_min_frame(sim, card):
    def sender():
        yield from card.send(EthernetFrame(src=0, dst=1, payload=b"", payload_bytes=0))

    sim.process(sender(), name="sender")


def test_frame_effect_exactly_at_horizon_is_not_lost():
    """Regression: a minimum frame sent at a window's start finishes its
    uplink at exactly that window's horizon (tx == lookahead), so its
    flush must be armed for the *next* window — dropping or early-running
    it is the classic off-by-one of half-open window processing."""
    sims, cards, engine, delivered = _two_station_fabric(2)
    lookahead = cards[0].lookahead
    assert lookahead == min_frame_time(cards[0].rate_bps)
    _send_min_frame(sims[0], cards[0])
    engine.run_all()
    assert len(delivered) == 1
    station, when = delivered[0]
    assert station == 1
    # store-and-forward, zero forward latency: downlink starts at uplink
    # done (== one lookahead == the emission window's horizon, exactly)
    # and the frame lands after its own serialisation plus propagation.
    expect = 2 * lookahead + cards[0].prop_delay
    assert when == pytest.approx(expect, rel=0, abs=1e-15)
    assert when >= lookahead  # never delivered inside the emission window
    assert engine.stats["crossings"] == 1


def test_horizon_boundary_delivery_matches_single_shard():
    results = {}
    for n_shards in (1, 2):
        sims, cards, engine, delivered = _two_station_fabric(n_shards)
        _send_min_frame(sims[0], cards[0])
        engine.run_all()
        results[n_shards] = (
            delivered,
            sum(sim.events_processed for sim in sims),
        )
    assert results[2] == results[1]


# -- the partitioner ----------------------------------------------------------
def test_plan_contiguous_and_balanced():
    plan = plan_shards(8, 4)
    assert plan.machine_shard == (0, 0, 1, 1, 2, 2, 3, 3)
    assert plan.machines_of(2) == [4, 5]
    assert plan.shard_of_machine(7) == 3


def test_plan_weights_shift_the_cuts():
    plan = plan_shards(5, 2, weights=[4.0, 1.0, 1.0, 1.0, 1.0])
    assert plan.machine_shard == (0, 1, 1, 1, 1)


def test_plan_tail_shards_never_starve():
    # One huge machine at the end: earlier shards must still cut so every
    # shard gets at least one machine.
    plan = plan_shards(4, 2, weights=[1.0, 1.0, 1.0, 100.0])
    assert plan.machine_shard == (0, 0, 0, 1)
    plan = plan_shards(4, 4, weights=[100.0, 1.0, 1.0, 1.0])
    assert plan.machine_shard == (0, 1, 2, 3)


def test_plan_explicit_map_is_validated():
    plan = plan_shards(4, 2, machine_shard=[0, 0, 1, 1])
    assert plan.machine_shard == (0, 0, 1, 1)
    with pytest.raises(ConfigurationError):
        plan_shards(4, 2, machine_shard=[0, 0, 1])  # wrong length
    with pytest.raises(ConfigurationError):
        ShardPlan(n_shards=2, machine_shard=(0, 0, 0, 0))  # empty shard 1
    with pytest.raises(ConfigurationError):
        ShardPlan(n_shards=2, machine_shard=(0, 0, 2, 1))  # out of range


def test_plan_argument_validation():
    with pytest.raises(ConfigurationError):
        plan_shards(2, 4)  # more shards than machines
    with pytest.raises(ConfigurationError):
        plan_shards(4, 0)
    with pytest.raises(ConfigurationError):
        plan_shards(2, 2, weights=[1.0, 0.0])
    with pytest.raises(ConfigurationError):
        plan_shards(2, 2, weights=[1.0])


def test_plan_signature_identifies_the_plan():
    a = plan_shards(8, 4)
    assert a.signature() == plan_shards(8, 4).signature()
    assert a.signature() != plan_shards(8, 2).signature()
    assert a.signature() != plan_shards(
        8, 4, machine_shard=[0, 0, 0, 1, 1, 2, 2, 3]
    ).signature()


# -- configuration fences -----------------------------------------------------
def test_shards_require_the_switched_fabric():
    with pytest.raises(ConfigurationError, match="switched fabric"):
        ClusterConfig(n_processors=4, n_machines=4, shards=2)


def test_shards_reject_single_stream_features():
    for feature in (
        {"trace": True},
        {"obs_trace": True},
        {"obs_metrics_interval": 0.5},
        {"sanitize": True},
    ):
        with pytest.raises(ConfigurationError, match="incompatible"):
            _config(2, kernels=4, machines=4, **feature)


def test_shard_config_validation():
    with pytest.raises(ConfigurationError):
        _config(8, kernels=4, machines=4)  # more shards than machines
    with pytest.raises(ConfigurationError):
        _config(2, kernels=4, machines=4, shard_map=(0, 1))  # wrong length
    with pytest.raises(ConfigurationError):
        _config(2, kernels=4, machines=4, shard_workers="threads")
    with pytest.raises(ConfigurationError):
        ClusterConfig(n_processors=4, shard_map=(0, 0, 1, 1))  # map w/o shards


def test_burst_loss_rejected_under_shards():
    with pytest.raises(ConfigurationError, match="burst loss"):
        run_cluster_traffic(n_requests=10, shards=2, p_enter_bad=0.05)


# -- execution-model fences ---------------------------------------------------
def test_incremental_driving_raises_under_shards():
    launched = launch_parallel(
        _config(2, kernels=4, machines=4), gauss_seidel_worker, args=(8, 1)
    )
    with pytest.raises(DSEError, match="incremental"):
        launched.run_to(1.0)
    with pytest.raises(DSEError, match="incremental"):
        launched.step()
    assert launched.finish().elapsed > 0  # whole-run drain still works


def test_run_master_rejects_process_workers():
    def master(api):
        yield from api.sleep(0.0)

    with pytest.raises(DSEError, match="SPMD"):
        run_master(
            _config(2, kernels=4, machines=4, shard_workers="process"), master
        )


# -- cache keying and stats merge ---------------------------------------------
def test_cache_key_separates_shard_counts():
    base = cache_key("scale", {"n": 64}, "fp")
    sharded = cache_key("scale", {"n": 64}, "fp", shards={"shards": 4})
    other = cache_key("scale", {"n": 64}, "fp", shards={"shards": 2})
    assert len({base, sharded, other}) == 3
    assert sharded == cache_key("scale", {"n": 64}, "fp", shards={"shards": 4})


def test_merge_partial_stats_sums_and_maxes():
    merged = merge_partial_stats(
        [
            {"msgs_sent": 3, "max_load_average": 2.5, "bytes": 1.5},
            {"msgs_sent": 4, "max_load_average": 1.0, "bytes": 2.5},
        ]
    )
    assert merged["msgs_sent"] == 7
    assert isinstance(merged["msgs_sent"], int)  # int counters stay ints
    assert merged["max_load_average"] == 2.5  # extremes merge by max
    assert merged["bytes"] == 4.0
