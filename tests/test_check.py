"""Tests for repro.check, the protocol model checker.

The load-bearing claims: clean scopes explore to exhaustion with zero
violations, the reintroduced historical bugs are rediscovered with short
deterministic counterexamples, partial-order reduction never changes a
verdict, and the committed counterexample corpus keeps replaying.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.check import (
    SCOPES,
    Counterexample,
    explore,
    make_harness,
    replay_counterexample,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS_DIR = REPO_ROOT / "tests" / "data" / "checker_corpus"


def run_scope(config, **overrides):
    return explore(
        lambda: make_harness(config),
        scope=config.name,
        max_steps=overrides.pop("max_steps", config.max_steps),
        **overrides,
    )


#: a trimmed clean stop-and-wait scope for the fast structural tests
SW_SMALL = replace(SCOPES["sw"], name="sw-small", dup_budget=0)


# -- clean scopes explore to exhaustion ---------------------------------------
def test_stop_and_wait_scope_is_exhaustive_and_clean():
    result = run_scope(SCOPES["sw"])
    assert result.ok
    assert result.complete, "scope must be fully explored, not capped"
    assert result.stats.paths > 50
    assert result.stats.states > 1000
    assert result.stats.pruned > 0, "state caching must actually prune"


def test_selective_repeat_small_scope_is_clean():
    config = replace(
        SCOPES["sr"], name="sr-small", messages=2, window=2, max_steps=40
    )
    result = run_scope(config)
    assert result.ok and result.complete


def test_dse_scopes_are_clean():
    for name in ("lock", "gather"):
        result = run_scope(SCOPES[name])
        assert result.ok, f"{name}: {result.violations}"
        assert result.complete
        assert result.stats.choice_points > 0, (
            f"{name} explored no interleavings - the scope is degenerate"
        )


# -- historical bugs are rediscovered -----------------------------------------
def test_lost_wakeup_mutant_rediscovered_with_short_trace():
    result = run_scope(SCOPES["sw-lost-wakeup"])
    assert not result.ok, "the reintroduced ack-before-check bug must be found"
    ce = result.counterexamples()[0]
    assert len(ce.trace) <= 30
    assert "lost wakeup" in ce.detail
    # The signature schedule: a dropped first segment, a delivered second.
    assert any(action[0] == "drop" for action in ce.trace)


def test_gather_race_mutant_rediscovered():
    result = run_scope(SCOPES["gather-race"])
    assert not result.ok
    ce = result.counterexamples()[0]
    assert len(ce.trace) <= 30
    assert "stale read" in ce.detail


# -- counterexamples replay deterministically ---------------------------------
def test_counterexample_replay_is_deterministic_and_json_round_trips():
    config = SCOPES["sw-lost-wakeup"]
    ce = run_scope(config).counterexamples()[0]
    ce = Counterexample.from_json(ce.to_json())  # round-trip
    runs = [
        [
            (step, action, tuple(errors))
            for step, action, errors in replay_counterexample(
                lambda: make_harness(config), ce
            )
        ]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    assert runs[0], "replay must re-execute the recorded schedule"
    final_errors = runs[0][-1][2]
    assert any("lost wakeup" in error for error in final_errors)


# -- partial-order reduction is sound -----------------------------------------
def test_por_and_full_exploration_agree_on_clean_scope():
    with_por = run_scope(SW_SMALL, por=True)
    without = run_scope(SW_SMALL, por=False)
    assert with_por.ok and without.ok
    assert with_por.complete and without.complete
    assert with_por.stats.paths <= without.stats.paths


def test_por_and_full_exploration_agree_on_buggy_scope():
    config = replace(SCOPES["sw-lost-wakeup"], dup_budget=0)
    assert not run_scope(config, por=True).ok
    assert not run_scope(config, por=False).ok


# -- the committed counterexample corpus --------------------------------------
def test_corpus_exists_and_names_known_scopes():
    traces = sorted(CORPUS_DIR.glob("*.json"))
    assert {t.stem for t in traces} >= {"sw-lost-wakeup", "gather-race"}
    for trace in traces:
        assert Counterexample.load(trace).scope in SCOPES


@pytest.mark.parametrize("stem", ["sw-lost-wakeup", "gather-race"])
def test_corpus_trace_still_reproduces_its_violation(stem):
    ce = Counterexample.load(CORPUS_DIR / f"{stem}.json")
    config = SCOPES[ce.scope]
    steps = list(replay_counterexample(lambda: make_harness(config), ce))
    assert steps
    assert any(errors for _, _, errors in steps), (
        f"{stem}: committed counterexample no longer reproduces - either a "
        "real fix landed (regenerate the corpus) or replay determinism broke"
    )


# -- the CLI ------------------------------------------------------------------
def test_cli_list_and_unknown_scope(capsys):
    from repro.check.cli import check_main

    assert check_main(["--list"]) == 0
    assert "sw-lost-wakeup" in capsys.readouterr().out
    assert check_main(["no-such-scope"]) == 2
    assert "known:" in capsys.readouterr().err


def test_cli_runs_mutant_scope_and_replays_corpus(capsys, tmp_path):
    from repro.check.cli import check_main

    assert check_main(["gather-race", "--save-trace", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "rediscovered" in out and "identical (deterministic)" in out
    saved = tmp_path / "gather-race.json"
    assert saved.exists()
    assert check_main(["--replay", str(saved)]) == 0
    assert "violation reproduced" in capsys.readouterr().out


def test_cli_reports_exploration_statistics(capsys):
    from repro.check.cli import check_main

    assert check_main(["lock"]) == 0
    out = capsys.readouterr().out
    assert "paths=" in out and "states=" in out and "pruned=" in out
