"""A DSE cluster distributed across shard event loops.

:class:`ShardedCluster` is a :class:`repro.dse.cluster.Cluster` whose
machines live on ``config.shards`` concurrently advancing simulators
instead of one.  Everything above the event loop — machines, transports,
kernels, routes, global memory — is wired by the base class verbatim; the
overrides below only decide *which* simulator each machine gets and swap
the monolithic fabric for per-shard switch cards joined by handoff queues
(:mod:`repro.shard.fabric`).

The partition comes from :func:`repro.shard.plan.plan_shards`, weighted by
kernels-per-machine (the virtual-cluster doubling), unless the config
carries an explicit ``shard_map`` — the hook for profile-guided maps built
with :func:`repro.shard.plan.weights_from_stats` from a pilot run's
per-machine event counts.

``stats_snapshot`` keeps the exact key set of the single-loop cluster:
counters disabled under sharding (collisions on a switched fabric,
sanitizer/resilience/replay sections, which config validation forbids)
report the same values a single-loop switched run would.  The per-shard
slices (:meth:`partial_stats`) exist for the process backend, whose
workers each hold one shard's live counters; :func:`merge_partial_stats`
recombines them into the identical snapshot — integer-valued counters sum
exactly in floats, and the two rate/max keys merge by ``max``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..dse.cluster import Cluster
from ..sim.core import Simulator
from .engine import ShardEngine
from .fabric import build_shard_network
from .plan import ShardPlan, plan_shards

__all__ = ["ShardedCluster", "merge_partial_stats", "plan_for_config"]

#: snapshot keys that merge by max, not sum, across shard partials
_MAX_KEYS = frozenset({"max_load_average", "net.collision_rate"})


def plan_for_config(config) -> ShardPlan:
    """The shard plan a :class:`ShardedCluster` built from ``config`` uses.

    Deterministic in the config alone, so the process backend's parent and
    every worker independently compute the identical plan."""
    n_machines = config.machines_used
    weights = [float(len(config.kernels_on(m))) for m in range(n_machines)]
    return plan_shards(
        n_machines,
        config.shards,
        weights=weights,
        machine_shard=config.shard_map,
    )


class ShardedCluster(Cluster):
    """One simulated DSE cluster, partitioned over shard event loops."""

    is_sharded = True

    # -- construction hooks --------------------------------------------------
    def _init_sims(self, start_time: float) -> None:
        self.plan: ShardPlan = plan_for_config(self.config)
        self.sims: List[Simulator] = [
            Simulator(start_time=start_time) for _ in range(self.plan.n_shards)
        ]
        self.sim = self.sims[0]

    def _machine_sim(self, machine_id: int) -> Simulator:
        return self.sims[self.plan.machine_shard[machine_id]]

    def _build_network(self, n_machines: int):
        return build_shard_network(
            self.sims, self.plan, n_machines, self.config.fabric
        )

    def _post_build(self) -> None:
        self.engine = ShardEngine(self)

    # -- execution -----------------------------------------------------------
    def run_all(self) -> None:
        self.engine.run_all()

    def total_events(self) -> int:
        return self.engine.total_events()

    def total_cancelled(self) -> int:
        return self.engine.total_cancelled()

    # -- statistics ----------------------------------------------------------
    def _fabric_snapshot(self, out: Dict[str, float]) -> None:
        cards = self.network.cards
        for key in ("frames_sent", "collisions", "bytes_sent"):
            out[f"net.{key}"] = sum(
                card.stats.counter(key).value for card in cards
            )
        out["net.collision_rate"] = 0.0  # switched fabric: never collides

    # -- per-shard slices (process backend) -----------------------------------
    def machines_of_shard(self, shard: int) -> List[int]:
        return self.plan.machines_of(shard)

    def kernels_of_shard(self, shard: int) -> List[int]:
        machine_shard = self.plan.machine_shard
        config = self.config
        return [
            k
            for k in range(config.n_processors)
            if machine_shard[config.machine_of(k)] == shard
        ]

    def partial_stats(self, shard: int) -> Dict[str, float]:
        """This shard's additive slice of :meth:`stats_snapshot`.

        Summing the slices over all shards (``merge_partial_stats``)
        reproduces the full snapshot exactly: every summed counter is
        integer-valued, so float addition is associative here.
        """
        out: Dict[str, float] = {}
        card = self.network.cards[shard]
        for key in ("frames_sent", "collisions", "bytes_sent"):
            out[f"net.{key}"] = card.stats.counter(key).value
        out["net.collision_rate"] = 0.0
        machines = [self.machines[m] for m in self.machines_of_shard(shard)]
        kernels = [self.kernels[k] for k in self.kernels_of_shard(shard)]
        out["msgs_sent"] = sum(
            m.stats.counter("msgs_sent").value for m in machines
        )
        transport_stats = [
            m.transport.stats
            for m in machines
            if getattr(m.transport, "stats", None) is not None
        ]
        for key in (
            "retransmissions",
            "timeouts",
            "fast_retransmits",
            "partial_ack_retransmits",
            "cwnd_floor_hits",
            "duplicates_dropped",
            "out_of_order_buffered",
            "unreliable_sent",
        ):
            out[f"net.{key}"] = float(
                sum(st.counter(key).value for st in transport_stats)
            )
        for key in (
            "remote_reads",
            "remote_writes",
            "local_reads",
            "local_writes",
            "combined_reads",
            "batch_flushes",
            "batched_runs",
        ):
            out[f"gm.{key}"] = sum(
                k.gmem.stats.counter(key).value for k in kernels
            )
        out["max_load_average"] = max(
            (m.load_average() for m in machines), default=0.0
        )
        return out


def merge_partial_stats(partials: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Recombine per-shard :meth:`ShardedCluster.partial_stats` slices."""
    out: Dict[str, float] = {}
    for partial in partials:
        for key, value in partial.items():
            if key in _MAX_KEYS:
                out[key] = max(out.get(key, 0.0), value)
            else:
                # ``0 + value`` keeps each key's type (int counters stay
                # int, float-wrapped transport sums stay float) so merged
                # snapshots serialise identically to inline ones.
                out[key] = out.get(key, 0) + value
    return out
