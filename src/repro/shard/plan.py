"""Shard planning: which machines (and their kernels) run on which shard.

A :class:`ShardPlan` maps every physical machine of a cluster to one shard.
For the switched fabric every station pair has the same cross-link latency,
so cut *bandwidth*, not cut latency, is what the partitioner can influence —
and with the DSE layers' neighbour-heavy traffic (Gauss-Seidel edge
exchanges, per-home memory traffic hashed over contiguous block ranges)
contiguous machine blocks are the minimum-cut family.  Planning therefore
reduces to the classic linear-partition problem: split the machine line into
``n_shards`` contiguous runs with balanced weight.

Weights default to kernels-per-machine (the virtual-cluster doubling is the
one static load signal), and :func:`weights_from_stats` converts a profiled
run's per-machine event counts into weights so a pilot run can rebalance a
bigger sweep (the ``repro.perf`` trajectory files record exactly these
counters).

The plan is part of a run's *identity*: :func:`ShardPlan.signature` is a
stable digest folded into sweep cache keys so results produced under
different shard maps can never collide in the result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["ShardPlan", "plan_shards", "weights_from_stats"]


@dataclass(frozen=True)
class ShardPlan:
    """An immutable machine -> shard assignment."""

    n_shards: int
    #: ``machine_shard[m]`` is the shard of machine ``m``
    machine_shard: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("a plan needs at least one shard")
        if len(self.machine_shard) < 1:
            raise ConfigurationError("a plan needs at least one machine")
        seen = set()
        for m, s in enumerate(self.machine_shard):
            if not (0 <= s < self.n_shards):
                raise ConfigurationError(
                    f"machine {m} assigned to shard {s}, valid range is "
                    f"0..{self.n_shards - 1}"
                )
            seen.add(s)
        if len(seen) != self.n_shards:
            empty = sorted(set(range(self.n_shards)) - seen)
            raise ConfigurationError(f"shards {empty} have no machines")

    @property
    def n_machines(self) -> int:
        return len(self.machine_shard)

    def shard_of_machine(self, machine_id: int) -> int:
        return self.machine_shard[machine_id]

    def machines_of(self, shard: int) -> List[int]:
        return [m for m, s in enumerate(self.machine_shard) if s == shard]

    def signature(self) -> str:
        """Stable short digest identifying this plan (cache-key component)."""
        payload = f"{self.n_shards}:{','.join(map(str, self.machine_shard))}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def weights_from_stats(
    per_machine_events: Dict[int, float], n_machines: int
) -> List[float]:
    """Per-machine weights from profiled event counts (missing machines
    weigh 1.0, so a partial profile still produces a usable plan)."""
    return [
        max(float(per_machine_events.get(m, 1.0)), 1e-9) for m in range(n_machines)
    ]


def plan_shards(
    n_machines: int,
    n_shards: int,
    weights: Optional[Sequence[float]] = None,
    machine_shard: Optional[Sequence[int]] = None,
) -> ShardPlan:
    """Partition ``n_machines`` into ``n_shards`` contiguous balanced blocks.

    ``weights`` biases the balance (event-rate profiles); ``machine_shard``
    short-circuits planning with an explicit assignment (validated).  The
    greedy sweep cuts the machine line whenever the running weight reaches
    the ideal per-shard share while leaving one machine per remaining shard,
    which is deterministic and within one machine of balanced for the
    near-uniform weights clusters actually have.
    """
    if n_shards < 1:
        raise ConfigurationError(f"need at least one shard, got {n_shards}")
    if n_shards > n_machines:
        raise ConfigurationError(
            f"cannot split {n_machines} machine(s) into {n_shards} shards"
        )
    if machine_shard is not None:
        if len(machine_shard) != n_machines:
            raise ConfigurationError(
                f"shard map has {len(machine_shard)} entries for "
                f"{n_machines} machines"
            )
        return ShardPlan(n_shards=n_shards, machine_shard=tuple(machine_shard))
    if weights is None:
        weights = [1.0] * n_machines
    if len(weights) != n_machines:
        raise ConfigurationError(
            f"{len(weights)} weights for {n_machines} machines"
        )
    if any(w <= 0 for w in weights):
        raise ConfigurationError("shard weights must be positive")

    assignment: List[int] = []
    shard = 0
    in_shard = 0  # machines assigned to the current shard so far
    acc = 0.0  # weight accumulated in the current shard
    remaining_weight = float(sum(weights))
    share = remaining_weight / n_shards  # ideal weight of the current shard
    for m, w in enumerate(weights):
        shards_after = n_shards - shard - 1
        machines_left = n_machines - m  # including this one
        # Cut before machine m when the current shard reached its share, or
        # when every remaining machine is needed to keep later shards
        # non-empty.  The share is recomputed from the *remaining* weight at
        # each cut so one heavy machine cannot starve the tail shards.
        must_cut = in_shard > 0 and machines_left == shards_after
        want_cut = in_shard > 0 and shards_after > 0 and acc + w / 2.0 >= share
        if must_cut or want_cut:
            remaining_weight -= acc
            shard += 1
            share = remaining_weight / (n_shards - shard)
            acc = 0.0
            in_shard = 0
        assignment.append(shard)
        acc += float(w)
        in_shard += 1
    return ShardPlan(n_shards=n_shards, machine_shard=tuple(assignment))
