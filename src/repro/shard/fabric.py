"""The shard-boundary switched fabric.

:class:`ShardSwitchCard` is one shard's slice of a
:class:`~repro.network.switch.SwitchedLAN`: uplink port state lives with
the *sending* station's shard, downlink port state with the *receiving*
station's shard, and the two sides meet through explicit handoff records
instead of a shared heap.  The timing model is the switch's, unchanged —
per-port free-time floats, optional cut-through — so a sharded run is the
same simulation cut along port boundaries.

Three design points carry the whole correctness argument (see
``docs/sharding.md`` for the derivations):

**Lookahead.**  A handoff is emitted at transmission *start*, when every
timing quantity (uplink-done, switch-ready) is already determined, but its
*effect* (touching the destination's downlink port) happens at uplink-done.
The gap between emission and effect is therefore at least one minimum-frame
serialisation time — that constant is the fabric's lookahead, and it is what
lets shard event loops run a whole window ahead without ever receiving a
frame "from the past".

**Canonical downlink ordering.**  Two frames finishing their uplinks at the
same instant contend for a downlink port in whatever order a single shared
heap happens to dispatch them — an order that depends on global arm
sequence, which a partitioned run cannot reproduce.  The card therefore
buffers every downlink *touch* per ``(target, time)`` and applies the batch
in ``(src_station, src_seq)`` order when the clock reaches that time.  The
order is computable identically at *every* shard count (a station's sends
are sequenced by its own card, and relative order per station is preserved
no matter how stations are grouped), which is what makes ``--shards N``
byte-identical for all N.  One flush event exists per ``(target, time)``
pair regardless of sharding, so even ``events_processed`` is N-invariant.

**Window-boundary arming.**  Determinism across shard counts is stronger
than canonical values: each simulator's *tie-break sequence stream* must be
N-invariant, because same-timestamp events are ordered by arm sequence.  So
a touch record is never armed mid-window by whoever happened to create it —
*every* record (local or remote alike) goes to the card's outbox, the
engine routes outboxes at the window boundary, and :meth:`admit_pending`
arms flush events in one canonical sorted order.  The lookahead guarantee
makes the deferral safe: an effect time always lies at or beyond the
horizon of its emission window, so no record can be needed before the next
boundary.

**No shared mutable state.**  A handoff record is a plain picklable tuple
``(effect_time, src_station, src_seq, ready, target, frame)``; the engine
moves records between cards' outboxes and inboxes in deterministic shard
order, and the process backend ships the identical tuples over pipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Tuple

from ..errors import NetworkError
from ..network.frame import (
    BROADCAST,
    ETH_HEADER_BYTES,
    ETH_MIN_PAYLOAD,
    ETH_PREAMBLE_BYTES,
    EthernetFrame,
)
from ..network.nic import NIC
from ..network.topology import FabricConfig
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from ..util.units import bits
from .plan import ShardPlan

__all__ = ["Handoff", "ShardSwitchCard", "ShardNetwork", "build_shard_network"]

#: a cross-port touch record: (effect_time, src_station, src_seq, ready,
#: target, frame) — effect_time is the sender's uplink-done instant, ready
#: is when the switch may start driving the output port
Handoff = Tuple[float, int, int, float, int, EthernetFrame]

#: switch propagation delay, matching SwitchedLAN's default (it is not a
#: FabricConfig knob there either)
_PROP_DELAY = 3e-6


def min_frame_time(rate_bps: float) -> float:
    """Serialisation time of a minimum Ethernet frame — the lookahead bound.

    Every uplink transmission lasts at least this long, and a handoff's
    effect trails its emission by exactly one transmission time, so no
    cross-shard effect can land closer than this to its cause.
    """
    return bits(ETH_MIN_PAYLOAD + ETH_HEADER_BYTES + ETH_PREAMBLE_BYTES) / rate_bps


class ShardSwitchCard:
    """One shard's ports of the switched LAN (attach/send-compatible)."""

    def __init__(
        self,
        sim: Simulator,
        shard: int,
        station_shard: Tuple[int, ...],
        config: FabricConfig,
        name: str = "switch0",
    ):
        if config.kind != "switch":
            raise NetworkError("sharded fabric requires the switched LAN")
        self.sim = sim
        self.shard = shard
        #: global station -> shard map (every card knows the whole topology)
        self.station_shard = station_shard
        self.rate_bps = config.rate_bps
        self.forward_latency = config.forward_latency
        self.prop_delay = _PROP_DELAY
        self.cut_through = config.cut_through
        self.name = name
        self.lookahead = min_frame_time(config.rate_bps)
        self._stations: Dict[int, Callable[[EthernetFrame], None]] = {}
        self._up_free: Dict[int, float] = {}
        self._down_free: Dict[int, float] = {}
        #: monotone per-card sequence over local sends; per-station order is
        #: preserved under any partition, which is all the canonical sort needs
        self._send_seq = 0
        #: every emitted record (local targets included), drained and routed
        #: by the engine at the window boundary
        self.outbox: List[Handoff] = []
        #: records routed here for this shard's targets, armed by
        #: :meth:`admit_pending` at the window boundary
        self.inbox: List[Handoff] = []
        #: pending downlink touches: (target, effect_time) -> records
        self._touch_buf: Dict[Tuple[int, float], List[Handoff]] = {}
        self.stats = StatSet(name)

    # -- fabric interface (NIC-facing) ------------------------------------
    def attach(self, station_id: int, deliver: Callable[[EthernetFrame], None]) -> None:
        if station_id in self._stations:
            raise NetworkError(f"station {station_id} already attached to {self.name}")
        if not (0 <= station_id < len(self.station_shard)):
            raise NetworkError(f"station {station_id} is outside the cluster")
        if self.station_shard[station_id] != self.shard:
            raise NetworkError(
                f"station {station_id} belongs to shard "
                f"{self.station_shard[station_id]}, not {self.shard}"
            )
        self._stations[station_id] = deliver
        self._up_free[station_id] = self.sim.now
        self._down_free[station_id] = self.sim.now

    def transmission_time(self, frame: EthernetFrame) -> float:
        return bits(frame.wire_bytes) / self.rate_bps

    @property
    def header_time(self) -> float:
        return bits(ETH_HEADER_BYTES + ETH_PREAMBLE_BYTES) / self.rate_bps

    def collision_rate(self) -> float:
        """Interface parity with the bus/switch fabrics — switches never
        collide."""
        return 0.0

    def send(self, frame: EthernetFrame) -> Generator[Event, Any, str]:
        """Serialise onto the local uplink; emit downlink touches for every
        destination port, local or remote, at transmission start."""
        if frame.src not in self._stations:
            raise NetworkError(
                f"source station {frame.src} is not attached to {self.name}"
            )
        n_stations = len(self.station_shard)
        if frame.dst != BROADCAST and not (0 <= frame.dst < n_stations):
            raise NetworkError(
                f"destination station {frame.dst} is not attached to {self.name}"
            )
        sim = self.sim
        tx = self.transmission_time(frame)
        now = sim.now
        start = max(now, self._up_free[frame.src])
        done = start + tx
        self._up_free[frame.src] = done
        # Everything about this frame's forwarding is decided *now*: emit
        # the touch records immediately so remote shards learn about the
        # frame a full transmission time before it takes effect (lookahead).
        if self.cut_through:
            ready = start + self.header_time + self.forward_latency
        else:
            ready = done + self.forward_latency
        self._send_seq += 1
        seq = self._send_seq
        targets = (
            range(n_stations) if frame.dst == BROADCAST else (frame.dst,)
        )
        outbox = self.outbox
        for target in targets:
            if target == frame.src:
                continue
            outbox.append((done, frame.src, seq, ready, target, frame))
        yield sim.timeout(done - now)
        self.stats.counter("frames_sent").increment()
        self.stats.counter("bytes_sent").increment(frame.wire_bytes)
        return "ok"

    # -- canonical downlink sequencing ------------------------------------
    def admit_pending(self) -> None:
        """Arm every routed record's flush (engine: at window boundaries).

        Records arrive with effect times at or beyond the next window's
        horizon (the lookahead guarantee), so boundary arming is never late.
        The sort fixes the arm order — and with it this simulator's
        tie-break sequence stream — independently of which shard each record
        came from and of the interleaving that produced it.
        """
        inbox = self.inbox
        if not inbox:
            return
        self.inbox = []
        inbox.sort(key=lambda r: (r[0], r[4], r[1], r[2]))
        for record in inbox:
            self._buffer_touch(record)

    def _buffer_touch(self, record: Handoff) -> None:
        key = (record[4], record[0])
        buf = self._touch_buf.get(key)
        if buf is None:
            self._touch_buf[key] = [record]
            # One flush event per (target, effect-time) pair at any shard
            # count — this is what keeps events_processed N-invariant.
            timer = self.sim.timeout(record[0] - self.sim.now, value=key)
            timer.callbacks.append(self._flush)
        else:
            buf.append(record)

    def _flush(self, event: Event) -> None:
        """Apply all touches for one (target, time) in canonical order."""
        key = event._value
        records = self._touch_buf.pop(key)
        if len(records) > 1:
            # (src_station, src_seq): identical at every shard count.
            records.sort(key=lambda r: (r[1], r[2]))
        sim = self.sim
        now = sim.now
        down_free = self._down_free
        for done, _src, _seq, ready, target, frame in records:
            dn_start = max(ready, down_free[target])
            tx = self.transmission_time(frame)
            down_free[target] = dn_start + tx
            timer = sim.timeout(dn_start + tx + self.prop_delay - now)
            timer.callbacks.append(
                lambda _ev, f=frame, t=target: self._deliver(f, t)
            )

    def _deliver(self, frame: EthernetFrame, target: int) -> None:
        self.stats.counter("frames_delivered").increment()
        self._stations[target](frame)


@dataclass
class ShardNetwork:
    """Per-shard fabric cards plus the per-station NICs.

    Construction-compatible with :class:`repro.network.topology.ClusterNetwork`
    for the one method cluster assembly uses (:meth:`nic`); the aggregate
    ``fabric`` view does not exist here — statistics are merged per shard by
    :meth:`repro.shard.cluster.ShardedCluster.stats_snapshot`.
    """

    cards: List[ShardSwitchCard]
    nics: Dict[int, NIC] = field(default_factory=dict)

    def nic(self, station_id: int) -> NIC:
        try:
            return self.nics[station_id]
        except KeyError:
            from ..errors import ConfigurationError

            raise ConfigurationError(f"no NIC for station {station_id}") from None

    @property
    def station_ids(self) -> List[int]:
        return sorted(self.nics)

    def card_of(self, station_id: int) -> ShardSwitchCard:
        return self.cards[self.cards[0].station_shard[station_id]]


def build_shard_network(
    sims: List[Simulator],
    plan: ShardPlan,
    n_stations: int,
    config: FabricConfig,
) -> ShardNetwork:
    """One card per shard, one NIC per station on its shard's simulator."""
    if n_stations != plan.n_machines:
        raise NetworkError(
            f"plan covers {plan.n_machines} machines, cluster has {n_stations}"
        )
    station_shard = plan.machine_shard
    cards = [
        ShardSwitchCard(sims[s], s, station_shard, config)
        for s in range(plan.n_shards)
    ]
    net = ShardNetwork(cards=cards)
    for sid in range(n_stations):
        card = cards[station_shard[sid]]
        net.nics[sid] = NIC(card.sim, card, sid)
    return net
