"""The multiprocess shard backend: one OS worker process per shard.

Each worker deterministically rebuilds the *whole* cluster from the config
(cheap relative to running it, and it makes every worker's world view
identical by construction), then drives only its own shard's simulator.
The parent never simulates anything: it mirrors the inline engine's window
schedule over pipes —

    round:   workers report (outbox records, next-event time, clock)
    parent:  routes records by destination shard, computes the window
             start ``W`` = min(worker peeks ∪ pending record effect
             times) — exactly the inline engine's post-admit minimum,
             because admission only inserts events at record effect times
    parent:  broadcasts ("window", W + lookahead, records-for-you)
    worker:  admits records in canonical order, runs its loop to the
             horizon, replies

— so a worker executes the byte-identical per-window event schedule the
inline backend would, and ``shard_workers`` flips parallelism on and off
without touching a single simulated value.  Final statistics are merged
from per-shard additive slices (:func:`repro.shard.cluster.merge_partial_stats`);
the run outcome (per-rank returns, elapsed) comes from the worker owning
kernel 0, where the master driver ran.

Only SPMD entry points are supported: the worker callable and its args
ship to worker processes, and master closures over live parent state do
not survive that trip (``run_master`` raises before getting here).
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import replace
from typing import Any, Callable, Dict, Generator, List, Optional

from ..dse.config import ClusterConfig
from ..errors import DSEError
from .cluster import merge_partial_stats, plan_for_config
from .fabric import min_frame_time

__all__ = ["run_parallel_process"]

_INF = float("inf")


def _shard_worker(
    conn,
    shard: int,
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple,
    args_of: Optional[Callable[[int], tuple]],
) -> None:
    """Worker-process main: rebuild, then follow the parent's windows."""
    try:
        from ..dse.runtime import launch_parallel

        launched = launch_parallel(config, worker, args, args_of)
        cluster = launched.cluster
        sim = cluster.sims[shard]
        card = cluster.network.cards[shard]
        conn.send(("ready", sim.peek(), sim.now))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "window":
                _op, horizon, records = msg
                if records:
                    card.inbox.extend(records)
                    card.admit_pending()
                sim.run_window(horizon)
                out = card.outbox
                card.outbox = []
                conn.send(("done", out, sim.peek(), sim.now))
            elif op == "finalize":
                _op, end_time = msg
                if sim.now < end_time:
                    sim.advance_to(end_time)
                outcome = None
                if shard == cluster.plan.machine_shard[config.machine_of(0)]:
                    outcome = launched._outcome
                    if "returns" not in outcome:
                        raise DSEError(
                            "master did not complete (deadlock or early drain)"
                        )
                conn.send(
                    (
                        "final",
                        cluster.partial_stats(shard),
                        sim.events_processed,
                        outcome,
                    )
                )
                return
            else:
                raise DSEError(f"unknown shard-protocol op {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def run_parallel_process(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
    args_of: Optional[Callable[[int], tuple]] = None,
):
    """SPMD run with one OS process per shard; same results as inline."""
    from ..dse.runtime import RunResult

    plan = plan_for_config(config)
    n = plan.n_shards
    lookahead = min_frame_time(config.fabric.rate_bps)
    station_shard = plan.machine_shard
    # Workers must not recurse into this backend when they rebuild.
    worker_config = replace(config, shard_workers="inline")

    ctx = multiprocessing.get_context()
    conns = []
    procs = []
    try:
        for s in range(n):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, s, worker_config, worker, args, args_of),
                name=f"repro-shard-{s}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        def recv(s: int):
            msg = conns[s].recv()
            if msg[0] == "error":
                raise DSEError(f"shard worker {s} failed:\n{msg[1]}")
            return msg

        peeks: List[float] = [0.0] * n
        nows: List[float] = [0.0] * n
        for s in range(n):
            tag, peek, now = recv(s)
            assert tag == "ready"
            peeks[s] = peek
            nows[s] = now

        pending: List[List[Any]] = [[] for _ in range(n)]
        while True:
            window_start = min(peeks)
            for records in pending:
                for record in records:
                    if record[0] < window_start:
                        window_start = record[0]
            if window_start == _INF:
                break
            horizon = window_start + lookahead
            for s in range(n):
                conns[s].send(("window", horizon, pending[s]))
                pending[s] = []
            for s in range(n):
                _tag, out, peek, now = recv(s)
                peeks[s] = peek
                nows[s] = now
                for record in out:
                    pending[station_shard[record[4]]].append(record)

        # Align every shard's clock to the globally last event time before
        # statistics are read — the inline engine's _finalize step.  The
        # time-weighted monitors (run-queue load averages) integrate up to
        # "now", so without this a shard's stats would depend on the map.
        end_time = max(nows)
        partials: List[Dict[str, float]] = []
        outcome: Optional[Dict[str, Any]] = None
        sim_events = 0
        for s in range(n):
            conns[s].send(("finalize", end_time))
        for s in range(n):
            tag, partial, events, shard_outcome = recv(s)
            assert tag == "final"
            partials.append(partial)
            sim_events += events
            if shard_outcome is not None:
                outcome = shard_outcome
        if outcome is None or "returns" not in outcome:
            raise DSEError("master did not complete (deadlock or early drain)")
        returns = outcome["returns"][0]  # SPMD: rank -> value dict
        return RunResult(
            elapsed=outcome["elapsed"],
            returns=returns,
            stats=merge_partial_stats(partials),
            sim_events=sim_events,
            config=config,
            cluster=None,
        )
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join()
