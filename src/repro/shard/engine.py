"""The conservative windowed driver for a sharded cluster.

Classic conservative parallel DES, specialised to the switched fabric's
constant lookahead ``L`` (one minimum-frame serialisation time):

1. **Route**: move every card's emitted records to the destination card's
   inbox (deterministic shard-major order).
2. **Admit**: each card arms its routed records' flush events in canonical
   sorted order (see :mod:`repro.shard.fabric`).
3. **Window**: ``W`` = the earliest pending event across all shards; every
   shard then processes events strictly before the horizon ``H = W + L``.
   No shard can receive a cross-shard effect earlier than ``H`` for frames
   emitted in this window, so nothing is ever delivered into a shard's
   past — the barrier replaces per-pair null messages (with one global
   reduction per window instead of O(shards²) nulls).
4. Repeat until every heap is empty and no records are in flight.

**Analytic idle fast-forward** falls out of step 3: when the cluster goes
quiescent (a long computation phase, a drained network), ``W`` jumps
straight to the next event — the engine advances the global clock in one
step over any dead span instead of ticking lookahead-sized windows through
it.  The jump is exact by construction (there is provably nothing to
execute in the span: every heap and every in-flight record is beyond it),
and the invariant is cheap to check, so :meth:`ShardEngine.run_all`
verifies on entry and exit of every jump that no shard holds an event
inside the skipped span.  The ``ff_jumps`` / ``ff_time_skipped`` counters
report how much simulated time was crossed this way.

The same primitives (:meth:`route`, per-shard admit + ``run_window``) are
driven remotely by the multiprocess backend (:mod:`repro.shard.procpool`);
this class is the in-process driver, used both directly
(``shard_workers="inline"``) and inside every worker process.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import DSEError
from .fabric import ShardSwitchCard

__all__ = ["ShardEngine"]


class ShardEngine:
    """Drives a :class:`~repro.shard.cluster.ShardedCluster` to completion."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.sims = cluster.sims
        self.cards: List[ShardSwitchCard] = cluster.network.cards
        self.lookahead = self.cards[0].lookahead
        #: wall-side diagnostics (N-invariant by construction, but kept out
        #: of simulated statistics all the same)
        self.stats: Dict[str, float] = {
            "windows": 0,
            "handoffs": 0,
            "crossings": 0,
            "ff_jumps": 0,
            "ff_time_skipped": 0.0,
        }

    # -- primitives (shared with the process backend) ----------------------
    def route(self) -> int:
        """Move emitted records to their destination cards; return count."""
        cards = self.cards
        moved = 0
        for card in cards:
            out = card.outbox
            if not out:
                continue
            card.outbox = []
            moved += len(out)
            for record in out:
                dest = card.station_shard[record[4]]
                if dest != card.shard:
                    self.stats["crossings"] += 1
                cards[dest].inbox.append(record)
        self.stats["handoffs"] += moved
        return moved

    def admit_all(self) -> None:
        for card in self.cards:
            card.admit_pending()

    def peek_min(self) -> float:
        return min(sim.peek() for sim in self.sims)

    # -- the drive loop ----------------------------------------------------
    def run_all(self, max_windows: int = 100_000_000) -> None:
        """Window-synchronised drain of every shard's event loop."""
        sims = self.sims
        stats = self.stats
        lookahead = self.lookahead
        last_horizon = None
        for _ in range(max_windows):
            self.route()
            self.admit_all()
            window_start = self.peek_min()
            if window_start == float("inf"):
                self._finalize()
                return
            if last_horizon is not None and window_start > last_horizon:
                # Quiescent span: every shard's next event (flush events for
                # in-flight records included — admit already armed them) is
                # at window_start or later, so nothing can exist in
                # (last_horizon, window_start).  Jump it in one step.
                stats["ff_jumps"] += 1
                stats["ff_time_skipped"] += window_start - last_horizon
            horizon = window_start + lookahead
            stats["windows"] += 1
            for sim in sims:
                sim.run_window(horizon)
            last_horizon = horizon
        raise DSEError(
            f"sharded run exceeded {max_windows} windows (runaway guard)"
        )

    def _finalize(self) -> None:
        """Align every shard's clock to the globally last event time.

        Time-weighted monitors (run-queue load averages) read the clock at
        snapshot time; without alignment each shard would stop at its own
        last event and per-shard statistics would depend on the shard map.
        """
        end = max(sim.now for sim in self.sims)
        for sim in self.sims:
            if sim.now < end:
                sim.advance_to(end)

    # -- totals ------------------------------------------------------------
    def total_events(self) -> int:
        return sum(sim.events_processed for sim in self.sims)

    def total_cancelled(self) -> int:
        return sum(sim.events_cancelled for sim in self.sims)
