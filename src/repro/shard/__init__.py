"""Sharded parallel-in-time execution of a simulated cluster.

The package partitions a cluster's machines (with their kernels, NICs,
and switch ports) across shard event loops that advance concurrently
under conservative synchronisation, with ``--shards N`` byte-identical
for every N — see ``docs/sharding.md``.

* :mod:`~repro.shard.plan` — the topology-aware partitioner
* :mod:`~repro.shard.fabric` — per-shard switch cards + handoff records
* :mod:`~repro.shard.engine` — the lookahead-windowed drive loop
* :mod:`~repro.shard.cluster` — the :class:`ShardedCluster` wiring
* :mod:`~repro.shard.procpool` — one OS worker process per shard
"""

from .cluster import ShardedCluster, merge_partial_stats, plan_for_config
from .engine import ShardEngine
from .fabric import ShardNetwork, ShardSwitchCard, build_shard_network, min_frame_time
from .plan import ShardPlan, plan_shards, weights_from_stats

__all__ = [
    "ShardedCluster",
    "ShardEngine",
    "ShardNetwork",
    "ShardPlan",
    "ShardSwitchCard",
    "build_shard_network",
    "merge_partial_stats",
    "min_frame_time",
    "plan_for_config",
    "plan_shards",
    "weights_from_stats",
]
