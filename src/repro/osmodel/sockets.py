"""Socket layer: costed send/receive bridging UNIX processes to transports.

Charges follow the paper's accounting of user-level DSE overheads:

* **send path** — ``sendto`` syscall + per-message and per-byte protocol
  processing on the sender's CPU, then the transport takes the wire.
* **receive path** — the arrival raises an (accounted) SIGIO, then the
  reader pays context switch + ``recvfrom`` syscall + protocol processing.

When observability is enabled (``ClusterConfig(obs_trace=True)``) and the
caller supplies a trace context, both paths record spans: ``sock.send``
covers syscall + protocol processing + transport hand-off, ``sock.recv``
covers SIGIO wake-up through ``recvfrom``, with a ``sigio`` instant marking
the asynchronous notification itself.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import OSModelError
from ..obs.spans import NULL_RECORDER
from ..protocol.packet import Packet
from ..protocol.udp import Mailbox
from ..sim.core import Event
from .unixproc import UnixProcess

__all__ = ["Socket"]


class Socket:
    """A bound datagram/reliable socket owned by one UNIX process."""

    def __init__(self, proc: UnixProcess, port: int):
        self.proc = proc
        self.port = port
        self.machine = proc.machine
        self.mailbox: Mailbox = self.machine.transport.bind(port)
        self.closed = False
        self.machine.stats.counter("sockets_open").increment()
        self.obs = getattr(proc.sim, "obs", None) or NULL_RECORDER
        self._obs_pid = self.machine.station_id
        self._obs_tid = proc.pid

    # -- send --------------------------------------------------------------
    def sendto(
        self,
        dst_station: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        trace: Any = None,
        channel: Optional[str] = None,
    ) -> Generator[Event, Any, None]:
        """Send one message; completes when handed to the NIC (datagram) or
        acknowledged (reliable transport).

        ``channel`` selects the dual-channel lane ("reliable" or
        "unreliable") when the machine runs the ``dual`` transport; it is
        ignored (with a counter) on single-channel transports so callers
        can classify unconditionally.
        """
        self._check_open()
        span = None
        if self.obs.enabled and trace is not None:
            span = self.obs.begin(
                self.proc.sim.now, "sock.send", "os", self._obs_pid, self._obs_tid, trace
            )
            trace = span.ctx
        costs = self.proc.platform.os_costs
        yield from self.proc.syscall("sendto")
        yield from self.proc.compute_seconds(
            costs.protocol_per_message + costs.protocol_per_byte * payload_bytes
        )
        self.machine.stats.counter("msgs_sent").increment()
        self.machine.stats.counter("bytes_sent").increment(payload_bytes)
        if dst_station == self.machine.station_id:
            # Same machine (virtual cluster): loopback, no wire — channels
            # are indistinguishable on the loss-free local path.
            self.machine.transport.loopback(
                dst_port, payload, payload_bytes, src_port=self.port, trace=trace
            )
        elif channel is not None and getattr(
            self.machine.transport, "dual_channel", False
        ):
            yield from self.machine.transport.send(
                dst_station, dst_port, payload, payload_bytes,
                src_port=self.port, trace=trace, channel=channel,
            )
        else:
            if channel is not None:
                self.machine.stats.counter("channel_hints_ignored").increment()
            yield from self.machine.transport.send(
                dst_station, dst_port, payload, payload_bytes,
                src_port=self.port, trace=trace,
            )
        if span is not None:
            self.obs.end(span, self.proc.sim.now)

    # -- receive ------------------------------------------------------------
    def recv(
        self,
        filter: Optional[Callable[[Packet], bool]] = None,
        abort: Optional[Event] = None,
    ) -> Generator[Event, Any, Optional[Packet]]:
        """Block for the next (matching) packet, then pay the receive path.

        ``abort`` (resilience layer) is an event that cancels the wait: if
        it triggers before a packet matches, the pending mailbox claim is
        withdrawn — it must never steal a later packet from another reader —
        and ``None`` is returned without charging receive costs.
        """
        self._check_open()
        if abort is None:
            packet = yield self.mailbox.get(filter)
        else:
            if abort.triggered:
                return None
            getter = self.mailbox.get(filter)
            outcome = yield self.proc.sim.any_of([getter, abort])
            if getter not in outcome:
                try:
                    self.mailbox.queue._getters.remove(getter)
                except ValueError:  # pragma: no cover - raced with a match
                    pass
                return None
            packet = outcome[getter]
        span = None
        if self.obs.enabled and packet.trace is not None:
            now = self.proc.sim.now
            self.obs.instant(now, "sigio", "os", self._obs_pid, self._obs_tid, packet.trace)
            span = self.obs.begin(now, "sock.recv", "os", self._obs_pid, self._obs_tid, packet.trace)
        costs = self.proc.platform.os_costs
        # SIGIO wakes the process, the kernel switches to it, recvfrom copies
        # the data out, protocol processing is charged per message + byte.
        yield from self.proc.compute_seconds(
            costs.signal_delivery + costs.context_switch
        )
        yield from self.proc.syscall("recvfrom")
        yield from self.proc.compute_seconds(
            costs.protocol_per_message + costs.protocol_per_byte * packet.payload_bytes
        )
        self.machine.stats.counter("msgs_received").increment()
        self.machine.stats.counter("bytes_received").increment(packet.payload_bytes)
        if span is not None:
            self.obs.end(span, self.proc.sim.now)
        return packet

    def poll(self) -> int:
        """Number of packets waiting (select()-style, uncosted)."""
        self._check_open()
        return len(self.mailbox)

    def on_arrival(self, callback: Optional[Callable[[Packet], None]]) -> None:
        """Install the async-I/O notification hook (SIGIO analogue)."""
        self.mailbox.on_arrival = callback

    def close(self) -> None:
        if not self.closed:
            self.machine.transport.unbind(self.port)
            self.closed = True
            self.machine.stats.counter("sockets_open").increment(-1)

    def _check_open(self) -> None:
        if self.closed:
            raise OSModelError(f"socket port {self.port} is closed")
