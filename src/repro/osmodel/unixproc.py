"""UNIX process model.

A :class:`UnixProcess` is one schedulable entity on a machine — in the
re-organised DSE, the parallel application, the parallel API library and
the DSE-kernel library are all linked into *one* of these.  The class
provides the costed primitives everything above is written with:

* ``compute(work)`` / ``compute_seconds(s)`` — burn CPU (processor-shared
  with the machine's other processes, which is how co-located DSE kernels
  slow each other down);
* ``syscall(name)`` — charge one system call;
* ``sleep(s)`` — idle without consuming CPU;
* ``raise_signal`` / signal handler table — SIGIO-style async notification.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from ..errors import OSModelError
from ..hardware.cpu import Work
from ..sim.core import Event, Process
from .signals import SignalTable
from .syscall import syscall_cost

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = ["UnixProcess"]


class UnixProcess:
    """One UNIX process on one simulated machine."""

    def __init__(self, machine: "Machine", pid: int, name: str):
        self.machine = machine
        self.pid = pid
        self.name = name
        self.signals = SignalTable()
        self.sim_process: Optional[Process] = None
        self.exited = False
        self.exit_value: Any = None
        #: accumulated CPU seconds requested by this process (diagnostics)
        self.cpu_seconds = 0.0

    # -- identity -----------------------------------------------------------
    @property
    def sim(self):
        return self.machine.sim

    @property
    def platform(self):
        return self.machine.platform

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UnixProcess pid={self.pid} {self.name!r} on {self.machine.hostname}>"

    # -- costed primitives ------------------------------------------------
    def compute(self, work: Work) -> Generator[Event, Any, None]:
        """Execute ``work`` on this machine's (shared) CPU."""
        demand = self.platform.cpu.seconds_for(work)
        yield from self.compute_seconds(demand)

    def compute_seconds(self, seconds: float) -> Generator[Event, Any, None]:
        if seconds < 0:
            raise OSModelError(f"negative compute time: {seconds}")
        if seconds == 0:
            return
        self.cpu_seconds += seconds
        yield self.machine.cpu.execute(seconds)

    def syscall(self, name: str) -> Generator[Event, Any, None]:
        """Enter the kernel: burns the platform's cost for syscall ``name``."""
        cost = syscall_cost(self.platform.os_costs.syscall, name)
        self.machine.stats.counter("syscalls").increment()
        yield from self.compute_seconds(cost)

    def sleep(self, seconds: float) -> Generator[Event, Any, None]:
        if seconds < 0:
            raise OSModelError(f"negative sleep: {seconds}")
        yield self.sim.timeout(seconds)

    # -- signals ----------------------------------------------------------
    def raise_signal(self, signo: int) -> bool:
        """Deliver a signal synchronously (handler runs inline).

        Charges the platform's signal-delivery plus context-switch cost to
        this machine's CPU as an asynchronous burst — the CPU time is
        consumed even though the handler callback itself runs instantly at
        the simulation level.
        """
        if self.exited:
            raise OSModelError(f"signal {signo} to exited pid {self.pid}")
        costs = self.platform.os_costs
        self.machine.cpu.execute(costs.signal_delivery + costs.context_switch)
        self.machine.stats.counter("signals_delivered").increment()
        return self.signals.deliver(signo)

    # -- lifecycle -----------------------------------------------------------
    def mark_exited(self, value: Any) -> None:
        self.exited = True
        self.exit_value = value
        self.machine.stats.counter("process_exits").increment()
