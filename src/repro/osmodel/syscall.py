"""System-call cost catalogue.

The paper's overhead analysis singles out "OS system calls and protocol
processing" as the inevitable cost of a user-level DSE.  Each platform
defines a base syscall cost (:class:`repro.hardware.platform.OSCosts`);
individual calls apply a relative weight from this catalogue — e.g. a
``sendto`` walks far more kernel code than a ``getpid``.
"""

from __future__ import annotations

from typing import Dict

from ..errors import OSModelError

__all__ = ["SYSCALL_WEIGHTS", "syscall_cost"]

#: relative weight of each syscall against the platform's base syscall cost
SYSCALL_WEIGHTS: Dict[str, float] = {
    "getpid": 0.3,
    "sigaction": 0.8,
    "kill": 1.0,
    "read": 1.0,
    "write": 1.0,
    "select": 1.2,
    "socket": 1.5,
    "bind": 1.0,
    "sendto": 1.5,
    "recvfrom": 1.5,
    "fork": 20.0,
    "exec": 40.0,
    "exit": 5.0,
}


def syscall_cost(base_cost: float, name: str) -> float:
    """Seconds of CPU consumed by one invocation of syscall ``name``."""
    try:
        weight = SYSCALL_WEIGHTS[name]
    except KeyError:
        raise OSModelError(
            f"unknown syscall {name!r}; known: {sorted(SYSCALL_WEIGHTS)}"
        ) from None
    return base_cost * weight
