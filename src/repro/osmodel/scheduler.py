"""Processor-sharing CPU model.

The paper constructs a *virtual cluster* by "starting two or more DSE
kernels on one machine", and observes that "the machine load increases in
proportion to this number", causing the performance decrease beyond six
processors.  We model each physical machine's CPU as an egalitarian
processor-sharing server: ``n`` concurrently executing compute bursts each
progress at rate ``1/n`` (times a context-switch inefficiency when time-
sharing is active), which makes co-located DSE kernels slow each other down
exactly in proportion to their number.

The implementation keeps exact PS semantics event-by-event: on every
arrival/departure the remaining demands are advanced analytically and the
next completion re-scheduled, so no per-timeslice events are generated.

The shortest remaining demand is cached (``_shortest``) instead of being
recomputed with ``min()`` over all jobs on every arrival — the recompute
was the whole simulation's hottest line under churn (O(n) per arrival,
O(n^2) per burst wave).  The cache is *bit-identical* to the recompute:
IEEE-754 subtraction by one shared ``progressed`` value is monotone, so
the minimum job stays minimal and its new remaining equals the cached
``_shortest - progressed`` exactly (both clamp at 0.0 the same way);
arrivals take ``min(_shortest, demand)``; only departures — rare timer
fires — rescan the survivors.  See ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet, TimeWeighted

__all__ = ["ProcessorSharingCPU"]

_EPS = 1e-12


class _Job:
    __slots__ = ("event", "remaining", "demand")

    def __init__(self, event: Event, demand: float):
        self.event = event
        self.demand = demand
        self.remaining = demand


class ProcessorSharingCPU:
    """One machine's CPU, shared by all its UNIX processes."""

    def __init__(
        self,
        sim: Simulator,
        context_switch: float = 0.0,
        timeslice: float = 0.010,
        name: str = "cpu",
    ):
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        if context_switch < 0:
            raise ValueError("context_switch must be non-negative")
        self.sim = sim
        self.context_switch = context_switch
        self.timeslice = timeslice
        self.name = name
        self._jobs: Dict[int, _Job] = {}
        self._next_job_id = 0
        self._last = sim.now
        self._epoch = 0
        self._timer: Optional[Event] = None
        #: cached min(job.remaining) — bit-identical to a full rescan (see
        #: module docstring); inf when idle
        self._shortest = float("inf")
        #: the one bound completion callback (no per-reschedule lambda)
        self._on_timer_cb = self._on_timer
        self.stats = StatSet(name)
        self.run_queue = TimeWeighted(f"{name}.runq", start_time=sim.now)
        self.busy = TimeWeighted(f"{name}.busy", start_time=sim.now)

    # -- public ------------------------------------------------------------
    @property
    def load(self) -> int:
        """Number of compute bursts currently sharing the CPU."""
        return len(self._jobs)

    def rate(self, n: int) -> float:
        """Per-job progress rate with ``n`` sharers.

        With one job the CPU is dedicated.  With several, each gets a
        ``1/n`` share further degraded by the context-switch tax paid once
        per timeslice: a quantum of useful work ``q`` costs ``q + cs``.
        """
        if n <= 0:
            return 0.0
        if n == 1:
            return 1.0
        tax = 1.0 + self.context_switch / self.timeslice
        return 1.0 / (n * tax)

    def execute(self, demand_seconds: float) -> Event:
        """Submit a compute burst; the returned event triggers on completion."""
        if demand_seconds < 0:
            raise ValueError(f"negative compute demand: {demand_seconds}")
        event = self.sim.event(name=f"{self.name}.burst")
        self.stats.counter("bursts").increment()
        self.stats.tally("demand").observe(demand_seconds)
        if demand_seconds == 0:
            event.succeed()
            return event
        self._advance()
        job_id = self._next_job_id
        self._next_job_id += 1
        self._jobs[job_id] = _Job(event, demand_seconds)
        if demand_seconds < self._shortest:
            self._shortest = demand_seconds
        self._note_queue()
        self._reschedule()
        return event

    # -- internals ------------------------------------------------------------
    def _note_queue(self) -> None:
        n = len(self._jobs)
        self.run_queue.set(n, self.sim.now)
        self.busy.set(1.0 if n else 0.0, self.sim.now)

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last
        self._last = now
        if dt <= 0 or not self._jobs:
            return
        r = self.rate(len(self._jobs))
        progressed = dt * r
        for job in self._jobs.values():
            job.remaining -= progressed
            if job.remaining < 0:
                job.remaining = 0.0
        # Same subtraction, same bits: the minimum stays the minimum.
        self._shortest -= progressed
        if self._shortest < 0:
            self._shortest = 0.0

    def _reschedule(self) -> None:
        self._epoch += 1
        # Lazily cancel the superseded timer so the event queue never
        # dispatches it — with hundreds of co-located kernels, arrival and
        # departure rates make stale completion timers the dominant event
        # source otherwise.  The epoch guard stays as a second line of
        # defence (a timer firing in the same timestep cannot be cancelled).
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._jobs:
            self._shortest = float("inf")
            return
        r = self.rate(len(self._jobs))
        delay = self._shortest / r
        # The armed epoch rides in the timeout's value, so one cached bound
        # method serves every timer — no per-reschedule closure allocation.
        timer = self.sim.timeout(delay, value=self._epoch)
        timer.callbacks.append(self._on_timer_cb)
        self._timer = timer

    def _on_timer(self, event: Event) -> None:
        if event._value != self._epoch:
            return  # superseded by a later arrival/departure
        self._timer = None
        self._advance()
        finished = [jid for jid, job in self._jobs.items() if job.remaining <= _EPS]
        events = []
        for jid in finished:
            job = self._jobs.pop(jid)
            self.stats.counter("completed").increment()
            events.append(job.event)
        # Departures are the one place the cached minimum must be rescanned.
        self._shortest = (
            min(job.remaining for job in self._jobs.values())
            if self._jobs
            else float("inf")
        )
        self._note_queue()
        self._reschedule()
        for event in events:
            event.succeed()

    def utilization(self) -> float:
        return self.busy.average(self.sim.now)

    def average_run_queue(self) -> float:
        return self.run_queue.average(self.sim.now)
