"""UNIX signal model.

DSE drives the context switch between the application computation and the
in-process kernel with *asynchronous I/O mode interruption* — the arrival
of a network message raises SIGIO.  This module provides signal numbers,
per-process handler tables, and the delivery cost accounting (signal
delivery + the context switch it forces).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import OSModelError

__all__ = ["SIGIO", "SIGUSR1", "SIGUSR2", "SIGTERM", "SignalTable"]

SIGIO = 23
SIGUSR1 = 30
SIGUSR2 = 31
SIGTERM = 15

_KNOWN = {SIGIO, SIGUSR1, SIGUSR2, SIGTERM}


class SignalTable:
    """Handler registrations for one UNIX process."""

    def __init__(self) -> None:
        self._handlers: Dict[int, Callable[[int], None]] = {}
        self.delivered: Dict[int, int] = {}

    def register(self, signo: int, handler: Callable[[int], None]) -> None:
        if signo not in _KNOWN:
            raise OSModelError(f"unknown signal {signo}")
        if not callable(handler):
            raise OSModelError("signal handler must be callable")
        self._handlers[signo] = handler

    def handler(self, signo: int) -> Optional[Callable[[int], None]]:
        return self._handlers.get(signo)

    def deliver(self, signo: int) -> bool:
        """Invoke the handler if registered; returns True if handled."""
        if signo not in _KNOWN:
            raise OSModelError(f"unknown signal {signo}")
        self.delivered[signo] = self.delivered.get(signo, 0) + 1
        handler = self._handlers.get(signo)
        if handler is None:
            return False
        handler(signo)
        return True
