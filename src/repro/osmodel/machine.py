"""Physical machine: CPU + NIC + transport + resident UNIX processes.

One :class:`Machine` is one workstation of the paper's Table 1 set-up.
Several DSE kernels may run on one machine (the paper's virtual cluster);
they then share the machine's processor-sharing CPU.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import OSModelError
from ..hardware.node import NodeSpec
from ..hardware.platform import PlatformSpec
from ..network.nic import NIC
from ..sim.core import Process, Simulator
from ..sim.monitor import StatSet
from .scheduler import ProcessorSharingCPU
from .sockets import Socket
from .unixproc import UnixProcess

__all__ = ["Machine"]

_pids = count(100)


class Machine:
    """One simulated workstation."""

    def __init__(
        self,
        sim: Simulator,
        node: NodeSpec,
        nic: NIC,
        transport: Any,
    ):
        self.sim = sim
        self.node = node
        self.nic = nic
        self.transport = transport
        self.cpu = ProcessorSharingCPU(
            sim,
            context_switch=node.platform.os_costs.context_switch,
            timeslice=node.platform.os_costs.timeslice,
            name=f"{node.hostname}.cpu",
        )
        self.processes: Dict[int, UnixProcess] = {}
        #: powered flag (resilience: halt/restart fault injection)
        self.up = True
        self.stats = StatSet(node.hostname)

    # -- identity -----------------------------------------------------------
    @property
    def platform(self) -> PlatformSpec:
        return self.node.platform

    @property
    def hostname(self) -> str:
        return self.node.hostname

    @property
    def station_id(self) -> int:
        return self.nic.station_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.hostname} procs={len(self.processes)}>"

    # -- process management ---------------------------------------------------
    def spawn(
        self,
        body: Callable[[UnixProcess], Generator],
        name: str = "proc",
    ) -> UnixProcess:
        """Create and start a UNIX process.

        ``body`` is a generator function taking the new :class:`UnixProcess`
        and yielding simulation events (usually via the process's costed
        primitives).  Charges a ``fork``+``exec`` on this machine's CPU
        before the body runs.
        """
        pid = next(_pids)
        proc = UnixProcess(self, pid, name)
        self.processes[pid] = proc

        def wrapper() -> Generator:
            yield from proc.syscall("fork")
            yield from proc.syscall("exec")
            value = yield from body(proc)
            proc.mark_exited(value)
            return value

        proc.sim_process = self.sim.process(wrapper(), name=f"{self.hostname}:{name}")
        self.stats.counter("processes_spawned").increment()
        return proc

    def process_by_pid(self, pid: int) -> UnixProcess:
        try:
            return self.processes[pid]
        except KeyError:
            raise OSModelError(f"no pid {pid} on {self.hostname}") from None

    @property
    def live_processes(self) -> List[UnixProcess]:
        return [p for p in self.processes.values() if not p.exited]

    # -- power (resilience fault injection) -----------------------------------
    def halt(self) -> None:
        """Power the machine off: the NIC drops all traffic from now on.

        The resilience manager is responsible for killing the machine's
        simulated processes (it knows which kernels live here and how to
        tear their guests down consistently); ``halt`` models the hardware
        side only.  Idempotent.
        """
        if not self.up:
            return
        self.up = False
        self.nic.up = False
        self.stats.counter("halts").increment()

    def restart(self) -> None:
        """Power the machine back on (the NIC forwards again).  Idempotent."""
        if self.up:
            return
        self.up = True
        self.nic.up = True
        self.stats.counter("restarts").increment()

    # -- sockets ------------------------------------------------------------
    def open_socket(self, proc: UnixProcess, port: int) -> Socket:
        if proc.machine is not self:
            raise OSModelError(
                f"process {proc.pid} belongs to {proc.machine.hostname}, not {self.hostname}"
            )
        return Socket(proc, port)

    # -- reporting -----------------------------------------------------------
    def load_average(self) -> float:
        """Time-averaged run-queue length (the `uptime` number)."""
        return self.cpu.average_run_queue()
