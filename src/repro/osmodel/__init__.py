"""UNIX operating-system model: machines, processes, scheduler, signals,
syscalls, sockets."""

from .machine import Machine
from .scheduler import ProcessorSharingCPU
from .signals import SIGIO, SIGTERM, SIGUSR1, SIGUSR2, SignalTable
from .sockets import Socket
from .syscall import SYSCALL_WEIGHTS, syscall_cost
from .unixproc import UnixProcess

__all__ = [
    "Machine",
    "ProcessorSharingCPU",
    "SIGIO",
    "SIGTERM",
    "SIGUSR1",
    "SIGUSR2",
    "SignalTable",
    "Socket",
    "SYSCALL_WEIGHTS",
    "syscall_cost",
    "UnixProcess",
]
