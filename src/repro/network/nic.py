"""Network interface card: per-station transmit queue + receive delivery.

The NIC decouples the OS (which just enqueues frames) from fabric
arbitration (which may block on a busy bus).  A driver process drains the
transmit queue in FIFO order; received frames are handed to an
interrupt-style callback that the OS model wires to SIGIO delivery.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import NetworkError
from ..obs.spans import NET_TID, NULL_RECORDER
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from ..sim.resources import Store
from .frame import EthernetFrame

__all__ = ["NIC"]


class NIC:
    """One station's network interface."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Any,
        station_id: int,
        tx_queue_depth: int = 256,
        driver_retries: int = 64,
        name: str = "",
    ):
        self.sim = sim
        self.fabric = fabric
        self.station_id = station_id
        #: how many times the driver re-submits a frame the MAC gave up on
        #: (16 collision attempts each).  The DSE transport is a datagram
        #: service with no retransmission, so the driver is patient — a
        #: dropped request/response message would hang the RPC above.
        self.driver_retries = driver_retries
        self.name = name or f"nic{station_id}"
        #: powered flag (resilience: a halted machine's NIC drops everything;
        #: the driver process survives the outage and resumes on restart)
        self.up = True
        self.tx_queue: Store = Store(sim, capacity=tx_queue_depth, name=f"{self.name}.tx")
        self.rx_queue: Store = Store(sim, name=f"{self.name}.rx")
        self._rx_callback: Optional[Callable[[EthernetFrame], None]] = None
        self.stats = StatSet(self.name)
        self.obs = getattr(sim, "obs", None) or NULL_RECORDER
        fabric.attach(station_id, self._on_receive)
        self._driver = sim.process(self._tx_driver(), name=f"{self.name}.driver")

    # -- transmit ---------------------------------------------------------
    def enqueue(self, frame: EthernetFrame) -> Event:
        """Queue a frame for transmission; the event triggers once queued."""
        if frame.src != self.station_id:
            raise NetworkError(
                f"{self.name}: frame source {frame.src} != station {self.station_id}"
            )
        self.stats.counter("tx_enqueued").increment()
        return self.tx_queue.put(frame)

    def _tx_driver(self) -> Generator[Event, Any, None]:
        while True:
            frame = yield self.tx_queue.get()
            if not self.up:
                self.stats.counter("tx_dropped_down").increment()
                continue
            span = None
            if self.obs.enabled and frame.trace is not None:
                # The nic.tx span covers queue-head to on-the-wire, so its
                # gap from the enclosing udp.send start is the queueing delay.
                span = self.obs.begin(
                    self.sim.now, "nic.tx", "net", self.station_id, NET_TID, frame.trace
                )
                frame.trace = span.ctx
            for attempt in range(self.driver_retries + 1):
                status = yield from self.fabric.send(frame)
                if status == "ok":
                    self.stats.counter("tx_done").increment()
                    if attempt:
                        self.stats.counter("tx_driver_retries").increment(attempt)
                    break
            else:
                self.stats.counter("tx_dropped").increment()
            if span is not None:
                self.obs.end(span, self.sim.now)

    # -- receive ------------------------------------------------------------
    def on_receive(self, callback: Callable[[EthernetFrame], None]) -> None:
        """Install the interrupt handler invoked for each received frame."""
        self._rx_callback = callback

    def _on_receive(self, frame: EthernetFrame) -> None:
        if not self.up:
            self.stats.counter("rx_dropped_down").increment()
            return
        self.stats.counter("rx_frames").increment()
        self.stats.counter("rx_bytes").increment(frame.payload_bytes)
        if self._rx_callback is not None:
            self._rx_callback(frame)
        else:
            self.rx_queue.put(frame)
