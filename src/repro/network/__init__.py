"""Network models: frames, CSMA/CD shared bus, switched LAN, NICs."""

from .ethernet import EthernetBus, SEND_DROPPED, SEND_OK
from .faults import BurstLossConfig, LossInjector
from .frame import (
    BROADCAST,
    ETH_HEADER_BYTES,
    ETH_MIN_PAYLOAD,
    ETH_MTU,
    ETH_PREAMBLE_BYTES,
    EthernetFrame,
)
from .nic import NIC
from .switch import SwitchedLAN
from .topology import ClusterNetwork, FabricConfig, build_network

__all__ = [
    "BurstLossConfig",
    "EthernetBus",
    "LossInjector",
    "SEND_DROPPED",
    "SEND_OK",
    "BROADCAST",
    "ETH_HEADER_BYTES",
    "ETH_MIN_PAYLOAD",
    "ETH_MTU",
    "ETH_PREAMBLE_BYTES",
    "EthernetFrame",
    "NIC",
    "SwitchedLAN",
    "ClusterNetwork",
    "FabricConfig",
    "build_network",
]
