"""Network fault injection.

Real 1999 LANs dropped and corrupted frames; the simulated fabrics are
perfect unless told otherwise.  :class:`LossInjector` sits between a NIC
and its consumer and drops (or duplicates/delays) received frames with
configured probabilities, deterministically per seed — the harness the
failure-injection tests use to prove the reliable transports actually
recover.

Losses on real links are *bursty* — a flaky connector or a noise source
takes the link out for stretches, not one frame at a time.  The optional
:class:`BurstLossConfig` adds the classic Gilbert–Elliott two-state model:
the link wanders between a GOOD and a BAD state (per-frame transition
probabilities), each with its own loss rate.  Resilience campaigns use it
to model correlated outages that frame-independent (Bernoulli) loss cannot
produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import NetworkError
from ..sim.core import Simulator
from ..sim.monitor import StatSet
from ..sim.rng import RandomStreams
from .frame import EthernetFrame
from .nic import NIC

__all__ = ["LossInjector", "BurstLossConfig"]


@dataclass(frozen=True)
class BurstLossConfig:
    """Gilbert–Elliott two-state burst-loss parameters.

    On every frame arrival the chain first takes one transition step
    (GOOD → BAD with ``p_enter_bad``, BAD → GOOD with ``p_exit_bad``), then
    the frame is lost with the *current* state's loss rate.  Expected burst
    length is ``1 / p_exit_bad`` frames; the stationary loss rate is
    ``(pi_bad * loss_bad + pi_good * loss_good)`` with
    ``pi_bad = p_enter_bad / (p_enter_bad + p_exit_bad)``.
    """

    p_enter_bad: float = 0.02
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise NetworkError(f"{name} must be in [0, 1], got {value}")

    @property
    def stationary_loss(self) -> float:
        """Long-run frame loss rate of the chain."""
        denom = self.p_enter_bad + self.p_exit_bad
        if denom == 0.0:
            return self.loss_good  # chain never leaves GOOD
        pi_bad = self.p_enter_bad / denom
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


class LossInjector:
    """Drops/duplicates/delays frames arriving at one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        rng: RandomStreams,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.002,
        predicate: Optional[Callable[[EthernetFrame], bool]] = None,
        burst: Optional[BurstLossConfig] = None,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise NetworkError(f"{name} must be in [0, 1], got {rate}")
        self.sim = sim
        self.nic = nic
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        #: only frames matching the predicate are considered for faults
        self.predicate = predicate
        #: Gilbert–Elliott burst-loss chain (None = Bernoulli-only faults)
        self.burst = burst
        self._burst_state = "good"
        #: separate stream so enabling bursts never perturbs the Bernoulli
        #: draws (and vice versa) — campaigns stay deterministic per seed
        self._burst_rng = rng.stream(f"faults:burst:{nic.station_id}")
        self._rng = rng.stream(f"faults:{nic.station_id}")
        self._inner: Optional[Callable[[EthernetFrame], None]] = None
        self.stats = StatSet(f"faults:{nic.station_id}")
        self.armed = False

    def arm(self) -> None:
        """Interpose on the NIC's receive path (idempotent)."""
        if self.armed:
            return
        self._inner = self.nic._rx_callback
        self.nic.on_receive(self._on_frame)
        self.armed = True

    def disarm(self) -> None:
        """Restore the original receive path."""
        if not self.armed:
            return
        self.nic.on_receive(self._inner)
        self.armed = False

    def _deliver(self, frame: EthernetFrame) -> None:
        if self._inner is not None:
            self._inner(frame)
        else:  # pragma: no cover - NIC had no callback installed
            self.nic.rx_queue.put(frame)

    def _on_frame(self, frame: EthernetFrame) -> None:
        if self.predicate is not None and not self.predicate(frame):
            self._deliver(frame)
            return
        if self.burst is not None:
            # One chain step per frame, then the current state's loss rate.
            step = self._burst_rng.random()
            if self._burst_state == "good":
                if step < self.burst.p_enter_bad:
                    self._burst_state = "bad"
                    self.stats.counter("bursts_entered").increment()
            elif step < self.burst.p_exit_bad:
                self._burst_state = "good"
            loss = (
                self.burst.loss_bad
                if self._burst_state == "bad"
                else self.burst.loss_good
            )
            if loss and self._burst_rng.random() < loss:
                self.stats.counter("dropped").increment()
                self.stats.counter(f"dropped_{self._burst_state}").increment()
                return
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.stats.counter("dropped").increment()
            return
        if roll < self.drop_rate + self.duplicate_rate:
            self.stats.counter("duplicated").increment()
            self._deliver(frame)
            self._deliver(frame)
            return
        if roll < self.drop_rate + self.duplicate_rate + self.delay_rate:
            self.stats.counter("delayed").increment()
            timer = self.sim.timeout(self.delay_seconds)
            timer.callbacks.append(lambda _ev: self._deliver(frame))
            return
        self._deliver(frame)
