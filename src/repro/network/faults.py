"""Network fault injection.

Real 1999 LANs dropped and corrupted frames; the simulated fabrics are
perfect unless told otherwise.  :class:`LossInjector` sits between a NIC
and its consumer and drops (or duplicates/delays) received frames with
configured probabilities, deterministically per seed — the harness the
failure-injection tests use to prove the reliable transports actually
recover.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import NetworkError
from ..sim.core import Simulator
from ..sim.monitor import StatSet
from ..sim.rng import RandomStreams
from .frame import EthernetFrame
from .nic import NIC

__all__ = ["LossInjector"]


class LossInjector:
    """Drops/duplicates/delays frames arriving at one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        rng: RandomStreams,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.002,
        predicate: Optional[Callable[[EthernetFrame], bool]] = None,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise NetworkError(f"{name} must be in [0, 1], got {rate}")
        self.sim = sim
        self.nic = nic
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        #: only frames matching the predicate are considered for faults
        self.predicate = predicate
        self._rng = rng.stream(f"faults:{nic.station_id}")
        self._inner: Optional[Callable[[EthernetFrame], None]] = None
        self.stats = StatSet(f"faults:{nic.station_id}")
        self.armed = False

    def arm(self) -> None:
        """Interpose on the NIC's receive path (idempotent)."""
        if self.armed:
            return
        self._inner = self.nic._rx_callback
        self.nic.on_receive(self._on_frame)
        self.armed = True

    def disarm(self) -> None:
        """Restore the original receive path."""
        if not self.armed:
            return
        self.nic.on_receive(self._inner)
        self.armed = False

    def _deliver(self, frame: EthernetFrame) -> None:
        if self._inner is not None:
            self._inner(frame)
        else:  # pragma: no cover - NIC had no callback installed
            self.nic.rx_queue.put(frame)

    def _on_frame(self, frame: EthernetFrame) -> None:
        if self.predicate is not None and not self.predicate(frame):
            self._deliver(frame)
            return
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.stats.counter("dropped").increment()
            return
        if roll < self.drop_rate + self.duplicate_rate:
            self.stats.counter("duplicated").increment()
            self._deliver(frame)
            self._deliver(frame)
            return
        if roll < self.drop_rate + self.duplicate_rate + self.delay_rate:
            self.stats.counter("delayed").increment()
            timer = self.sim.timeout(self.delay_seconds)
            timer.callbacks.append(lambda _ev: self._deliver(frame))
            return
        self._deliver(frame)
