"""Cluster network construction.

Builds the fabric (shared-bus Ethernet by default, switched LAN for the
ablation) and one NIC per station.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..errors import ConfigurationError
from ..sim.core import Simulator
from ..sim.rng import RandomStreams
from .ethernet import EthernetBus
from .nic import NIC
from .switch import SwitchedLAN

__all__ = ["FabricConfig", "ClusterNetwork", "build_network"]

Fabric = Union[EthernetBus, SwitchedLAN]


@dataclass(frozen=True)
class FabricConfig:
    """Which fabric to build and its parameters."""

    kind: str = "ethernet"  # "ethernet" (shared bus) or "switch"
    rate_bps: float = 10e6
    #: switch only: forward after the header arrives (cut-through) instead
    #: of buffering the whole frame (store-and-forward)
    cut_through: bool = True
    #: switch only: fixed forwarding latency of the switching element
    forward_latency: float = 15e-6

    def __post_init__(self) -> None:
        if self.kind not in ("ethernet", "switch"):
            raise ConfigurationError(f"unknown fabric kind {self.kind!r}")
        if self.rate_bps <= 0:
            raise ConfigurationError("fabric rate must be positive")
        if self.forward_latency < 0:
            raise ConfigurationError("forward latency must be non-negative")


@dataclass
class ClusterNetwork:
    """The fabric plus the per-station NICs."""

    fabric: Fabric
    nics: Dict[int, NIC] = field(default_factory=dict)

    def nic(self, station_id: int) -> NIC:
        try:
            return self.nics[station_id]
        except KeyError:
            raise ConfigurationError(f"no NIC for station {station_id}") from None

    @property
    def station_ids(self) -> List[int]:
        return sorted(self.nics)


def build_network(
    sim: Simulator,
    rng: RandomStreams,
    n_stations: int,
    config: FabricConfig = FabricConfig(),
) -> ClusterNetwork:
    """Create the fabric and attach ``n_stations`` NICs (ids 0..n-1)."""
    if n_stations < 1:
        raise ConfigurationError("need at least one station")
    fabric: Fabric
    if config.kind == "ethernet":
        fabric = EthernetBus(sim, rng.spawn("ether"), rate_bps=config.rate_bps)
    else:
        fabric = SwitchedLAN(
            sim,
            rate_bps=config.rate_bps,
            forward_latency=config.forward_latency,
            cut_through=config.cut_through,
        )
    net = ClusterNetwork(fabric=fabric)
    for sid in range(n_stations):
        net.nics[sid] = NIC(sim, fabric, sid)
    return net
