"""Shared-bus Ethernet with CSMA/CD.

The paper attributes the Knight's-Tour slowdown at high job counts to "the
bus type Ethernet where occurrence of packet collision increases when
communication frequency between nodes increases"; this model reproduces that
mechanism:

* **carrier sense** — a station with a frame waits until the bus is idle;
* **collision window** — stations that begin transmitting within one
  propagation window of each other collide (the window folds in the
  interframe gap);
* **binary exponential backoff** — each collided station retries after
  ``uniform(0, 2^min(k,10)-1)`` slot times, giving up after
  ``max_attempts`` tries (16, per 802.3).

The model is event-driven and deterministic given the RNG seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..errors import NetworkError
from ..obs.spans import NET_TID, NULL_RECORDER
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet, TimeWeighted
from ..sim.rng import RandomStreams
from ..util.units import US
from .frame import BROADCAST, EthernetFrame

__all__ = ["EthernetBus", "SEND_OK", "SEND_DROPPED"]

SEND_OK = "ok"
SEND_DROPPED = "dropped"

_COLLIDED = "collided"


class EthernetBus:
    """A single shared 10 Mbit/s (by default) Ethernet segment."""

    def __init__(
        self,
        sim: Simulator,
        rng: RandomStreams,
        rate_bps: float = 10e6,
        slot_time: float = 51.2 * US,
        collision_window: float = 20 * US,
        jam_time: float = 5 * US,
        prop_delay: float = 3 * US,
        max_attempts: int = 16,
        name: str = "ether0",
    ):
        if rate_bps <= 0:
            raise NetworkError("bus rate must be positive")
        self.sim = sim
        self.rng = rng
        self.rate_bps = rate_bps
        self.slot_time = slot_time
        self.collision_window = collision_window
        self.jam_time = jam_time
        self.prop_delay = prop_delay
        self.max_attempts = max_attempts
        self.name = name

        self._stations: Dict[int, Callable[[EthernetFrame], None]] = {}
        self._busy = False
        self._idle_event: Optional[Event] = None
        self._contenders: List[Tuple[EthernetFrame, Event]] = []
        self._resolving = False
        #: station -> partition group id; None = one unbroken segment
        self._partition: Optional[Dict[int, int]] = None
        #: per-station backoff streams (same objects rng.stream would hand
        #: out — cached to keep the per-frame f-string off the send path)
        self._backoff_streams: Dict[int, Any] = {}
        self._resolve_name = f"{name}.resolve"

        self.stats = StatSet(name)
        # Hot-path counters, resolved once (StatSet.counter is a lazy dict
        # lookup; send/deliver bump these on every frame).
        self._c_frames_sent = self.stats.counter("frames_sent")
        self._c_bytes_sent = self.stats.counter("bytes_sent")
        self._c_backoffs = self.stats.counter("backoffs")
        self._c_collisions = self.stats.counter("collisions")
        self._c_collided_frames = self.stats.counter("collided_frames")
        self._c_frames_delivered = self.stats.counter("frames_delivered")
        self.utilization = TimeWeighted(f"{name}.util", start_time=sim.now)
        self.obs = getattr(sim, "obs", None) or NULL_RECORDER

    # -- station management ---------------------------------------------
    def attach(self, station_id: int, deliver: Callable[[EthernetFrame], None]) -> None:
        """Register a station; ``deliver`` is called with received frames."""
        if station_id in self._stations:
            raise NetworkError(f"station {station_id} already attached to {self.name}")
        if station_id < 0:
            raise NetworkError("station ids must be non-negative (BROADCAST is reserved)")
        self._stations[station_id] = deliver

    @property
    def station_ids(self) -> List[int]:
        return sorted(self._stations)

    @property
    def busy(self) -> bool:
        return self._busy

    # -- partitions (resilience fault injection) --------------------------
    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Sever the bus into isolated segments (a cut coax / pulled tap).

        Delivery-filtering approximation: carrier sense and collisions stay
        *global* (the model keeps one contention domain), but frames whose
        source and destination sit in different segments are dropped — at
        transmission end and again at propagation end, so frames already in
        flight when the cut happens never cross it after a heal.
        """
        mapping: Dict[int, int] = {}
        for gid, members in enumerate(groups):
            for sid in members:
                if sid not in self._stations:
                    raise NetworkError(f"station {sid} is not attached to {self.name}")
                if sid in mapping:
                    raise NetworkError(f"station {sid} appears in two partition groups")
                mapping[sid] = gid
        rest = (max(mapping.values()) + 1) if mapping else 0
        for sid in self._stations:
            mapping.setdefault(sid, rest)
        self._partition = mapping
        self.stats.counter("partitions").increment()

    def heal(self) -> None:
        """Rejoin every segment (no-op if not partitioned)."""
        if self._partition is not None:
            self._partition = None
            self.stats.counter("heals").increment()

    def reachable(self, a: int, b: int) -> bool:
        """Are two stations currently on the same segment?"""
        if self._partition is None:
            return True
        return self._partition.get(a) == self._partition.get(b)

    # -- transmission ----------------------------------------------------
    def transmission_time(self, frame: EthernetFrame) -> float:
        # bits() inlined (int * 8): identical value, one call fewer per frame.
        return frame.wire_bytes * 8 / self.rate_bps

    def send(self, frame: EthernetFrame) -> Generator[Event, Any, str]:
        """Transmit ``frame``; completes when it is on the wire (or dropped).

        A generator to be driven from the sending station's process:
        ``status = yield from bus.send(frame)``.
        """
        if frame.src not in self._stations:
            raise NetworkError(f"source station {frame.src} is not attached to {self.name}")
        if frame.dst != BROADCAST and frame.dst not in self._stations:
            raise NetworkError(f"destination station {frame.dst} is not attached to {self.name}")
        backoff_rng = self._backoff_streams.get(frame.src)
        if backoff_rng is None:
            backoff_rng = self.rng.stream(f"backoff:{frame.src}")
            self._backoff_streams[frame.src] = backoff_rng
        span = None
        if self.obs.enabled and frame.trace is not None:
            span = self.obs.begin(
                self.sim.now, "eth.tx", "net", frame.src, NET_TID, frame.trace
            )
        attempts = 0
        while True:
            # Carrier sense: defer while the medium is busy.
            while self._busy:
                yield self._wait_idle()
            # Join the contention window for the current idle period.
            grant = Event(self.sim, "grant")
            self._contenders.append((frame, grant))
            if not self._resolving:
                self._resolving = True
                self.sim.process(self._resolve(), name=self._resolve_name)
            outcome = yield grant
            if outcome == SEND_OK:
                self._c_frames_sent.increment()
                self._c_bytes_sent.increment(frame.wire_bytes)
                if span is not None:
                    span.args = {"attempts": attempts + 1}
                    self.obs.end(span, self.sim.now)
                return SEND_OK
            # Collision: back off a random number of slot times.
            attempts += 1
            self._c_backoffs.increment()
            if span is not None:
                self.obs.instant(
                    self.sim.now, "eth.collision", "net", frame.src, NET_TID, span.ctx
                )
            if attempts >= self.max_attempts:
                self.stats.counter("frames_dropped").increment()
                if span is not None:
                    span.args = {"attempts": attempts, "dropped": True}
                    self.obs.end(span, self.sim.now)
                return SEND_DROPPED
            k = min(attempts, 10)
            slots = backoff_rng.randrange(2**k)
            if slots:
                yield self.sim.timeout(slots * self.slot_time)

    # -- internals --------------------------------------------------------
    def _wait_idle(self) -> Event:
        idle = self._idle_event
        if idle is None or idle.callbacks is None:  # None/processed: re-arm
            idle = self._idle_event = Event(self.sim, "idle")
        return idle

    def _set_busy(self) -> None:
        self._busy = True
        self.utilization.set(1.0, self.sim.now)

    def _set_idle(self) -> None:
        self._busy = False
        self.utilization.set(0.0, self.sim.now)
        if self._idle_event is not None and not self._idle_event.triggered:
            self._idle_event.succeed()

    def _resolve(self) -> Generator[Event, Any, None]:
        """Arbitrate one idle period: lone contender wins, several collide."""
        # During the collision window the medium still *looks* idle to other
        # stations (signal has not propagated), so late joiners pile in here.
        yield self.sim.timeout(self.collision_window)
        contenders, self._contenders = self._contenders, []
        self._resolving = False
        if not contenders:  # pragma: no cover - resolve only starts with one
            return
        if len(contenders) == 1:
            frame, grant = contenders[0]
            self._set_busy()
            yield self.sim.timeout(self.transmission_time(frame))
            self._deliver_after_propagation(frame)
            self._set_idle()
            grant.succeed(SEND_OK)
        else:
            self._c_collisions.increment()
            self._c_collided_frames.increment(len(contenders))
            self._set_busy()
            yield self.sim.timeout(self.jam_time)
            self._set_idle()
            for _frame, grant in contenders:
                grant.succeed(_COLLIDED)

    def _deliver_after_propagation(self, frame: EthernetFrame) -> None:
        if (
            self._partition is not None
            and frame.dst != BROADCAST
            and not self.reachable(frame.src, frame.dst)
        ):
            # Transmitted into a severed segment: the signal never reaches
            # the destination; no delivery timer is armed, so the frame
            # cannot appear after a heal.
            self.stats.counter("partition_drops").increment()
            return
        timer = self.sim.timeout(self.prop_delay)
        timer.callbacks.append(lambda _ev: self._deliver(frame))

    def _deliver(self, frame: EthernetFrame) -> None:
        if self._partition is None:
            # Default (unpartitioned) path: unchanged from the baseline.
            self._c_frames_delivered.increment()
            if frame.dst == BROADCAST:
                for sid, deliver in self._stations.items():
                    if sid != frame.src:
                        deliver(frame)
            else:
                self._stations[frame.dst](frame)
            return
        if frame.dst == BROADCAST:
            self.stats.counter("frames_delivered").increment()
            for sid, deliver in self._stations.items():
                if sid == frame.src:
                    continue
                if not self.reachable(frame.src, sid):
                    self.stats.counter("partition_drops").increment()
                    continue
                deliver(frame)
            return
        if not self.reachable(frame.src, frame.dst):
            # The cut happened during propagation.
            self.stats.counter("partition_drops").increment()
            return
        self.stats.counter("frames_delivered").increment()
        self._stations[frame.dst](frame)

    # -- reporting ---------------------------------------------------------
    def collision_rate(self) -> float:
        """Collisions per successfully sent frame (0 if nothing sent)."""
        sent = self.stats.counter("frames_sent").value
        if sent == 0:
            return 0.0
        return self.stats.counter("collisions").value / sent
