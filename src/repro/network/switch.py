"""Switched full-duplex LAN (the large-cluster alternative to the bus).

Each station gets a private full-duplex link to a switch; there are no
collisions, only per-port serialisation and queueing plus the switch's
forwarding latency.  The network ablation bench swaps this in for
:class:`repro.network.ethernet.EthernetBus` to isolate the collision effect
the paper blames for the Knight's-Tour degradation, and the scaling story
(:doc:`docs/scaling`) relies on it beyond the six-machine paper setup: a
shared bus serialises *all* stations while a switch only serialises frames
that share a port.

The implementation is built for large clusters:

* **per-port free-time bookkeeping** — each uplink and downlink is a single
  float (the time the port is next free), not a ``Resource``; queueing for
  a port is computed arithmetically, so a frame costs two simulation events
  (uplink done, delivery) instead of a process plus resource round trips.
* **cut-through forwarding** (default) — the switch starts driving the
  output port once the frame header has arrived instead of buffering the
  whole frame, so the per-hop cost is header time + forwarding latency
  rather than a full store-and-forward serialisation.  Pass
  ``cut_through=False`` for classic store-and-forward timing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..errors import NetworkError
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from ..util.units import US, bits
from .frame import BROADCAST, ETH_HEADER_BYTES, ETH_PREAMBLE_BYTES, EthernetFrame

__all__ = ["SwitchedLAN"]


class SwitchedLAN:
    """A switch with one full-duplex port per station.

    Exposes the same ``attach``/``send`` interface as ``EthernetBus`` so the
    fabric is pluggable in cluster construction.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 10e6,
        forward_latency: float = 15 * US,
        prop_delay: float = 3 * US,
        cut_through: bool = True,
        name: str = "switch0",
    ):
        if rate_bps <= 0:
            raise NetworkError("link rate must be positive")
        if forward_latency < 0 or prop_delay < 0:
            raise NetworkError("latencies must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.forward_latency = forward_latency
        self.prop_delay = prop_delay
        self.cut_through = cut_through
        self.name = name
        self._stations: Dict[int, Callable[[EthernetFrame], None]] = {}
        #: per-port next-free times (the whole queueing model)
        self._up_free: Dict[int, float] = {}
        self._down_free: Dict[int, float] = {}
        #: station -> partition group id; None = fully connected
        self._partition: Optional[Dict[int, int]] = None
        self.stats = StatSet(name)

    def attach(self, station_id: int, deliver: Callable[[EthernetFrame], None]) -> None:
        """Register a station; ``deliver`` is called with received frames."""
        if station_id in self._stations:
            raise NetworkError(f"station {station_id} already attached to {self.name}")
        if station_id < 0:
            raise NetworkError("station ids must be non-negative")
        self._stations[station_id] = deliver
        self._up_free[station_id] = self.sim.now
        self._down_free[station_id] = self.sim.now

    @property
    def station_ids(self) -> List[int]:
        return sorted(self._stations)

    # -- partitions (resilience fault injection) --------------------------
    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the LAN into isolated segments.

        ``groups`` lists the station ids of each segment; stations not
        mentioned form one implicit extra segment.  Frames between segments
        are dropped — both frames sent while partitioned *and* frames still
        queued in the switch when the partition appears (so nothing is
        delivered late, out of order, after a heal).
        """
        mapping: Dict[int, int] = {}
        for gid, members in enumerate(groups):
            for sid in members:
                if sid not in self._stations:
                    raise NetworkError(f"station {sid} is not attached to {self.name}")
                if sid in mapping:
                    raise NetworkError(f"station {sid} appears in two partition groups")
                mapping[sid] = gid
        rest = (max(mapping.values()) + 1) if mapping else 0
        for sid in self._stations:
            mapping.setdefault(sid, rest)
        self._partition = mapping
        self.stats.counter("partitions").increment()

    def heal(self) -> None:
        """Reconnect every segment (no-op if not partitioned)."""
        if self._partition is not None:
            self._partition = None
            self.stats.counter("heals").increment()

    def reachable(self, a: int, b: int) -> bool:
        """Are two stations currently in the same segment?"""
        if self._partition is None:
            return True
        return self._partition.get(a) == self._partition.get(b)

    def transmission_time(self, frame: EthernetFrame) -> float:
        return bits(frame.wire_bytes) / self.rate_bps

    @property
    def header_time(self) -> float:
        """Serialisation time of the frame header — the cut-through point."""
        return bits(ETH_HEADER_BYTES + ETH_PREAMBLE_BYTES) / self.rate_bps

    def send(self, frame: EthernetFrame) -> Generator[Event, Any, str]:
        """Serialise onto the uplink; forwarding and delivery are computed
        arithmetically and scheduled as one timer per destination."""
        if frame.src not in self._stations:
            raise NetworkError(f"source station {frame.src} is not attached to {self.name}")
        if frame.dst != BROADCAST and frame.dst not in self._stations:
            raise NetworkError(f"destination station {frame.dst} is not attached to {self.name}")
        sim = self.sim
        tx = self.transmission_time(frame)
        now = sim.now
        start = max(now, self._up_free[frame.src])
        done = start + tx
        self._up_free[frame.src] = done
        yield sim.timeout(done - now)
        self.stats.counter("frames_sent").increment()
        self.stats.counter("bytes_sent").increment(frame.wire_bytes)
        # When can the switch begin driving an output port?
        if self.cut_through:
            ready = start + self.header_time + self.forward_latency
        else:
            ready = done + self.forward_latency
        targets = (
            [sid for sid in self._stations if sid != frame.src]
            if frame.dst == BROADCAST
            else [frame.dst]
        )
        for target in targets:
            if not self.reachable(frame.src, target):
                # Sent into a partition: dropped at the ingress port.  The
                # delivery timer is never armed, so the frame cannot pop out
                # after a heal.
                self.stats.counter("partition_drops").increment()
                continue
            dn_start = max(ready, self._down_free[target])
            self._down_free[target] = dn_start + tx
            timer = sim.timeout(dn_start + tx + self.prop_delay - sim.now)
            timer.callbacks.append(lambda _ev, t=target: self._deliver(frame, t))
        return "ok"

    def _deliver(self, frame: EthernetFrame, target: int) -> None:
        if not self.reachable(frame.src, target):
            # Partition appeared while the frame was queued in the switch.
            self.stats.counter("partition_drops").increment()
            return
        self.stats.counter("frames_delivered").increment()
        self._stations[target](frame)

    def collision_rate(self) -> float:
        """Switched fabric never collides (interface parity with the bus)."""
        return 0.0
