"""Switched full-duplex LAN (ablation alternative to the shared bus).

Each station gets a private full-duplex link to a store-and-forward switch;
there are no collisions, only per-link serialisation and queueing plus a
fixed switch forwarding latency.  The network ablation bench swaps this in
for :class:`repro.network.ethernet.EthernetBus` to isolate the collision
effect the paper blames for the Knight's-Tour degradation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from ..errors import NetworkError
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from ..sim.resources import Resource
from ..util.units import US, bits
from .frame import BROADCAST, EthernetFrame

__all__ = ["SwitchedLAN"]


class SwitchedLAN:
    """A store-and-forward switch with one full-duplex port per station.

    Exposes the same ``attach``/``send`` interface as ``EthernetBus`` so the
    fabric is pluggable in cluster construction.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 10e6,
        forward_latency: float = 15 * US,
        prop_delay: float = 3 * US,
        name: str = "switch0",
    ):
        if rate_bps <= 0:
            raise NetworkError("link rate must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.forward_latency = forward_latency
        self.prop_delay = prop_delay
        self.name = name
        self._stations: Dict[int, Callable[[EthernetFrame], None]] = {}
        self._uplinks: Dict[int, Resource] = {}
        self._downlinks: Dict[int, Resource] = {}
        self.stats = StatSet(name)

    def attach(self, station_id: int, deliver: Callable[[EthernetFrame], None]) -> None:
        if station_id in self._stations:
            raise NetworkError(f"station {station_id} already attached to {self.name}")
        if station_id < 0:
            raise NetworkError("station ids must be non-negative")
        self._stations[station_id] = deliver
        self._uplinks[station_id] = Resource(self.sim, 1, name=f"{self.name}.up{station_id}")
        self._downlinks[station_id] = Resource(self.sim, 1, name=f"{self.name}.down{station_id}")

    @property
    def station_ids(self) -> List[int]:
        return sorted(self._stations)

    def transmission_time(self, frame: EthernetFrame) -> float:
        return bits(frame.wire_bytes) / self.rate_bps

    def send(self, frame: EthernetFrame) -> Generator[Event, Any, str]:
        """Serialise onto the uplink; forwarding runs asynchronously."""
        if frame.src not in self._stations:
            raise NetworkError(f"source station {frame.src} is not attached to {self.name}")
        if frame.dst != BROADCAST and frame.dst not in self._stations:
            raise NetworkError(f"destination station {frame.dst} is not attached to {self.name}")
        uplink = self._uplinks[frame.src]
        req = uplink.request()
        yield req
        try:
            yield self.sim.timeout(self.transmission_time(frame))
        finally:
            uplink.release(req)
        self.stats.counter("frames_sent").increment()
        self.stats.counter("bytes_sent").increment(frame.wire_bytes)
        targets = (
            [sid for sid in self._stations if sid != frame.src]
            if frame.dst == BROADCAST
            else [frame.dst]
        )
        for target in targets:
            self.sim.process(self._forward(frame, target), name=f"{self.name}.fwd")
        return "ok"

    def _forward(self, frame: EthernetFrame, target: int) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.forward_latency)
        downlink = self._downlinks[target]
        req = downlink.request()
        yield req
        try:
            yield self.sim.timeout(self.transmission_time(frame))
        finally:
            downlink.release(req)
        yield self.sim.timeout(self.prop_delay)
        self.stats.counter("frames_delivered").increment()
        self._stations[target](frame)

    def collision_rate(self) -> float:
        """Switched fabric never collides (interface parity with the bus)."""
        return 0.0
