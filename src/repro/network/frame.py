"""Ethernet frame model.

Frames carry opaque payload objects (the protocol layer's packets); only
sizes matter for timing.  Sizing follows IEEE 802.3: 18 bytes of MAC
header+FCS, 8 bytes preamble/SFD charged on the wire, a 46-byte minimum
payload (padding), and a 1500-byte maximum payload (the MTU the protocol
layer fragments to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

from ..errors import NetworkError

__all__ = [
    "BROADCAST",
    "ETH_HEADER_BYTES",
    "ETH_PREAMBLE_BYTES",
    "ETH_MIN_PAYLOAD",
    "ETH_MTU",
    "EthernetFrame",
]

#: destination address meaning "all stations"
BROADCAST = -1

ETH_HEADER_BYTES = 18  # dst+src MAC, ethertype, FCS
ETH_PREAMBLE_BYTES = 8  # preamble + start-frame delimiter
ETH_MIN_PAYLOAD = 46
ETH_MTU = 1500

_frame_ids = count(1)


@dataclass(slots=True)
class EthernetFrame:
    """One link-layer frame."""

    src: int
    dst: int  # station id or BROADCAST
    payload: Any
    payload_bytes: int
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: observability context (repro.obs.TraceContext) — lets the NIC and the
    #: bus attribute transmission/collision spans to the causing operation
    trace: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NetworkError(f"negative payload size: {self.payload_bytes}")
        if self.payload_bytes > ETH_MTU:
            raise NetworkError(
                f"payload {self.payload_bytes}B exceeds Ethernet MTU {ETH_MTU}B; "
                "fragment at the transport layer"
            )
        if self.src < 0:
            raise NetworkError(f"invalid source station {self.src}")

    @property
    def wire_bytes(self) -> int:
        """Bytes actually clocked onto the wire (padding + framing)."""
        body = max(self.payload_bytes, ETH_MIN_PAYLOAD)
        return body + ETH_HEADER_BYTES + ETH_PREAMBLE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dst = "bcast" if self.dst == BROADCAST else str(self.dst)
        return f"<Frame#{self.frame_id} {self.src}->{dst} {self.payload_bytes}B>"
