"""Exception hierarchy for the DSE reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "ProtocolError",
    "OSModelError",
    "DSEError",
    "GlobalMemoryError",
    "ProcessManagementError",
    "KernelUnavailableError",
    "ResilienceError",
    "ReplayError",
    "ReplayDivergence",
    "SSIError",
    "ApplicationError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """Invalid cluster / platform / experiment configuration."""


class NetworkError(ReproError):
    """Link-layer failures (frame too large, unknown station, ...)."""


class ProtocolError(ReproError):
    """Transport-layer failures (port in use, datagram too large, ...)."""


class OSModelError(ReproError):
    """OS-model failures (unknown pid, signal to dead process, ...)."""


class DSEError(ReproError):
    """Errors raised by the DSE runtime."""


class GlobalMemoryError(DSEError):
    """Out-of-range or misaligned global memory access, allocation failure."""


class ProcessManagementError(DSEError):
    """Parallel process invocation/termination failures."""


class KernelUnavailableError(DSEError):
    """An RPC was aimed at (or aborted by the death of) a crashed kernel."""


class ResilienceError(DSEError):
    """Unrecoverable failure inside the resilience subsystem itself."""


class ReplayError(DSEError):
    """Record/replay debugger failures (bad seek target, missing snapshot)."""


class ReplayDivergence(ReplayError):
    """A replayed run did not reproduce the recording bit-identically.

    Raised when a checkpoint waypoint or the final state of a replay differs
    from what the recording captured — the one error that must never happen
    while the simulation stays a pure function of its config."""


class SSIError(ReproError):
    """Single-system-image layer failures (unknown global pid, ...)."""


class ApplicationError(ReproError):
    """Errors raised by the bundled parallel applications."""
