"""PVM/MPI-style message-passing baseline on the simulated cluster."""

from .comm import Communicator, MAX, MIN, MP_BASE_PORT, SUM
from .gauss_seidel_mp import gauss_seidel_mp_worker
from .runtime import MPRunResult, run_mp

__all__ = [
    "Communicator",
    "MAX",
    "MIN",
    "MP_BASE_PORT",
    "SUM",
    "gauss_seidel_mp_worker",
    "MPRunResult",
    "run_mp",
]
