"""Message-passing runtime: build the cluster and run one rank per kernel slot.

Reuses :class:`repro.dse.ClusterConfig` for the hardware/placement
description but starts plain UNIX processes with sockets — no DSE kernels,
no DSM — which is exactly what a PVM/MPI job on the same machines did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..dse.config import ClusterConfig
from ..errors import ConfigurationError
from ..hardware.node import NodeSpec
from ..network.topology import build_network
from ..osmodel.machine import Machine
from ..protocol.transport import make_transport
from ..sim.core import Event, Simulator
from ..sim.rng import RandomStreams
from .comm import Communicator, MP_BASE_PORT

__all__ = ["MPRunResult", "run_mp"]


@dataclass
class MPRunResult:
    """Result of a message-passing run: elapsed time, per-rank returns, stats."""

    elapsed: float
    returns: Dict[int, Any]
    stats: Dict[str, float] = field(default_factory=dict)
    sim_events: int = 0


def run_mp(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
) -> MPRunResult:
    """SPMD message-passing execution: ``worker(comm, *args)`` per rank."""
    sim = Simulator()
    rng = RandomStreams(config.seed)
    n_machines = config.machines_used
    network = build_network(sim, rng, n_machines, config.fabric)
    machines = []
    for m in range(n_machines):
        nic = network.nic(m)
        transport = make_transport(sim, nic, config.transport)
        machines.append(
            Machine(
                sim,
                NodeSpec(node_id=m, platform=config.platform_of_machine(m)),
                nic,
                transport,
            )
        )

    size = config.n_processors
    routes = [
        (machines[config.machine_of(r)].station_id, MP_BASE_PORT + r) for r in range(size)
    ]
    returns: Dict[int, Any] = {}
    start_times: Dict[int, float] = {}
    end_times: Dict[int, float] = {}

    def body_for(rank: int):
        machine = machines[config.machine_of(rank)]

        def body(proc) -> Generator[Event, Any, Any]:
            sock = machine.open_socket(proc, MP_BASE_PORT + rank)
            comm = Communicator(rank, size, sock, routes)
            start_times[rank] = sim.now
            value = yield from worker(comm, *args)
            end_times[rank] = sim.now
            returns[rank] = value
            sock.close()
            return value

        return body

    for rank in range(size):
        machines[config.machine_of(rank)].spawn(body_for(rank), name=f"mp-r{rank}")
    sim.run_all()
    if len(returns) != size:
        missing = sorted(set(range(size)) - set(returns))
        raise ConfigurationError(f"MP ranks never finished: {missing} (deadlock?)")
    elapsed = max(end_times.values()) - min(start_times.values())
    fabric = network.fabric
    stats = {
        "net.frames_sent": fabric.stats.counter("frames_sent").value,
        "net.collisions": fabric.stats.counter("collisions").value,
        "msgs_sent": sum(m.stats.counter("msgs_sent").value for m in machines),
    }
    return MPRunResult(
        elapsed=elapsed, returns=returns, stats=stats, sim_events=sim.events_processed
    )
