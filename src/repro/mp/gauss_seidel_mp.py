"""Message-passing Gauss-Seidel (the PVM/MPI-style comparison workload).

Same numerics, same partitioning as :mod:`repro.apps.gauss_seidel`, but
block exchange happens through an ``allgather`` per sweep instead of DSM
reads — the ablation bench contrasts the two on identical hardware.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ..apps.gauss_seidel import (
    DEFAULT_SWEEPS,
    _block_update,
    make_system,
    row_partition,
    sweep_work,
)
from ..sim.core import Event
from .comm import Communicator

__all__ = ["gauss_seidel_mp_worker"]


def gauss_seidel_mp_worker(
    comm: Communicator,
    n: int,
    sweeps: int = DEFAULT_SWEEPS,
    seed: int = 7,
    verify: bool = True,
) -> Generator[Event, Any, Dict[str, Any]]:
    """One rank of the message-passing block Gauss-Seidel."""
    a, b = make_system(n, seed)
    bounds = row_partition(n, comm.size)
    lo, hi = bounds[comm.rank]

    # The communicator has no cost-charging compute of its own; borrow the
    # socket's owning process (same machine CPU as the DSE variant).
    proc = comm.socket.proc

    yield from comm.barrier()
    t0 = proc.sim.now

    x = np.zeros(n)
    block = x[lo:hi].copy()
    block_bytes = max(1, (hi - lo)) * 8
    for _ in range(sweeps):
        # Exchange all blocks (allgather), then update own rows.
        blocks = yield from comm.allgather(block, nbytes=block_bytes)
        for r, (rlo, rhi) in enumerate(bounds):
            if rhi > rlo:
                x[rlo:rhi] = blocks[r]
        if hi > lo:
            block = _block_update(a, b, x, lo, hi)
            yield from proc.compute(sweep_work(hi - lo, n))
    yield from comm.barrier()
    t1 = proc.sim.now

    result: Dict[str, Any] = {"rows": (lo, hi), "t0": t0, "t1": t1}
    if verify:
        blocks = yield from comm.allgather(block, nbytes=block_bytes)
        for r, (rlo, rhi) in enumerate(bounds):
            if rhi > rlo:
                x[rlo:rhi] = blocks[r]
        result["x"] = x
        result["residual"] = float(np.linalg.norm(a @ x - b))
    return result
