"""PVM/MPI-flavoured message-passing library on the simulated cluster.

The paper positions DSE against PVM and MPI; this package provides that
baseline on identical hardware so the ablation bench can compare the
shared-memory model against explicit message passing.  The API follows
mpi4py's lowercase-object conventions: ``send``/``recv`` move pickled-ish
Python objects (with explicit byte accounting), and the collectives are
built from point-to-point operations the way small 1999 libraries did
(linear gather/scatter through the root).

Worker bodies are generators receiving a :class:`Communicator`::

    def worker(comm):
        data = yield from comm.bcast(data, nbytes=1024, root=0)
        part = compute(data, comm.rank)
        parts = yield from comm.gather(part, nbytes=256, root=0)
        return parts
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..errors import ConfigurationError
from ..osmodel.sockets import Socket
from ..sim.core import Event

__all__ = ["Communicator", "MP_BASE_PORT", "SUM", "MAX", "MIN"]

MP_BASE_PORT = 7100

#: reduction operators
SUM = "sum"
MAX = "max"
MIN = "min"

_OPS: dict = {
    SUM: lambda values: sum(values[1:], start=values[0]),
    MAX: max,
    MIN: min,
}

#: accounted overhead of the envelope (source, tag) per message
_ENVELOPE_BYTES = 16


class Communicator:
    """One rank's endpoint in a message-passing world."""

    def __init__(self, rank: int, size: int, socket: Socket, routes: List[tuple]):
        self.rank = rank
        self.size = size
        self.socket = socket
        #: rank -> (station, port)
        self._routes = routes
        self._barrier_round = 0

    # -- point to point ---------------------------------------------------
    def send(
        self, dst: int, payload: Any, nbytes: int, tag: int = 0
    ) -> Generator[Event, Any, None]:
        """Send ``payload`` (accounted as ``nbytes``) to rank ``dst``."""
        self._check_rank(dst)
        station, port = self._routes[dst]
        yield from self.socket.sendto(
            station, port, (self.rank, tag, payload), nbytes + _ENVELOPE_BYTES
        )

    def recv(
        self, src: Optional[int] = None, tag: Optional[int] = None
    ) -> Generator[Event, Any, Any]:
        """Receive the next message (optionally from ``src`` / with ``tag``)."""

        def match(packet) -> bool:
            msg_src, msg_tag, _ = packet.payload
            if src is not None and msg_src != src:
                return False
            if tag is not None and msg_tag != tag:
                return False
            return True

        packet = yield from self.socket.recv(filter=match)
        return packet.payload[2]

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> Generator[Event, Any, None]:
        """Linear barrier through rank 0 (tagged per round for reuse)."""
        tag = 1_000_000 + self._barrier_round
        self._barrier_round += 1
        if self.rank == 0:
            for _ in range(self.size - 1):
                yield from self.recv(tag=tag)
            for r in range(1, self.size):
                yield from self.send(r, None, 1, tag=tag)
        else:
            yield from self.send(0, None, 1, tag=tag)
            yield from self.recv(src=0, tag=tag)

    def bcast(
        self, payload: Any, nbytes: int, root: int = 0, tag: int = 1
    ) -> Generator[Event, Any, Any]:
        """Broadcast from ``root``; every rank returns the payload."""
        self._check_rank(root)
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    yield from self.send(r, payload, nbytes, tag=tag)
            return payload
        return (yield from self.recv(src=root, tag=tag))

    def gather(
        self, payload: Any, nbytes: int, root: int = 0, tag: int = 2
    ) -> Generator[Event, Any, Optional[List[Any]]]:
        """Gather one item per rank at ``root`` (rank order); others get None."""
        self._check_rank(root)
        if self.rank == root:
            items: List[Any] = [None] * self.size
            items[root] = payload
            for _ in range(self.size - 1):
                packet = yield from self.socket.recv(
                    filter=lambda p: p.payload[1] == tag
                )
                src, _tag, item = packet.payload
                items[src] = item
            return items
        yield from self.send(root, payload, nbytes, tag=tag)
        return None

    def scatter(
        self, items: Optional[List[Any]], nbytes: int, root: int = 0, tag: int = 3
    ) -> Generator[Event, Any, Any]:
        """Scatter one item per rank from ``root``."""
        self._check_rank(root)
        if self.rank == root:
            if items is None or len(items) != self.size:
                raise ConfigurationError("scatter requires one item per rank at root")
            for r in range(self.size):
                if r != root:
                    yield from self.send(r, items[r], nbytes, tag=tag)
            return items[root]
        return (yield from self.recv(src=root, tag=tag))

    def reduce(
        self, payload: Any, nbytes: int, op: str = SUM, root: int = 0, tag: int = 4
    ) -> Generator[Event, Any, Any]:
        """Reduce one value per rank at ``root`` (others return None)."""
        if op not in _OPS:
            raise ConfigurationError(f"unknown reduction op {op!r}")
        values = yield from self.gather(payload, nbytes, root=root, tag=tag)
        if values is None:
            return None
        return _OPS[op](values)

    def allgather(
        self, payload: Any, nbytes: int, tag: int = 5
    ) -> Generator[Event, Any, List[Any]]:
        """Gather at rank 0 then broadcast: every rank gets every item."""
        items = yield from self.gather(payload, nbytes, root=0, tag=tag)
        items = yield from self.bcast(items, nbytes * self.size, root=0, tag=tag + 1)
        return items

    def allreduce(
        self, payload: Any, nbytes: int, op: str = SUM, tag: int = 7
    ) -> Generator[Event, Any, Any]:
        value = yield from self.reduce(payload, nbytes, op=op, root=0, tag=tag)
        return (yield from self.bcast(value, nbytes, root=0, tag=tag + 1))

    # -- internals -----------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ConfigurationError(f"rank {rank} out of range 0..{self.size - 1}")
