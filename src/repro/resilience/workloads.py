"""Crash-tolerant versions of the paper workloads.

Two reference workloads exercise both recovery paths end to end:

* :func:`resilient_gauss_seidel` — the §4.1 SPMD solver restructured for
  ``run_resilient``: the worker takes a checkpoint (``{"sweep": s}`` plus
  its global-memory slice) after every sweep barrier, and on re-invocation
  after a rollback resumes from the committed sweep instead of restarting
  from zero.  Its numerical result must match the failure-free run exactly.
* :func:`resilient_tour_master` — the §4.4 Knight's Tour search as a
  ``farm_dynamic`` task farm under ``run_resilient_master``: crashed tasks
  are reassigned to surviving kernels, so it tolerates even *permanent*
  kernel deaths and still counts every tour exactly once.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

import numpy as np

from ..apps.gauss_seidel import (
    DEFAULT_SWEEPS,
    _block_update,
    make_system,
    row_partition,
    sweep_work,
)
from ..apps.knights_tour import (
    DEFAULT_BOARD,
    DEFAULT_START,
    NODE_WORK,
    TourJob,
    knights_tour_workload,
)
from ..dse.api import ParallelAPI
from ..dse.taskfarm import farm_dynamic
from ..sim.core import Event

__all__ = ["resilient_gauss_seidel", "resilient_tour_master", "tour_task"]


def resilient_gauss_seidel(
    api: ParallelAPI,
    ck: Optional[Dict[str, Any]],
    n: int,
    sweeps: int = DEFAULT_SWEEPS,
    seed: int = 7,
    verify: bool = True,
) -> Generator[Event, Any, Dict[str, Any]]:
    """Block Gauss-Seidel with per-sweep checkpoints (for ``run_resilient``).

    ``ck`` is ``None`` on the first invocation; after a rollback it is the
    committed ``{"sweep": s}`` state and global memory already holds the
    restored x blocks, so the worker skips initialisation and resumes the
    sweep loop at ``s``.
    """
    a, b = make_system(n, seed)
    size, rank = api.size, api.rank
    bounds = row_partition(n, size)
    lo, hi = bounds[rank]

    def block_addr(r: int) -> int:
        return api.home_base(r)

    if ck is None:
        yield from api.gm_write(block_addr(rank), np.zeros(max(hi - lo, 1)))
        yield from api.barrier("gs:init")
        yield from api.checkpoint({"sweep": 0})
        start_sweep = 0
    else:
        start_sweep = int(ck["sweep"])
    t0 = api.now

    x = np.zeros(n)
    for sweep in range(start_sweep, sweeps):
        for r in range(size):
            rlo, rhi = bounds[r]
            if rhi > rlo:
                data = yield from api.gm_read(block_addr(r), rhi - rlo)
                x[rlo:rhi] = data
        yield from api.barrier(f"gs:gather{sweep}")
        if hi > lo:
            new_block = _block_update(a, b, x, lo, hi)
            yield from api.compute(sweep_work(hi - lo, n))
            yield from api.gm_write(block_addr(rank), new_block)
        yield from api.barrier(f"gs:sweep{sweep}")
        # The restore point: global memory now holds the post-sweep x cut.
        yield from api.checkpoint({"sweep": sweep + 1})
    t1 = api.now

    result: Dict[str, Any] = {"rows": (lo, hi), "t0": t0, "t1": t1}
    if verify:
        for r in range(size):
            rlo, rhi = bounds[r]
            if rhi > rlo:
                data = yield from api.gm_read(block_addr(r), rhi - rlo)
                x[rlo:rhi] = data
        result["x"] = x
        result["residual"] = float(np.linalg.norm(a @ x - b))
    return result


def tour_task(api: ParallelAPI, job: TourJob) -> Generator[Event, Any, int]:
    """One farmed Knight's Tour subtree search: charge its measured node
    count, return its tour count."""
    yield from api.compute(NODE_WORK.scaled(job.nodes))
    return job.tours


def resilient_tour_master(
    api: ParallelAPI,
    n_jobs: int,
    board: int = DEFAULT_BOARD,
    start: int = DEFAULT_START,
    max_in_flight: Optional[int] = None,
) -> Generator[Event, Any, Dict[str, Any]]:
    """Knight's Tour as a crash-tolerant farm (for ``run_resilient_master``).

    Splits the search into prefix jobs and farms them with
    :func:`repro.dse.taskfarm.farm_dynamic`; lost tasks are retried on
    surviving kernels, so the exact sequential tour count is recovered even
    when victims never restart.
    """
    workload = knights_tour_workload(n_jobs, board, start)
    farmed = yield from farm_dynamic(
        api, tour_task, workload.jobs, max_in_flight=max_in_flight
    )
    return {
        "tours": int(sum(farmed)),
        "expected_tours": workload.total_tours,
        "n_jobs": len(workload.jobs),
        "attempts": list(farmed.attempts),
        "retries": farmed.retries,
        "wasted_seconds": farmed.wasted_seconds,
    }
