"""Resilient runners: SPMD with checkpoint/rollback, master with retry.

``run_resilient`` is the crash-tolerant counterpart of
:func:`repro.dse.runtime.run_parallel`.  The plain runner executes rank 0's
worker inline in the driver coroutine, which cannot survive a rollback; here
a *supervisor* driver on kernel 0 invokes **all** ranks as DSE processes,
then waits on either all-done or the failure detector:

1. Every rank runs ``worker(api, ck, *args)`` where ``ck`` is ``None`` on
   the first attempt and the rank's committed checkpoint state after a
   rollback (workers call ``api.checkpoint(state)`` at barriers to create
   restore points).
2. On a death declaration the supervisor waits for the crashed kernel to
   rejoin (its global-memory slice is structurally tied to its kernel id —
   permanent deaths are unrecoverable for SPMD; see docs/resilience.md),
   then drives the two-phase rollback RPC and re-invokes every rank from
   the committed checkpoint.
3. After ``max_recovery_attempts`` failed cycles the run raises
   :class:`repro.errors.ResilienceError`.

``run_resilient_master`` is the master/worker counterpart of ``run_master``
for task-farm workloads: the master runs on kernel 0 (not crashable), and
``taskfarm.farm_dynamic`` already reassigns lost tasks to surviving
kernels — no rollback is needed, so permanent (no-restart) crashes are fine.

Both accept a :class:`repro.resilience.campaign.FaultCampaign` and arm it
on the freshly built cluster before simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from ..dse.api import ParallelAPI
from ..dse.cluster import Cluster
from ..dse.config import ClusterConfig
from ..dse.procman import TaskLost
from ..dse.runtime import RunResult
from ..errors import ConfigurationError, DSEError, KernelUnavailableError, ResilienceError
from ..sim.core import Event

__all__ = ["ResilientRunResult", "run_resilient", "run_resilient_master"]


@dataclass
class ResilientRunResult(RunResult):
    """A :class:`RunResult` plus recovery accounting."""

    #: completed detection+rollback cycles before success
    recoveries: int = 0
    #: death declarations as (simulated time, kernel id)
    failures: tuple = ()
    #: simulated seconds from first dispatch to final completion, minus a
    #: failure-free run's elapsed time = the resilience experiments' cost
    #: curves; here just the raw elapsed (same field as RunResult.elapsed)


def _resilient_entry(api: ParallelAPI, worker, ck, args) -> Generator[Event, Any, Any]:
    """DSE-process wrapper giving workers the ``(api, ck, *args)`` shape."""
    value = yield from worker(api, ck, *args)
    return value


def _finish(cluster: Cluster, config: ClusterConfig, outcome: Dict[str, Any]) -> None:
    cluster.sim.run_all()
    sanitizer = cluster.sanitizer
    if sanitizer.enabled:
        sanitizer.finalize(cluster.sim.now)
    if "returns" not in outcome:
        detail = "resilient run did not complete (deadlock or early drain)"
        if "error" in outcome:
            raise outcome["error"]
        if sanitizer.enabled and not sanitizer.report.clean:
            detail = f"{detail}\n{sanitizer.report.format()}"
        error = DSEError(detail)
        error.cluster = cluster
        raise error


def run_resilient(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
    campaign: Any = None,
) -> ResilientRunResult:
    """Crash-tolerant SPMD: ``worker(api, ck, *args)`` on every kernel."""
    if config.resilience is None:
        raise ConfigurationError("run_resilient needs ClusterConfig(resilience=...)")
    cluster = Cluster(config)
    res = cluster.resilience
    if campaign is not None:
        campaign.arm(cluster)
    outcome: Dict[str, Any] = {}

    def watch_lost(handle, lost_any: Event) -> Generator[Event, Any, None]:
        # Wake the supervisor the moment any rank's completion comes back as
        # TaskLost: its SPMD wave is broken (peers will hang at barriers),
        # and no *new* kernel death may follow to wake us otherwise.
        value = yield handle.done_event
        if isinstance(value, TaskLost) and not lost_any.triggered:
            lost_any.succeed(value)

    def supervisor() -> Generator[Event, Any, None]:
        kernel0 = cluster.kernel(0)
        procman = kernel0.procman
        sim = cluster.sim
        start = sim.now
        recoveries = 0
        while True:
            failure = res.arm_failure_event()
            lost_any = sim.event(name="res-task-lost")
            handles = []
            try:
                for rank in range(cluster.size):
                    ck = res.checkpoint_state(rank)
                    handle = yield from procman.invoke(
                        cluster.placement(rank), _resilient_entry, rank,
                        (worker, ck, args),
                    )
                    handles.append(handle)
                    sim.process(
                        watch_lost(handle, lost_any), name=f"res-watch:r{rank}"
                    )
                alldone = sim.all_of([h.done_event for h in handles])
                yield sim.any_of([alldone, failure, lost_any])
                if alldone.triggered and not failure.triggered:
                    values = {h.rank: h.done_event.value for h in handles}
                    if not any(isinstance(v, TaskLost) for v in values.values()):
                        outcome["returns"] = values
                        break
            except KernelUnavailableError:
                pass  # a victim died mid-(re)invocation; recover below
            # -- recovery cycle ------------------------------------------------
            # Reached on a death declaration, a TaskLost completion, or a
            # refused re-invocation.  await_rejoin returns immediately when
            # nothing is dead (e.g. a task lost to a transiently stale view).
            recoveries += 1
            if recoveries > res.config.max_recovery_attempts:
                outcome["error"] = ResilienceError(
                    f"giving up after {res.config.max_recovery_attempts} "
                    "recovery attempts"
                )
                yield from cluster.shutdown_from(0)
                return
            try:
                yield from res.await_rejoin(kernel0)
                yield from res.rollback(kernel0)
            except KernelUnavailableError:
                # Another kernel died *during* recovery: loop and retry the
                # whole cycle against the new membership.
                continue
            except ResilienceError as exc:
                outcome["error"] = exc
                yield from cluster.shutdown_from(0)
                return
            for rank in range(cluster.size):
                procman.forget(rank)
        outcome["elapsed"] = sim.now - start
        outcome["recoveries"] = recoveries
        yield from cluster.shutdown_from(0)

    cluster.sim.process(supervisor(), name="dse-supervisor")
    _finish(cluster, config, outcome)
    return ResilientRunResult(
        elapsed=outcome["elapsed"],
        returns=outcome["returns"],
        stats=cluster.stats_snapshot(),
        sim_events=cluster.sim.events_processed,
        config=config,
        cluster=cluster,
        recoveries=outcome.get("recoveries", 0),
        failures=tuple(res.failures),
    )


def run_resilient_master(
    config: ClusterConfig,
    master: Callable[..., Generator],
    args: tuple = (),
    campaign: Any = None,
) -> ResilientRunResult:
    """Crash-tolerant master/worker: ``master(api, *args)`` on kernel 0.

    The master typically drives ``taskfarm.farm_dynamic``, whose retry
    logic (TaskLost → backoff → re-dispatch on live kernels) provides the
    recovery; no checkpointing or rollback is involved."""
    if config.resilience is None:
        raise ConfigurationError(
            "run_resilient_master needs ClusterConfig(resilience=...)"
        )
    cluster = Cluster(config)
    res = cluster.resilience
    if campaign is not None:
        campaign.arm(cluster)
    outcome: Dict[str, Any] = {}

    def driver() -> Generator[Event, Any, None]:
        api = ParallelAPI(cluster.kernel(0), 0)
        start = api.now
        value = yield from master(api, *args)
        outcome["elapsed"] = api.now - start
        outcome["returns"] = {0: value}
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver(), name="dse-master")
    _finish(cluster, config, outcome)
    return ResilientRunResult(
        elapsed=outcome["elapsed"],
        returns=outcome["returns"],
        stats=cluster.stats_snapshot(),
        sim_events=cluster.sim.events_processed,
        config=config,
        cluster=cluster,
        recoveries=0,
        failures=tuple(res.failures),
    )
