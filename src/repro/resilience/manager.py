"""Resilience manager: fault injection, failure detection, recovery glue.

One :class:`ResilienceManager` per cluster (built by
:class:`repro.dse.cluster.Cluster` *before* the kernels so every hook site
can cache the reference — the established ``is not None`` gating pattern).
It owns:

* **membership views** — one :class:`repro.resilience.membership.Membership`
  per kernel.  The monitor (kernel 0) drives ALIVE → SUSPECT → DEAD from
  heartbeat silence; declarations are broadcast as ``RES_DEAD`` messages
  and each kernel's handler updates its local view and aborts local work
  aimed at the corpse.
* **heartbeats** — a per-kernel agent sends ``RES_HEARTBEAT`` to the
  monitor only when nothing else reached the monitor within a period
  (piggybacking: busy kernels cost no extra messages).  The monitor's
  ``last_heard`` table is fed by an arrival hook on its DSE socket, so
  requests *and* responses both count as liveness evidence.
* **fault injection** — :meth:`crash_kernel` tears a kernel down for real:
  guests and handler coroutines are killed, the service loop's UNIX
  process exits, the DSE port unbinds (inbound datagrams then drop exactly
  like packets to a dead host), and the global-memory slice is lost.
  :meth:`restart_kernel` reboots it with a fresh incarnation.
* **recovery** — coordinated checkpoints at barriers
  (:meth:`checkpoint`, driven by ``ParallelAPI.checkpoint``), two-phase
  rollback RPCs (:meth:`rollback`), lease-based lock revocation, and
  barrier reconfiguration after deaths.

Everything is deterministic per seed: agents and the monitor are periodic
simulation processes, and no wall-clock or unseeded randomness exists
anywhere in the subsystem.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import ResilienceError
from ..sim.core import Event
from ..sim.monitor import StatSet
from .checkpoint import CheckpointStore
from .config import ResilienceConfig
from .membership import ALIVE, DEAD, SUSPECT, Membership

if TYPE_CHECKING:  # pragma: no cover
    from ..dse.cluster import Cluster
    from ..dse.kernel import DSEKernel

__all__ = ["ResilienceManager"]


class ResilienceManager:
    """Cluster-wide resilience state and protocols (see module docs)."""

    #: the monitor / barrier coordinator; not crashable (see docs/resilience.md)
    monitor_id = 0

    def __init__(self, cluster: "Cluster", config: ResilienceConfig):
        # Built before machines/kernels exist: only sizes may be touched here.
        self.cluster = cluster
        self.config = config
        self.sim = cluster.sim
        self.world = cluster.config.n_processors
        #: per-kernel membership views (kernel id -> Membership)
        self.views: Dict[int, Membership] = {
            k: Membership(self.world) for k in range(self.world)
        }
        self.store = CheckpointStore(self.world)
        self.stats = StatSet("resilience")
        #: armed by the resilient runner; succeeds on the next death
        self.failure_event: Optional[Event] = None
        #: death declarations as (time, kernel_id), in order
        self.failures: List[tuple] = []
        #: crash injection times for detect-latency accounting
        self._crash_times: Dict[int, float] = {}
        #: per-rank next checkpoint version (reset after rollback)
        self._ckpt_next: Dict[int, int] = {}
        #: heartbeat agent processes per kernel
        self._agents: Dict[int, Any] = {}

    # -- queries --------------------------------------------------------------
    def usable(self, kernel_id: int) -> bool:
        """Monitor's view: may this kernel be targeted / shut down?"""
        return self.views[self.monitor_id].usable(kernel_id)

    @property
    def membership(self) -> Membership:
        """The monitor's (authoritative) membership view."""
        return self.views[self.monitor_id]

    # -- wiring ---------------------------------------------------------------
    def wire(self) -> None:
        """Install services, heartbeat agents, and the monitor.

        Called by the cluster once kernels and routes exist."""
        from ..dse.messages import MsgType

        for kernel in self.cluster.kernels:
            kernel.register_service(MsgType.RES_HEARTBEAT, self._make_heartbeat_handler(kernel))
            kernel.register_service(MsgType.RES_JOIN, self._make_join_handler(kernel))
            kernel.register_service(MsgType.RES_DEAD, self._make_dead_handler(kernel))
            kernel.register_service(
                MsgType.RES_ROLLBACK_REQ, self._make_rollback_handler(kernel)
            )
        monitor = self.cluster.kernels[self.monitor_id]
        # Liveness evidence: anything arriving at the monitor's DSE port —
        # requests and responses alike — refreshes the sender's last_heard.
        monitor.exchange.socket.on_arrival(self._on_monitor_arrival)
        view = self.views[self.monitor_id]
        for kernel in self.cluster.kernels:
            if kernel.kernel_id != self.monitor_id:
                self._agents[kernel.kernel_id] = self.sim.process(
                    self._agent(kernel), name=f"res-agent:k{kernel.kernel_id}"
                )
        self.sim.process(self._monitor(monitor, view), name="res-monitor")

    def _on_monitor_arrival(self, packet) -> None:
        from ..dse.messages import DSEMessage

        payload = packet.payload
        if not isinstance(payload, DSEMessage):  # pragma: no cover - foreign traffic
            return
        src = payload.src_kernel
        view = self.views[self.monitor_id]
        if view.state.get(src) == DEAD:
            # A zombie (e.g. partitioned past the grace, then healed): only
            # an explicit RES_JOIN readmits it.
            return
        if view.heard_from(src, self.sim.now):
            self.stats.counter("suspicions_cleared").increment()
            if self.cluster.obs.enabled:
                self.cluster.obs.instant(
                    self.sim.now, f"res.suspicion_cleared:k{src}", "res", 0, 0
                )

    # -- heartbeats ------------------------------------------------------------
    def _agent(self, kernel: "DSEKernel") -> Generator[Event, Any, None]:
        """Per-kernel heartbeat agent (piggybacking; see module docs)."""
        from ..dse.messages import DSEMessage, MsgType

        period = self.config.heartbeat_period
        monitor = self.cluster.kernels[self.monitor_id]
        while True:
            yield self.sim.timeout(period)
            # Exiting when the *monitor* shuts down matters on error paths: a
            # restarted kernel the monitor still believes dead is skipped by
            # shutdown_from, and its agent must not spin the drained cluster.
            if kernel._shutdown or not kernel.alive or monitor._shutdown:
                return
            exchange = kernel.exchange
            if self.sim.now - exchange.last_sent_to_monitor < period:
                continue  # recent real traffic already proved liveness
            msg = DSEMessage(
                msg_type=MsgType.RES_HEARTBEAT,
                src_kernel=kernel.kernel_id,
                dst_kernel=self.monitor_id,
                addr=kernel.incarnation,
            )
            self.stats.counter("heartbeats").increment()
            yield from exchange.notify(msg)

    def _monitor(
        self, monitor: "DSEKernel", view: Membership
    ) -> Generator[Event, Any, None]:
        """Failure detector on kernel 0: silence → SUSPECT → DEAD."""
        period = self.config.heartbeat_period
        timeout = self.config.heartbeat_timeout
        grace = self.config.suspect_grace
        while True:
            yield self.sim.timeout(period)
            if monitor._shutdown:
                return
            now = self.sim.now
            for k in range(self.world):
                if k == self.monitor_id:
                    continue
                state = view.state[k]
                if state == DEAD:
                    continue
                silence = now - view.last_heard[k]
                if state == ALIVE and silence >= timeout:
                    view.suspect(k, now)
                    self.stats.counter("suspicions").increment()
                    if self.cluster.obs.enabled:
                        self.cluster.obs.instant(now, f"res.suspect:k{k}", "res", 0, 0)
                elif state == SUSPECT and silence >= timeout + grace:
                    self._declare_dead(k)

    def _declare_dead(self, dead: int) -> None:
        """Monitor decision: apply locally *now*, broadcast to the others.

        The monitor-local effects (view update, failure event, RPC aborts,
        pending-task failures) are synchronous: the fast-restart path in the
        join handler declares the old incarnation dead and immediately
        rejoins the new one, and a broadcast routed back to the monitor
        would clobber the rejoin.  The broadcast to the other kernels is
        tagged with the dead *incarnation*, so it loses the same race
        stalely at every receiver."""
        from ..dse.messages import DSEMessage, MsgType

        now = self.sim.now
        monitor = self.cluster.kernels[self.monitor_id]
        view = self.views[self.monitor_id]
        old_inc = view.incarnation.get(dead, 0)
        if not view.declare_dead(dead, old_inc):
            return
        self.stats.counter("deaths").increment()
        if dead in self._crash_times:
            self.stats.tally("detect_latency").observe(now - self._crash_times[dead])
        if self.cluster.obs.enabled:
            self.cluster.obs.instant(now, f"res.dead:k{dead}", "res", 0, 0)
        self.failures.append((now, dead))
        if self.failure_event is not None and not self.failure_event.triggered:
            self.failure_event.succeed(dead)
        aborted = monitor.exchange.abort_waiting_to(dead)
        if aborted:
            self.stats.counter("rpc_aborts").increment(aborted)
        lost = monitor.procman.fail_pending_for(dead, now)
        if lost:
            self.stats.counter("tasks_lost").increment(lost)
        self.sim.process(
            self._revoke_after_lease(monitor, dead),
            name=f"res-lease:k{self.monitor_id}:d{dead}",
        )
        if self.config.reconfigure_barriers:
            self.sim.process(
                self._reconfigure_barriers(monitor), name=f"res-reconf:d{dead}"
            )

        def broadcast() -> Generator[Event, Any, None]:
            for k in view.live_kernels():
                if k in (dead, self.monitor_id):
                    continue
                msg = DSEMessage(
                    msg_type=MsgType.RES_DEAD,
                    src_kernel=self.monitor_id,
                    dst_kernel=k,
                    addr=dead,
                    data=old_inc,
                )
                yield from monitor.exchange.notify(msg)

        self.sim.process(broadcast(), name=f"res-dead-bcast:k{dead}")

    def _reconfigure_barriers(
        self, kernel: "DSEKernel"
    ) -> Generator[Event, Any, None]:
        released = yield from kernel.sync.reconfigure_barriers()
        if released:
            self.stats.counter("barriers_reconfigured").increment(released)

    # -- RES_* service handlers -------------------------------------------------
    def _make_heartbeat_handler(self, kernel: "DSEKernel"):
        def handler(msg) -> Generator[Event, Any, None]:
            # Liveness was recorded by the arrival hook; nothing more to do.
            return None
            yield  # pragma: no cover - generator parity

        return handler

    def _make_join_handler(self, kernel: "DSEKernel"):
        def handler(msg) -> Generator[Event, Any, None]:
            joiner, incarnation = msg.src_kernel, msg.addr
            view = self.views[kernel.kernel_id]
            if kernel.kernel_id == self.monitor_id:
                if (
                    view.state.get(joiner) != DEAD
                    and incarnation > view.incarnation.get(joiner, 0)
                ):
                    # The kernel crashed and restarted *faster* than detection:
                    # the old incarnation must be declared dead first so every
                    # kernel aborts state tied to it.
                    self._declare_dead(joiner)
                view.rejoin(joiner, incarnation, self.sim.now)
                self.stats.counter("joins").increment()
                if self.cluster.obs.enabled:
                    self.cluster.obs.instant(
                        self.sim.now, f"res.join:k{joiner}", "res", 0, 0
                    )
                # Re-broadcast so survivors can target the joiner again.
                # Detached: a rollback's kill phase slays handler processes
                # on kernel 0, and the forward must survive it.
                self.sim.process(
                    self._forward_join(joiner, incarnation),
                    name=f"res-join-fwd:k{joiner}",
                )
            else:
                view.rejoin(joiner, incarnation, self.sim.now)
            return None
            yield  # pragma: no cover - generator parity

        return handler

    def _forward_join(self, joiner: int, incarnation: int) -> Generator[Event, Any, None]:
        from ..dse.messages import DSEMessage, MsgType

        monitor = self.cluster.kernels[self.monitor_id]
        for k in self.views[self.monitor_id].live_kernels():
            if k in (joiner, self.monitor_id):
                continue
            msg = DSEMessage(
                msg_type=MsgType.RES_JOIN,
                src_kernel=joiner,  # keep the joiner's identity for the views
                dst_kernel=k,
                addr=incarnation,
            )
            yield from monitor.exchange.notify(msg)

    def _make_dead_handler(self, kernel: "DSEKernel"):
        def handler(msg) -> Generator[Event, Any, None]:
            dead, dead_inc = msg.addr, int(msg.data or 0)
            view = self.views[kernel.kernel_id]
            if not view.declare_dead(dead, dead_inc):
                return None  # duplicate, or stale (a rejoin overtook it)
            aborted = kernel.exchange.abort_waiting_to(dead)
            if aborted:
                self.stats.counter("rpc_aborts").increment(aborted)
            lost = kernel.procman.fail_pending_for(dead, self.sim.now)
            if lost:
                self.stats.counter("tasks_lost").increment(lost)
            # Lease expiry: this kernel frees the dead holder's locks it
            # homes, a configurable delay after the declaration.
            self.sim.process(
                self._revoke_after_lease(kernel, dead),
                name=f"res-lease:k{kernel.kernel_id}:d{dead}",
            )
            return None
            yield  # pragma: no cover - generator parity

        return handler

    def _revoke_after_lease(
        self, kernel: "DSEKernel", dead: int
    ) -> Generator[Event, Any, None]:
        if self.config.lock_lease > 0:
            yield self.sim.timeout(self.config.lock_lease)
        if kernel._shutdown or not kernel.alive:
            return
        revoked = yield from kernel.sync.revoke_dead(dead)
        if revoked:
            self.stats.counter("locks_revoked").increment(revoked)

    def _make_rollback_handler(self, kernel: "DSEKernel"):
        from ..hardware.cpu import Work

        def handler(msg) -> Generator[Event, Any, Any]:
            if msg.name == "kill":
                self._quiesce_kernel(kernel)
            elif msg.name == "restore":
                snap = np.asarray(msg.data, dtype=np.float64)
                # Stable-storage read + memory copy back into the slice.
                yield from kernel.unix_process.compute_seconds(
                    snap.nbytes / self.config.checkpoint_bps
                )
                yield from kernel.unix_process.compute(Work(mems=len(snap)))
                kernel.gmem.restore_slice(snap)
            else:
                raise ResilienceError(f"unknown rollback phase {msg.name!r}")
            return msg.make_response()

        return handler

    def _quiesce_kernel(self, kernel: "DSEKernel") -> None:
        """Kill every guest and handler on a kernel; reset volatile DSE state.

        Used by the rollback "kill" phase on surviving kernels.  The handler
        currently executing this (if any) survives — a generator cannot
        close itself."""
        active = self.sim.active_process
        for rank in sorted(kernel.procman.local_processes):
            proc = kernel.procman.local_processes[rank]
            if proc is not active and proc.is_alive:
                proc.kill()
        for proc in list(kernel._handlers):
            if proc is not active and proc.is_alive:
                proc.kill()
                kernel._handlers.discard(proc)
        kernel.procman.clear_guests()
        kernel.sync.reset()
        kernel.gmem.abort_inflight()

    # -- fault injection --------------------------------------------------------
    def crash_kernel(
        self,
        kernel_id: int,
        restart_after: Optional[float] = None,
        halt_machine: bool = False,
    ) -> None:
        """Tear a kernel down as a crash (no warning, no cleanup protocol).

        Guests, request handlers, the heartbeat agent, and the service loop
        are killed in one synchronous pass; the UNIX process exits; the DSE
        port unbinds (later datagrams drop silently, like packets to a dead
        host); the global-memory slice is lost.  Membership is *not*
        touched — discovering the death is the failure detector's job.

        ``restart_after`` schedules :meth:`restart_kernel` that many
        simulated seconds later.  ``halt_machine`` also powers the machine
        (and its NIC) off — only meaningful when the victim is the only
        kernel on its machine."""
        if kernel_id == self.monitor_id:
            raise ResilienceError("kernel 0 is the monitor/coordinator; not crashable")
        kernel = self.cluster.kernels[kernel_id]
        if not kernel.alive:
            return
        kernel.alive = False
        now = self.sim.now
        self._crash_times[kernel_id] = now
        # Guests first: killing a combined-read leader runs its finally,
        # which needs gmem's tables still intact.
        crashed_ranks = sorted(kernel.procman.local_processes)
        for rank in crashed_ranks:
            proc = kernel.procman.local_processes[rank]
            if proc.is_alive:
                proc.kill()
        for proc in list(kernel._handlers):
            if proc.is_alive:
                proc.kill()
        kernel._handlers.clear()
        agent = self._agents.get(kernel_id)
        if agent is not None and agent.is_alive:
            agent.kill()
        service = kernel.unix_process.sim_process
        if service is not None and service.is_alive:
            service.kill()
        if not kernel.unix_process.exited:
            kernel.unix_process.mark_exited(None)
        kernel.exchange.close()
        kernel.gmem.lose_memory()
        kernel.sync.reset()
        kernel.procman.clear_guests()
        if halt_machine:
            kernel.machine.halt()
        deadlock = self.cluster.sanitizer.deadlock
        if deadlock is not None:
            deadlock.on_crash(crashed_ranks, now)
        self.stats.counter("crashes").increment()
        if self.cluster.obs.enabled:
            self.cluster.obs.instant(now, f"res.crash:k{kernel_id}", "res", 0, 0)
        if restart_after is not None:
            self.sim.process(
                self._restart_later(kernel_id, restart_after),
                name=f"res-restart:k{kernel_id}",
            )

    def _restart_later(
        self, kernel_id: int, delay: float
    ) -> Generator[Event, Any, None]:
        yield self.sim.timeout(delay)
        self.restart_kernel(kernel_id)

    def restart_kernel(self, kernel_id: int) -> None:
        """Reboot a crashed kernel: fresh incarnation, empty state, RES_JOIN."""
        kernel = self.cluster.kernels[kernel_id]
        if kernel.alive:
            return
        if not kernel.machine.up:
            kernel.machine.restart()
        kernel.reboot()
        self.stats.counter("restarts").increment()
        if self.cluster.obs.enabled:
            self.cluster.obs.instant(
                self.sim.now, f"res.restart:k{kernel_id}", "res", 0, 0
            )
        # A new heartbeat agent announces the new incarnation, then beats.
        self._agents[kernel_id] = self.sim.process(
            self._rejoin_then_beat(kernel), name=f"res-agent:k{kernel_id}.r{kernel.incarnation}"
        )

    def _rejoin_then_beat(self, kernel: "DSEKernel") -> Generator[Event, Any, None]:
        from ..dse.messages import DSEMessage, MsgType

        msg = DSEMessage(
            msg_type=MsgType.RES_JOIN,
            src_kernel=kernel.kernel_id,
            dst_kernel=self.monitor_id,
            addr=kernel.incarnation,
        )
        yield from kernel.exchange.notify(msg)
        yield from self._agent(kernel)

    # -- checkpoint / rollback ----------------------------------------------------
    def checkpoint(self, api, state: Any) -> Generator[Event, Any, None]:
        """One rank's part of a coordinated checkpoint (see CheckpointStore)."""
        rank = api.rank
        version = self._ckpt_next.get(rank, self.store.committed_version + 1)
        # Enter barrier: every rank is at the cut and (because api.barrier
        # flushes first) global memory is quiescent.
        yield from api.barrier(f"res:ckpt:{version}:enter")
        snap = api.kernel.gmem.snapshot_slice()
        latency = max(snap.nbytes, 64) / self.config.checkpoint_bps
        yield from api.compute_seconds(latency)
        self.store.put(rank, version, state, snap)
        self._ckpt_next[rank] = version + 1
        self.stats.counter("checkpoints").increment()
        ckpt = self.cluster.ckpt_stats
        ckpt.counter("snapshots").increment()
        ckpt.tally("snapshot_bytes").observe(snap.nbytes)
        ckpt.tally("write_latency").observe(latency)
        rec = self.cluster.replay
        if rec is not None:
            # Replay recording piggybacks on the resilience checkpoint: the
            # ring shares this snapshot (no extra barriers, no extra cost).
            rec.on_rank_snapshot(rank, version, state, snap, self.sim.now)
        # Commit barrier: nobody proceeds until the version is complete.
        yield from api.barrier(f"res:ckpt:{version}:commit")

    def arm_failure_event(self) -> Event:
        """(Re-)arm the event the resilient runner waits on."""
        if self.failure_event is None or self.failure_event.triggered:
            self.failure_event = self.sim.event(name="res-failure")
        return self.failure_event

    def await_rejoin(self, kernel: "DSEKernel") -> Generator[Event, Any, None]:
        """Wait until no kernel is DEAD in ``kernel``'s view (or time out)."""
        view = self.views[kernel.kernel_id]
        deadline = self.sim.now + self.config.rejoin_timeout
        while view.dead_kernels():
            if self.sim.now >= deadline:
                raise ResilienceError(
                    f"kernels {view.dead_kernels()} did not rejoin within "
                    f"{self.config.rejoin_timeout}s — cannot recover their "
                    "global-memory slices (see docs/resilience.md)"
                )
            yield self.sim.timeout(self.config.heartbeat_period)

    def rollback(self, kernel0: "DSEKernel") -> Generator[Event, Any, None]:
        """Two-phase cluster rollback, driven from the supervisor on kernel 0.

        Phase "kill" quiesces every live kernel (guests killed, sync and
        combining state dropped); phase "restore" rewrites each kernel's
        home slice from the committed checkpoint.  With no committed
        checkpoint only the kill phase runs — ranks restart from scratch."""
        from ..dse.messages import DSEMessage, MsgType

        self.stats.counter("rollbacks").increment()
        live = self.views[kernel0.kernel_id].live_kernels()
        for k in live:
            msg = DSEMessage(
                msg_type=MsgType.RES_ROLLBACK_REQ,
                src_kernel=kernel0.kernel_id,
                dst_kernel=k,
                name="kill",
            )
            yield from kernel0.exchange.request(msg)
        if self.store.has_checkpoint:
            for rank in range(self.world):
                state, snap = self.store.get(rank)
                target = self.cluster.placement(rank)
                msg = DSEMessage(
                    msg_type=MsgType.RES_ROLLBACK_REQ,
                    src_kernel=kernel0.kernel_id,
                    dst_kernel=target,
                    name="restore",
                    data=snap,
                    extra_bytes=8 * len(snap),
                )
                yield from kernel0.exchange.request(msg)
        self.store.discard_uncommitted()
        self._ckpt_next = {}

    def checkpoint_state(self, rank: int) -> Any:
        """Committed restart state for a rank (None without a checkpoint)."""
        if not self.store.has_checkpoint:
            return None
        state, _snap = self.store.get(rank)
        return state
