"""Configuration for the resilience subsystem.

Kept free of imports from :mod:`repro.dse` so that ``dse.config`` can
import it without a cycle: a :class:`ResilienceConfig` instance is the
value of ``ClusterConfig.resilience`` (``None`` disables the subsystem
entirely — the disabled path costs one ``is not None`` guard per hook
site and is bit-identical in simulated time).

All durations are simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for failure detection, leases, and recovery."""

    #: heartbeat period: a kernel sends an explicit RES_HEARTBEAT to the
    #: monitor only if nothing else reached the monitor within a period
    #: (piggybacking — busy kernels never send explicit heartbeats)
    heartbeat_period: float = 0.005
    #: silence beyond this marks a kernel SUSPECT
    heartbeat_timeout: float = 0.02
    #: extra silence beyond the timeout before SUSPECT hardens into DEAD;
    #: any message from a SUSPECT kernel within the grace clears suspicion
    #: (the supported partition-heal-within-grace story)
    suspect_grace: float = 0.01
    #: a dead holder's locks are revoked this long after its death declaration
    lock_lease: float = 0.005
    #: stable-storage bandwidth charged for checkpoint writes (bytes/second)
    checkpoint_bps: float = 40e6
    #: per-task retry cap for ``taskfarm`` work reassignment
    max_task_retries: int = 8
    #: base of the deterministic linear retry backoff (seconds * attempt)
    retry_backoff: float = 0.002
    #: how many full detection+rollback cycles the supervisor tolerates
    max_recovery_attempts: int = 4
    #: how long the supervisor waits for a crashed kernel to rejoin before
    #: giving up on the run (simulated seconds)
    rejoin_timeout: float = 10.0
    #: reconfigure pending barriers to the surviving membership (SPMD guests
    #: that checkpoint/rollback do not need this; farm-style guests do)
    reconfigure_barriers: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ConfigurationError(f"heartbeat_period must be > 0, got {self.heartbeat_period}")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_period "
                f"({self.heartbeat_timeout} <= {self.heartbeat_period})"
            )
        if self.suspect_grace < 0:
            raise ConfigurationError(f"suspect_grace must be >= 0, got {self.suspect_grace}")
        if self.lock_lease < 0:
            raise ConfigurationError(f"lock_lease must be >= 0, got {self.lock_lease}")
        if self.checkpoint_bps <= 0:
            raise ConfigurationError(f"checkpoint_bps must be > 0, got {self.checkpoint_bps}")
        if self.max_task_retries < 0:
            raise ConfigurationError(f"max_task_retries must be >= 0, got {self.max_task_retries}")
        if self.retry_backoff < 0:
            raise ConfigurationError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.max_recovery_attempts < 1:
            raise ConfigurationError(
                f"max_recovery_attempts must be >= 1, got {self.max_recovery_attempts}"
            )
        if self.rejoin_timeout <= 0:
            raise ConfigurationError(f"rejoin_timeout must be > 0, got {self.rejoin_timeout}")
