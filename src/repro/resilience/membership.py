"""Cluster membership view maintained by the failure detector.

Every kernel holds a :class:`Membership` instance; the monitor (kernel 0's
heartbeat watcher) drives the ALIVE → SUSPECT → DEAD transitions and
broadcasts death declarations, after which each kernel's local view is
updated by its RES_DEAD handler.  A kernel returns from DEAD only through
an explicit RES_JOIN with a higher incarnation number.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["ALIVE", "SUSPECT", "DEAD", "Membership"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class Membership:
    """Per-kernel view of which kernels are believed alive.

    ``last_heard`` is only maintained on the monitor kernel (it is fed by
    the piggyback hook on incoming exchange traffic); the state map is
    maintained everywhere.
    """

    def __init__(self, n_kernels: int):
        self.n_kernels = n_kernels
        self.state: Dict[int, str] = {k: ALIVE for k in range(n_kernels)}
        #: monitor-side: simulated time each kernel was last heard from
        self.last_heard: Dict[int, float] = {k: 0.0 for k in range(n_kernels)}
        #: highest incarnation number seen per kernel (0 = initial boot)
        self.incarnation: Dict[int, int] = {k: 0 for k in range(n_kernels)}
        #: monitor-side: time each current suspicion started (absent = none)
        self.suspect_since: Dict[int, float] = {}

    # -- queries -------------------------------------------------------
    def usable(self, kernel_id: int) -> bool:
        """May RPCs be aimed at this kernel?  (SUSPECT still counts.)"""
        return self.state.get(kernel_id, DEAD) != DEAD

    def is_alive(self, kernel_id: int) -> bool:
        return self.state.get(kernel_id, DEAD) == ALIVE

    def live_kernels(self) -> List[int]:
        """Kernel ids not currently declared dead, ascending."""
        return [k for k in range(self.n_kernels) if self.state[k] != DEAD]

    def dead_kernels(self) -> List[int]:
        return [k for k in range(self.n_kernels) if self.state[k] == DEAD]

    # -- transitions (driven by the monitor / RES_* handlers) ----------
    def heard_from(self, kernel_id: int, now: float) -> bool:
        """Record traffic from ``kernel_id``; True if a suspicion cleared."""
        self.last_heard[kernel_id] = now
        if self.state.get(kernel_id) == SUSPECT:
            self.state[kernel_id] = ALIVE
            self.suspect_since.pop(kernel_id, None)
            return True
        return False

    def suspect(self, kernel_id: int, now: float) -> None:
        if self.state.get(kernel_id) == ALIVE:
            self.state[kernel_id] = SUSPECT
            self.suspect_since[kernel_id] = now

    def declare_dead(self, kernel_id: int, incarnation: int = None) -> bool:
        """Apply a death declaration; False if duplicate or stale.

        ``incarnation`` tags *which* incarnation died: a declaration older
        than a rejoin this view already processed (death and join broadcasts
        race on the network) must not clobber the newer membership."""
        if self.state.get(kernel_id) == DEAD:
            return False
        if incarnation is not None and incarnation < self.incarnation.get(kernel_id, 0):
            return False  # stale: a newer incarnation already rejoined
        self.state[kernel_id] = DEAD
        self.suspect_since.pop(kernel_id, None)
        return True

    def rejoin(self, kernel_id: int, incarnation: int, now: float) -> bool:
        """Process an RES_JOIN announcement; False if stale.

        A DEAD kernel only returns with a *strictly higher* incarnation — a
        duplicate join of an incarnation already declared dead must not
        resurrect it."""
        known = self.incarnation.get(kernel_id, 0)
        if incarnation < known:
            return False
        if incarnation == known and self.state.get(kernel_id) == DEAD:
            return False
        self.incarnation[kernel_id] = incarnation
        self.state[kernel_id] = ALIVE
        self.suspect_since.pop(kernel_id, None)
        self.last_heard[kernel_id] = now
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"k{k}:{s}" for k, s in sorted(self.state.items()))
        return f"<Membership {parts}>"
