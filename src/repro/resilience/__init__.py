"""Fault injection, failure detection, and checkpoint/restart recovery.

The paper's cluster is a lab machine; real clusters lose nodes.  This
subsystem makes the simulated DSE cluster survive that, end to end:

* **Fault campaigns** (:mod:`repro.resilience.campaign`) — deterministic,
  seed-driven schedules of kernel crashes and network partitions, injected
  for real (the victim's kernel process tree is killed and its NIC goes
  down; nothing is faked at the application layer).
* **Failure detection** (:mod:`repro.resilience.manager`) — heartbeats
  piggybacked on existing DSE traffic with an explicit fallback, a
  monitor on kernel 0 driving an ALIVE → SUSPECT → DEAD membership view
  that is broadcast to every kernel.
* **Recovery** — coordinated per-sweep checkpoints of guest state plus
  owned global-memory slices (:mod:`repro.resilience.checkpoint`),
  two-phase rollback, lease-based lock revocation, barrier reconfiguration
  to the surviving membership, and task-farm reassignment with
  deterministic retry/backoff.

Everything hangs off ``ClusterConfig(resilience=ResilienceConfig(...))``;
with the default ``resilience=None`` every hook is a cached ``is not
None`` test and runs are bit-identical in simulated time to builds without
the subsystem.  See ``docs/resilience.md`` for the design and its
guarantees (and non-guarantees: split-brain, monitor death).
"""

from .campaign import CrashPlan, FaultCampaign, PartitionPlan, random_crashes
from .checkpoint import CheckpointStore
from .config import ResilienceConfig
from .manager import ResilienceManager
from .membership import ALIVE, DEAD, SUSPECT, Membership
from .runner import ResilientRunResult, run_resilient, run_resilient_master

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "CheckpointStore",
    "CrashPlan",
    "FaultCampaign",
    "Membership",
    "PartitionPlan",
    "ResilienceConfig",
    "ResilienceManager",
    "ResilientRunResult",
    "random_crashes",
    "run_resilient",
    "run_resilient_master",
]
