"""``dse-experiments resilience``: fault-injection campaigns on paper apps.

Runs the two recovery paths end to end and reports the resilience cost
model the subsystem exists to measure:

* **spmd** — block Gauss-Seidel under ``run_resilient``: a victim kernel is
  crashed mid-run and restarted; recovery is failure detection + rollback
  to the last per-sweep checkpoint.  Reports detection latency, recovery
  cycles, and the slowdown versus (a) the same resilient config without
  faults and (b) the plain ``resilience=None`` run.
* **farm** — Knight's Tour under ``run_resilient_master`` with a
  *permanent* crash: recovery is task reassignment with retry/backoff.
  Reports retries and wasted simulated compute, and verifies the exact
  tour count.

Examples::

    dse-experiments resilience
    dse-experiments resilience --mode spmd --processors 8 --crash-at 0.05
    dse-experiments resilience --mode farm --seed 11 --crashes 2
"""

from __future__ import annotations

import argparse
from typing import List

__all__ = ["resilience_main"]


def _spmd_report(args) -> int:
    import numpy as np

    from ..apps.gauss_seidel import DEFAULT_SWEEPS
    from ..dse.config import ClusterConfig
    from ..dse.runtime import run_parallel
    from ..hardware.platforms import get_platform
    from .campaign import CrashPlan, FaultCampaign
    from .config import ResilienceConfig
    from .runner import run_resilient
    from .workloads import resilient_gauss_seidel

    n, sweeps, seed = args.n, DEFAULT_SWEEPS, 7
    platform = get_platform(args.platform)

    def config(resilience):
        return ClusterConfig(
            platform=platform, n_processors=args.processors, resilience=resilience
        )

    base = run_parallel(
        config(None),
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=(n, sweeps, seed),
    )
    clean = run_resilient(
        config(ResilienceConfig()), resilient_gauss_seidel, args=(n, sweeps, seed)
    )
    campaign = FaultCampaign(
        crashes=[
            CrashPlan(
                kernel_id=args.victim,
                at=args.crash_at,
                restart_after=args.restart_after,
            )
        ]
    )
    faulty = run_resilient(
        config(ResilienceConfig()),
        resilient_gauss_seidel,
        args=(n, sweeps, seed),
        campaign=campaign,
    )

    # The block solver is Jacobi-coupled across blocks, so the reference is
    # the *failure-free parallel* solution (recovery must be exact, not just
    # convergent): bit-identical or the rollback leaked state.
    x_ref = base.returns[0]["x"]
    x = faulty.returns[0]["x"]
    exact = bool(np.array_equal(x, x_ref))
    detect = faulty.cluster.resilience.stats.tally("detect_latency")
    print(f"spmd: gauss-seidel n={n} p={args.processors} sweeps={sweeps}")
    print(f"  plain (resilience off)      elapsed {base.elapsed * 1e3:9.3f} ms")
    print(
        f"  resilient, no faults        elapsed {clean.elapsed * 1e3:9.3f} ms"
        f"  (x{clean.elapsed / base.elapsed:.3f} of plain)"
    )
    print(
        f"  crash k{args.victim}@{args.crash_at * 1e3:.1f}ms"
        f" restart+{args.restart_after * 1e3:.1f}ms"
        f"  elapsed {faulty.elapsed * 1e3:9.3f} ms"
        f"  (x{faulty.elapsed / clean.elapsed:.3f} of fault-free)"
    )
    print(
        f"  recoveries={faulty.recoveries}"
        f" deaths={[(round(t * 1e3, 3), k) for t, k in faulty.failures]}"
        f" detect_latency={detect.mean * 1e3:.3f} ms"
    )
    snap = faulty.stats
    print(
        "  res counters: "
        + " ".join(
            f"{key.split('.')[-1]}={int(snap[key])}"
            for key in sorted(snap)
            if key.startswith("res.") and snap[key]
        )
    )
    print(
        "  solution bit-identical to failure-free run: "
        f"{'YES' if exact else 'NO'}"
    )
    return 0 if exact and faulty.recoveries > 0 else 1


def _farm_report(args) -> int:
    from ..apps.knights_tour import count_tours_seq
    from ..dse.config import ClusterConfig
    from ..hardware.platforms import get_platform
    from .campaign import FaultCampaign, random_crashes
    from .config import ResilienceConfig
    from .runner import run_resilient_master
    from .workloads import resilient_tour_master

    config = ClusterConfig(
        platform=get_platform(args.platform),
        n_processors=args.processors,
        resilience=ResilienceConfig(),
    )
    crashes = random_crashes(
        seed=args.seed,
        n_crashes=args.crashes,
        n_kernels=args.processors,
        t_lo=args.crash_at / 2,
        t_hi=args.crash_at * 2,
        restart_after=None,  # permanent: the farm must cope by reassignment
    )
    result = run_resilient_master(
        config,
        resilient_tour_master,
        args=(args.jobs,),
        campaign=FaultCampaign(crashes=crashes),
    )
    report = result.returns[0]
    expected, _ = count_tours_seq()
    exact = report["tours"] == expected == report["expected_tours"]
    print(f"farm: knights-tour jobs={report['n_jobs']} p={args.processors}")
    print(
        "  permanent crashes: "
        + ", ".join(f"k{p.kernel_id}@{p.at * 1e3:.1f}ms" for p in crashes)
        + f"  (seed {args.seed})"
    )
    print(
        f"  elapsed {result.elapsed * 1e3:9.3f} ms"
        f"  retries={report['retries']}"
        f"  wasted_compute={report['wasted_seconds'] * 1e3:.3f} ms"
    )
    print(
        f"  tours counted {report['tours']}"
        f" (sequential reference {expected}):"
        f" {'YES' if exact else 'NO'}"
    )
    return 0 if exact else 1


def resilience_main(argv: List[str]) -> int:
    """Entry point for the ``resilience`` subcommand."""
    from ..hardware.platforms import platform_names

    parser = argparse.ArgumentParser(
        prog="dse-experiments resilience",
        description="Crash paper workloads mid-run and measure the recovery.",
    )
    parser.add_argument(
        "--mode", choices=["spmd", "farm", "both"], default="both",
        help="checkpoint/rollback (spmd), task reassignment (farm), or both",
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", choices=platform_names(), default="sunos")
    parser.add_argument("--n", type=int, default=96, help="Gauss-Seidel dimension")
    parser.add_argument("--jobs", type=int, default=24, help="farm job count")
    parser.add_argument(
        "--victim", type=int, default=1, help="spmd crash victim kernel (not 0)"
    )
    parser.add_argument(
        "--crash-at", type=float, default=0.05,
        help="crash time in simulated seconds (farm draws around this)",
    )
    parser.add_argument(
        "--restart-after", type=float, default=0.02,
        help="spmd victim reboot delay in simulated seconds",
    )
    parser.add_argument("--seed", type=int, default=3, help="farm campaign seed")
    parser.add_argument(
        "--crashes", type=int, default=1, help="number of farm crashes"
    )
    args = parser.parse_args(argv)

    rc = 0
    if args.mode in ("spmd", "both"):
        rc |= _spmd_report(args)
    if args.mode in ("farm", "both"):
        rc |= _farm_report(args)
    return rc
