"""Coordinated checkpoint store (simulated stable storage).

Checkpoints are taken at barriers — natural consistent cuts in the DSE's
barrier-synchronised SPMD programs.  :meth:`ParallelAPI.checkpoint` runs a
two-phase protocol per version ``V``:

1. flush write-combining buffers, then barrier ``res:ckpt:V:enter`` —
   every rank has reached the cut and global memory is quiescent;
2. each rank snapshots its *own* home slice of global memory plus an
   application-supplied state dict, charges a stable-storage write, and
   puts both here;
3. barrier ``res:ckpt:V:commit`` — once every rank has put, the version
   is *committed* and becomes the rollback target.

The store itself lives outside the failure domain (stable storage):
kernel crashes never lose committed checkpoints.  Uncommitted puts for a
version are discarded when a rollback intervenes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Versioned per-rank snapshots; a version commits when all ranks put."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        #: (version, rank) -> (state dict, gmem slice copy)
        self._puts: Dict[Tuple[int, int], Tuple[Any, np.ndarray]] = {}
        #: highest fully committed version (-1 = none: restart from scratch)
        self.committed_version = -1
        #: total simulated bytes written to stable storage
        self.bytes_written = 0

    def put(self, rank: int, version: int, state: Any, gmem_slice: np.ndarray) -> None:
        """Record rank's snapshot for ``version``; commit if it is the last."""
        data = np.array(gmem_slice, copy=True)
        self._puts[(version, rank)] = (state, data)
        self.bytes_written += data.nbytes
        if all((version, r) in self._puts for r in range(self.n_ranks)):
            self.committed_version = max(self.committed_version, version)
            # Older versions can never be rolled back to again.
            stale = [k for k in self._puts if k[0] < version]
            for key in stale:
                del self._puts[key]

    def get(self, rank: int, version: Optional[int] = None) -> Tuple[Any, np.ndarray]:
        """(state, gmem slice) of rank at ``version`` (default: committed)."""
        v = self.committed_version if version is None else version
        if v < 0:
            raise KeyError("no committed checkpoint")
        return self._puts[(v, rank)]

    def discard_uncommitted(self) -> int:
        """Drop puts newer than the committed version; returns count dropped."""
        stale = [k for k in self._puts if k[0] > self.committed_version]
        for key in stale:
            del self._puts[key]
        return len(stale)

    @property
    def has_checkpoint(self) -> bool:
        return self.committed_version >= 0
