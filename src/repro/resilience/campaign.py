"""Fault campaigns: scripted, deterministic crash/partition schedules.

A :class:`FaultCampaign` is a declarative plan of faults to inject into a
run — kernel crashes (:class:`CrashPlan`) and network partitions
(:class:`PartitionPlan`) at fixed simulated times.  ``arm(cluster)`` turns
each plan into a simulation process, so a campaign attached to the same
config and seed replays identically, event for event.

Random campaigns (:func:`random_crashes`) draw victims and times from a
dedicated :class:`repro.sim.rng.RandomStreams` substream of a caller-given
seed — the cluster's own streams are never touched, so enabling a campaign
does not perturb application or network randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..errors import ResilienceError
from ..sim.core import Event
from ..sim.rng import RandomStreams

__all__ = ["CrashPlan", "PartitionPlan", "FaultCampaign", "random_crashes"]


@dataclass(frozen=True)
class CrashPlan:
    """Crash one kernel at a fixed simulated time.

    ``restart_after`` schedules a reboot that many seconds after the crash
    (``None`` = permanent death — fine for task farms, unrecoverable for
    SPMD; see docs/resilience.md).  ``halt_machine`` powers the victim's
    machine off too (only meaningful when it hosts no other kernel)."""

    kernel_id: int
    at: float
    restart_after: Optional[float] = 0.05
    halt_machine: bool = False

    def __post_init__(self) -> None:
        if self.kernel_id == 0:
            raise ResilienceError("kernel 0 is the monitor/coordinator; not crashable")
        if self.at < 0:
            raise ResilienceError(f"crash time must be >= 0, got {self.at}")
        if self.restart_after is not None and self.restart_after < 0:
            raise ResilienceError(
                f"restart_after must be >= 0 or None, got {self.restart_after}"
            )


@dataclass(frozen=True)
class PartitionPlan:
    """Split the fabric into station groups at ``at``; heal ``heal_after``
    seconds later (``None`` = never heal)."""

    groups: Tuple[Tuple[int, ...], ...]
    at: float
    heal_after: Optional[float] = 0.02

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ResilienceError(f"partition time must be >= 0, got {self.at}")
        if self.heal_after is not None and self.heal_after <= 0:
            raise ResilienceError(
                f"heal_after must be > 0 or None, got {self.heal_after}"
            )


class FaultCampaign:
    """A set of fault plans, armed onto one cluster."""

    def __init__(
        self,
        crashes: Sequence[CrashPlan] = (),
        partitions: Sequence[PartitionPlan] = (),
    ):
        self.crashes = tuple(crashes)
        self.partitions = tuple(partitions)

    def arm(self, cluster) -> None:
        """Schedule every plan as a simulation process on ``cluster``."""
        res = getattr(cluster, "resilience", None)
        if res is None:
            raise ResilienceError(
                "fault campaigns need ClusterConfig(resilience=ResilienceConfig(...))"
            )
        for plan in self.crashes:
            if not (0 < plan.kernel_id < cluster.size):
                raise ResilienceError(f"crash victim {plan.kernel_id} out of range")
            cluster.sim.process(
                self._crash_driver(res, plan), name=f"campaign-crash:k{plan.kernel_id}"
            )
        for plan in self.partitions:
            cluster.sim.process(
                self._partition_driver(cluster, res, plan), name="campaign-partition"
            )

    @staticmethod
    def _crash_driver(res, plan: CrashPlan) -> Generator[Event, Any, None]:
        if plan.at > 0:
            yield res.sim.timeout(plan.at)
        res.crash_kernel(
            plan.kernel_id,
            restart_after=plan.restart_after,
            halt_machine=plan.halt_machine,
        )

    @staticmethod
    def _partition_driver(cluster, res, plan: PartitionPlan) -> Generator[Event, Any, None]:
        fabric = cluster.network.fabric
        if plan.at > 0:
            yield cluster.sim.timeout(plan.at)
        fabric.partition(plan.groups)
        res.stats.counter("partitions").increment()
        if plan.heal_after is None:
            return
        yield cluster.sim.timeout(plan.heal_after)
        fabric.heal()
        res.stats.counter("heals").increment()


def random_crashes(
    seed: int,
    n_crashes: int,
    n_kernels: int,
    t_lo: float,
    t_hi: float,
    restart_after: Optional[float] = 0.05,
) -> List[CrashPlan]:
    """Deterministic random crash schedule (victims in 1..n_kernels-1).

    Uses its own ``RandomStreams(seed)`` substream — reusing the cluster
    seed here still cannot perturb the cluster's own random streams."""
    if n_kernels < 2:
        raise ResilienceError("need at least 2 kernels to have a crashable victim")
    if not (0 <= t_lo < t_hi):
        raise ResilienceError(f"need 0 <= t_lo < t_hi, got [{t_lo}, {t_hi})")
    rng = RandomStreams(seed).stream("resilience:campaign")
    plans = []
    for _ in range(n_crashes):
        victim = 1 + rng.randrange(n_kernels - 1)
        at = t_lo + rng.random() * (t_hi - t_lo)
        plans.append(CrashPlan(kernel_id=victim, at=at, restart_after=restart_after))
    return sorted(plans, key=lambda p: p.at)
