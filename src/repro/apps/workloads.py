"""Synthetic workload generation and scheduling-policy workers.

The paper's Knight's Tour experiment is really a *scheduling* study — job
granularity vs communication cost.  This module generalises it: generate
job-duration distributions (uniform, bimodal, heavy-tailed) and run them
under either scheduling policy the applications use:

* **static** — job *j* to rank ``j % size`` up front (Knight's Tour style);
* **dynamic** — shared lock-protected queue, pull when idle (Othello style).

The scheduling ablation bench uses these to show *when* each policy wins:
dynamic absorbs skew and heterogeneity, static avoids the queue's
round-trips when jobs are uniform and plentiful.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import numpy as np

from ..dse.api import ParallelAPI
from ..errors import ApplicationError
from ..hardware.cpu import Work
from ..sim.core import Event
from .jobqueue import init_job_queue, work_job_queue

__all__ = ["job_sizes", "static_schedule_worker", "dynamic_schedule_worker", "DISTRIBUTIONS"]

DISTRIBUTIONS = ("uniform", "bimodal", "heavy_tail")


def job_sizes(
    n_jobs: int,
    distribution: str = "uniform",
    mean_seconds: float = 0.01,
    seed: int = 42,
) -> List[float]:
    """Deterministic per-job compute durations with the requested shape."""
    if n_jobs < 1:
        raise ApplicationError(f"n_jobs must be >= 1, got {n_jobs}")
    if mean_seconds <= 0:
        raise ApplicationError(f"mean_seconds must be positive, got {mean_seconds}")
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        sizes = rng.uniform(0.5, 1.5, size=n_jobs)
    elif distribution == "bimodal":
        # 80% short jobs, 20% 8x-long jobs (same mean after scaling).
        kinds = rng.random(n_jobs) < 0.8
        sizes = np.where(kinds, 0.5, 4.0)
    elif distribution == "heavy_tail":
        # Pareto(alpha=1.5): finite mean, wild maxima.
        sizes = rng.pareto(1.5, size=n_jobs) + 0.1
    else:
        raise ApplicationError(
            f"unknown distribution {distribution!r}; known: {DISTRIBUTIONS}"
        )
    sizes = sizes / sizes.mean() * mean_seconds
    return [float(s) for s in sizes]


def static_schedule_worker(
    api: ParallelAPI, sizes: List[float]
) -> Generator[Event, Any, Dict[str, Any]]:
    """Static cyclic assignment with one result write per job."""
    results_base = 0
    if api.rank == 0:
        yield from api.gm_write(results_base, np.zeros(max(len(sizes), 1)))
    yield from api.barrier("ws:init")
    t0 = api.now
    mine = 0
    for j in range(api.rank, len(sizes), api.size):
        yield from api.compute_seconds(sizes[j])
        yield from api.gm_write_scalar(results_base + j, 1.0)
        mine += 1
    yield from api.barrier("ws:done")
    t1 = api.now
    out: Dict[str, Any] = {"t0": t0, "t1": t1, "jobs_done": mine}
    if api.rank == 0:
        done = yield from api.gm_read(results_base, len(sizes))
        out["all_done"] = bool((done == 1.0).all())
    return out


def dynamic_schedule_worker(
    api: ParallelAPI, sizes: List[float]
) -> Generator[Event, Any, Dict[str, Any]]:
    """Shared-queue pull scheduling (lock + counter in global memory)."""
    base = 0
    if api.rank == 0:
        yield from init_job_queue(api, base, len(sizes))
    yield from api.barrier("wd:init")
    t0 = api.now
    # work_job_queue charges Work objects; wrap plain seconds through a
    # 1-MIPS pseudo-work so the charge equals the duration on any platform.
    mips = api.kernel.machine.platform.cpu.mips * 1e6
    jobs_work = [Work(iops=s * mips) for s in sizes]
    mine = yield from work_job_queue(api, base, jobs_work, lambda j: 1.0)
    yield from api.barrier("wd:done")
    t1 = api.now
    out: Dict[str, Any] = {"t0": t0, "t1": t1, "jobs_done": len(mine)}
    if api.rank == 0:
        done = yield from api.gm_read(base + 1, len(sizes))
        out["all_done"] = bool((done == 1.0).all())
    return out
