"""Parallel Knight's Tour search (paper §4.4).

"Knight's Tour problem is also a search problem whose task is to find the
route which a knight passes all [squares] on the surface of an N×N chess
board only once."  The paper varies the **computation granularity** — the
number of jobs the search is divided into — and observes that a middling
job count is most efficient, the largest count is least efficient
(communication frequency + Ethernet collisions), and the smallest count
cannot use the processors at all.

We reproduce exactly that: the search tree is split at a prefix depth into
``n_jobs`` (or slightly more) independent subtree jobs; each job's *real*
node count and tour count come from actually running the backtracking
search once (cached); processors then pull jobs from the shared queue, and
the simulated cost per job is its measured node count times the per-node
work.

The sequential reference counts all complete tours from a fixed start
square; the parallel result must match it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..dse.api import ParallelAPI
from ..errors import ApplicationError
from ..hardware.cpu import Work
from ..sim.core import Event

__all__ = [
    "knight_moves",
    "count_tours_seq",
    "TourJob",
    "KnightsTourWorkload",
    "knights_tour_workload",
    "knights_tour_worker",
    "NODE_WORK",
    "DEFAULT_BOARD",
    "DEFAULT_START",
]

#: the paper's board (reconstruction): 5×5, start in the corner
DEFAULT_BOARD = 5
DEFAULT_START = 0

#: charged cost of one search node (move iteration + visited bookkeeping);
#: the board is cache-resident, so pure integer work — a few microseconds
#: per node on the Table-1 CPUs
NODE_WORK = Work(iops=450.0)

#: words per job-descriptor slot in the central work table
JOB_STRIDE = 28

_KNIGHT_DELTAS = ((1, 2), (2, 1), (2, -1), (1, -2), (-1, -2), (-2, -1), (-2, 1), (-1, 2))


@lru_cache(maxsize=None)
def knight_moves(n: int) -> Tuple[Tuple[int, ...], ...]:
    """Per-square tuples of knight-move destinations on an n×n board."""
    if n < 3:
        raise ApplicationError(f"board must be at least 3x3, got {n}")
    moves = []
    for sq in range(n * n):
        r, c = divmod(sq, n)
        dests = []
        for dr, dc in _KNIGHT_DELTAS:
            rr, cc = r + dr, c + dc
            if 0 <= rr < n and 0 <= cc < n:
                dests.append(rr * n + cc)
        moves.append(tuple(dests))
    return tuple(moves)


class _Search:
    """Backtracking tour search with node counting."""

    __slots__ = ("n", "moves", "visited", "nodes", "tours", "total")

    def __init__(self, n: int):
        self.n = n
        self.moves = knight_moves(n)
        self.total = n * n
        self.visited = [False] * self.total
        self.nodes = 0
        self.tours = 0

    def run_from(self, path: Tuple[int, ...]) -> None:
        """Search all completions of ``path`` (marks/unmarks internally)."""
        for sq in path:
            if self.visited[sq]:
                raise ApplicationError(f"prefix revisits square {sq}")
            self.visited[sq] = True
        self._dfs(path[-1], len(path))
        for sq in path:
            self.visited[sq] = False

    def _dfs(self, square: int, placed: int) -> None:
        self.nodes += 1
        if placed == self.total:
            self.tours += 1
            return
        visited = self.visited
        for nxt in self.moves[square]:
            if not visited[nxt]:
                visited[nxt] = True
                self._dfs(nxt, placed + 1)
                visited[nxt] = False


def count_tours_seq(n: int = DEFAULT_BOARD, start: int = DEFAULT_START) -> Tuple[int, int]:
    """Sequential reference: (number of complete tours, nodes visited)."""
    search = _Search(n)
    search.run_from((start,))
    return search.tours, search.nodes


@dataclass(frozen=True)
class TourJob:
    """One subtree job: a path prefix with its measured cost and yield."""

    prefix: Tuple[int, ...]
    nodes: int
    tours: int


@dataclass(frozen=True)
class KnightsTourWorkload:
    """A pre-expanded job pool: the tour prefixes handed out to workers."""

    board: int
    start: int
    n_jobs_requested: int
    jobs: Tuple[TourJob, ...]
    total_tours: int
    total_nodes: int


@lru_cache(maxsize=None)
def knights_tour_workload(
    n_jobs: int, board: int = DEFAULT_BOARD, start: int = DEFAULT_START
) -> KnightsTourWorkload:
    """Split the search into >= ``n_jobs`` prefix jobs and measure each.

    Prefixes are grown breadth-first from the start square until the
    frontier is at least ``n_jobs`` wide (dead prefixes are kept: a real
    work-splitting implementation cannot tell them apart in advance, and
    they are exactly the near-empty jobs that make high job counts pay pure
    communication cost).
    """
    if n_jobs < 1:
        raise ApplicationError(f"n_jobs must be >= 1, got {n_jobs}")
    moves = knight_moves(board)
    frontier: List[Tuple[int, ...]] = [(start,)]
    while len(frontier) < n_jobs and any(len(p) < board * board for p in frontier):
        nxt: List[Tuple[int, ...]] = []
        for path in frontier:
            last = path[-1]
            children = [m for m in moves[last] if m not in path]
            if not children:
                nxt.append(path)  # dead or complete prefix stays a job
            else:
                nxt.extend(path + (m,) for m in children)
        if len(nxt) == len(frontier):
            break
        frontier = nxt

    search = _Search(board)
    jobs: List[TourJob] = []
    for path in frontier:
        search.nodes = 0
        search.tours = 0
        search.run_from(path)
        jobs.append(TourJob(prefix=path, nodes=search.nodes, tours=search.tours))
    return KnightsTourWorkload(
        board=board,
        start=start,
        n_jobs_requested=n_jobs,
        jobs=tuple(jobs),
        total_tours=sum(j.tours for j in jobs),
        total_nodes=sum(j.nodes for j in jobs),
    )


def knights_tour_worker(
    api: ParallelAPI,
    n_jobs: int,
    board: int = DEFAULT_BOARD,
    start: int = DEFAULT_START,
) -> Generator[Event, Any, Dict[str, Any]]:
    """DSE-parallel Knight's Tour (run under ``run_parallel``).

    The paper varies "the number of divisions in the problem": the search
    is divided *statically* — job *j* is processed by rank ``j % size``.
    The master keeps a central work table in its global-memory slice; each
    processor fetches every job descriptor it owns (one read), searches the
    subtree, and writes the tour count back (one write).  Many divisions
    therefore mean proportionally many messages converging on the master's
    node — the communication-frequency/collision effect of Figures 19-21 —
    while too few divisions cannot occupy the processors.
    """
    workload = knights_tour_workload(n_jobs, board, start)
    njobs = len(workload.jobs)
    table = 0  # central work table, homed at kernel 0
    results = table + njobs * JOB_STRIDE

    if api.rank == 0:
        # Publish the work table: [prefix length, squares...] per slot.
        slots = np.zeros(njobs * JOB_STRIDE)
        for j, job in enumerate(workload.jobs):
            if len(job.prefix) + 1 > JOB_STRIDE:
                raise ApplicationError(
                    f"prefix of {len(job.prefix)} squares overflows job slot"
                )
            slots[j * JOB_STRIDE] = len(job.prefix)
            for i, sq in enumerate(job.prefix):
                slots[j * JOB_STRIDE + 1 + i] = float(sq)
        yield from api.gm_write(table, slots)
        yield from api.gm_write(results, np.zeros(njobs))
    yield from api.barrier("kt:init")
    t0 = api.now

    mine: List[int] = []
    for j in range(api.rank, njobs, api.size):
        desc = yield from api.gm_read(table + j * JOB_STRIDE, JOB_STRIDE)
        plen = int(desc[0])
        prefix = tuple(int(v) for v in desc[1 : 1 + plen])
        job = workload.jobs[j]
        if prefix != job.prefix:
            raise ApplicationError(f"work table corrupted for job {j}")
        yield from api.compute(NODE_WORK.scaled(job.nodes))
        yield from api.gm_write_scalar(results + j, float(job.tours))
        mine.append(j)
    yield from api.barrier("kt:done")
    t1 = api.now

    result: Dict[str, Any] = {"jobs_done": len(mine), "t0": t0, "t1": t1}
    if api.rank == 0:
        tours = yield from api.gm_read(results, njobs)
        result["tours"] = int(tours.sum())
        result["expected_tours"] = workload.total_tours
        result["n_jobs_actual"] = njobs
    return result
