"""Parallel Othello game-tree search (paper §4.3).

"The Othello game is a typical search problem application common in
artificial intelligence research."  We implement the real game (8×8 board,
full flipping rules) and a minimax search with alpha-beta pruning, then
parallelise it the way the paper's speed-up curves imply:

* the first **two** plies of the tree are expanded into independent *jobs*
  (one per ``(move, counter-move)`` pair, plus degenerate cases);
* each job is searched to the remaining depth with a **full window**, so a
  job's cost and value are independent of which processor runs it and in
  which order (deterministic, schedule-independent — and exactly what a
  simple 1999 work-pool implementation did, at the price of losing
  cross-job pruning);
* processors pull jobs from a shared queue in global memory; the master
  recombines values minimax-style.

At shallow depths jobs are tiny and queue traffic dominates (no speed-up —
paper Figures 16–18, depths ≤ 4); at deeper depths each job carries real
search work and the pool scales.

The per-node simulation cost is charged from the *measured* node count of
the real search.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..dse.api import ParallelAPI
from ..errors import ApplicationError
from ..hardware.cpu import Work
from ..sim.core import Event
from .jobqueue import collect_results, init_job_queue, job_queue_layout_words, work_job_queue

__all__ = [
    "initial_board",
    "midgame_board",
    "legal_moves",
    "apply_move",
    "evaluate",
    "alphabeta",
    "best_move_seq",
    "OthelloWorkload",
    "othello_workload",
    "othello_worker",
    "NODE_WORK",
    "BLACK",
    "WHITE",
    "EMPTY",
]

BLACK, WHITE, EMPTY = 1, -1, 0
INF = 10**9

#: charged cost of visiting one search node: legal-move generation over 8
#: rays per candidate square, flip application, and the static evaluation
#: (material + mobility + corners — mobility alone regenerates both sides'
#: move lists).  The board is cache-resident, so the cost is pure integer
#: work; ~10-45 us/node on the Table-1 CPUs, the throughput of a
#: straightforward 1999 C implementation.
NODE_WORK = Work(iops=2600.0)

_CORNERS = (0, 7, 56, 63)


def _build_rays() -> List[List[Tuple[int, ...]]]:
    """For each square, the list of ray square-index tuples (8 directions)."""
    rays: List[List[Tuple[int, ...]]] = []
    for sq in range(64):
        r, c = divmod(sq, 8)
        sq_rays = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                ray = []
                rr, cc = r + dr, c + dc
                while 0 <= rr < 8 and 0 <= cc < 8:
                    ray.append(rr * 8 + cc)
                    rr += dr
                    cc += dc
                if len(ray) >= 2:  # need at least opponent+own to flip
                    sq_rays.append(tuple(ray))
        rays.append(sq_rays)
    return rays


_RAYS = _build_rays()


def initial_board() -> Tuple[int, ...]:
    """The standard Othello starting position."""
    board = [EMPTY] * 64
    board[27], board[36] = WHITE, WHITE
    board[28], board[35] = BLACK, BLACK
    return tuple(board)


def midgame_board() -> Tuple[int, ...]:
    """A fixed, reproducible midgame position (deterministic self-play).

    Experiments search from here so every depth has a bushy tree.
    """
    board = initial_board()
    player = BLACK
    # 8 plies of greedy self-play (most flips first, lowest index tiebreak).
    for _ in range(8):
        moves = legal_moves(board, player)
        if not moves:
            player = -player
            continue
        best = max(moves, key=lambda m: (len(_flips(board, m, player)), -m))
        board = apply_move(board, best, player)
        player = -player
    return board


def _flips(board: Tuple[int, ...], square: int, player: int) -> List[int]:
    """Discs flipped by ``player`` moving at ``square`` (empty = illegal)."""
    if board[square] != EMPTY:
        return []
    opponent = -player
    flips: List[int] = []
    for ray in _RAYS[square]:
        if board[ray[0]] != opponent:
            continue
        run = [ray[0]]
        for pos in ray[1:]:
            v = board[pos]
            if v == opponent:
                run.append(pos)
            elif v == player:
                flips.extend(run)
                break
            else:
                break
    return flips


def legal_moves(board: Tuple[int, ...], player: int) -> List[int]:
    """All legal squares for ``player`` (ascending order: deterministic)."""
    return [sq for sq in range(64) if board[sq] == EMPTY and _flips(board, sq, player)]


def apply_move(board: Tuple[int, ...], square: int, player: int) -> Tuple[int, ...]:
    flips = _flips(board, square, player)
    if not flips:
        raise ApplicationError(f"illegal move {square} for player {player}")
    new = list(board)
    new[square] = player
    for f in flips:
        new[f] = player
    return tuple(new)


def evaluate(board: Tuple[int, ...], player: int) -> int:
    """Static evaluation from ``player``'s perspective: material +
    mobility + corner control (a standard lightweight 1999-era heuristic)."""
    material = sum(board) * player
    mobility = len(legal_moves(board, player)) - len(legal_moves(board, -player))
    corners = sum(player * board[c] for c in _CORNERS)
    return material + 4 * mobility + 25 * corners


class _Counter:
    __slots__ = ("nodes",)

    def __init__(self) -> None:
        self.nodes = 0


def _alphabeta(
    board: Tuple[int, ...],
    player: int,
    depth: int,
    alpha: int,
    beta: int,
    counter: _Counter,
    passed: bool = False,
) -> int:
    counter.nodes += 1
    if depth == 0:
        return evaluate(board, player)
    moves = legal_moves(board, player)
    if not moves:
        if passed:  # game over: exact disc difference dominates
            return 1000 * sum(board) * player
        return -_alphabeta(board, -player, depth - 1, -beta, -alpha, counter, True)
    value = -INF
    for move in moves:
        child = apply_move(board, move, player)
        score = -_alphabeta(child, -player, depth - 1, -beta, -alpha, counter)
        if score > value:
            value = score
        if value > alpha:
            alpha = value
        if alpha >= beta:
            break
    return value


def alphabeta(
    board: Tuple[int, ...], player: int, depth: int
) -> Tuple[int, int]:
    """Full-window alpha-beta search; returns (value, nodes visited)."""
    if depth < 0:
        raise ApplicationError(f"depth must be >= 0, got {depth}")
    counter = _Counter()
    value = _alphabeta(board, player, depth, -INF, INF, counter)
    return value, counter.nodes


def best_move_seq(
    board: Tuple[int, ...], player: int, depth: int
) -> Tuple[Optional[int], int, int]:
    """Sequential root search with per-move full windows (the policy the
    parallel version also uses, so values match exactly).

    Returns (best move, value, total nodes).
    """
    moves = legal_moves(board, player)
    if not moves:
        return None, evaluate(board, player), 1
    best_move, best_value, total_nodes = None, -INF, 0
    for move in moves:
        child = apply_move(board, move, player)
        value, nodes = alphabeta(child, -player, depth - 1)
        value = -value
        total_nodes += nodes + 1
        if value > best_value:
            best_value, best_move = value, move
    return best_move, best_value, total_nodes


@dataclass(frozen=True)
class _Job:
    """One unit of parallel work: a 2-ply prefix of the root tree."""

    move1: int
    move2: int  # -1 when the job covers move1's whole subtree (depth<2 / pass)
    value: int  # negamax value *for the player to move at the root*
    nodes: int


@dataclass(frozen=True)
class OthelloWorkload:
    """Everything the parallel run needs, computed once from the real game."""

    depth: int
    player: int
    jobs: Tuple[_Job, ...]
    root_moves: Tuple[int, ...]
    best_value: int
    best_move: Optional[int]
    total_nodes: int


@lru_cache(maxsize=None)
def othello_workload(depth: int, use_midgame: bool = True) -> OthelloWorkload:
    """Build the job list for ``depth`` (cached: the real search runs once)."""
    if depth < 1:
        raise ApplicationError(f"search depth must be >= 1, got {depth}")
    board = midgame_board() if use_midgame else initial_board()
    player = BLACK
    moves = legal_moves(board, player)
    jobs: List[_Job] = []
    for m1 in moves:
        child1 = apply_move(board, m1, player)
        if depth < 2:
            value, nodes = evaluate(child1, player), 1
            jobs.append(_Job(m1, -1, value, nodes))
            continue
        replies = legal_moves(child1, -player)
        if not replies:
            value, nodes = alphabeta(child1, -player, depth - 1)
            jobs.append(_Job(m1, -1, -value, nodes + 1))
            continue
        for m2 in replies:
            child2 = apply_move(child1, m2, -player)
            value, nodes = alphabeta(child2, player, depth - 2)
            # value is for `player`; job value stored from root perspective
            jobs.append(_Job(m1, m2, value, nodes + 1))
    workload = OthelloWorkload(
        depth=depth,
        player=player,
        jobs=tuple(jobs),
        root_moves=tuple(moves),
        best_value=_combine(jobs, moves),
        best_move=_best_of(jobs, moves),
        total_nodes=sum(j.nodes for j in jobs),
    )
    return workload


def _value_of_move(jobs: List[_Job], m1: int) -> int:
    """Root value of move ``m1``: min over opponent replies."""
    subtree = [j for j in jobs if j.move1 == m1]
    whole = [j for j in subtree if j.move2 == -1]
    if whole:
        return whole[0].value
    return min(j.value for j in subtree)


def _combine(jobs: List[_Job], moves: List[int]) -> int:
    if not moves:
        return 0
    return max(_value_of_move(jobs, m) for m in moves)


def _best_of(jobs: List[_Job], moves: List[int]) -> Optional[int]:
    if not moves:
        return None
    return max(moves, key=lambda m: (_value_of_move(jobs, m), -m))


def othello_worker(
    api: ParallelAPI, depth: int, use_midgame: bool = True
) -> Generator[Event, Any, Dict[str, Any]]:
    """DSE-parallel Othello search (run under ``run_parallel``)."""
    workload = othello_workload(depth, use_midgame)
    njobs = len(workload.jobs)
    base = 0  # queue in kernel 0's slice

    if api.rank == 0:
        yield from init_job_queue(api, base, njobs)
    yield from api.barrier("oth:init")
    t0 = api.now

    jobs_work = [NODE_WORK.scaled(job.nodes) for job in workload.jobs]
    mine = yield from work_job_queue(
        api, base, jobs_work, lambda j: float(workload.jobs[j].value)
    )
    yield from api.barrier("oth:done")
    t1 = api.now

    result: Dict[str, Any] = {"jobs_done": len(mine), "t0": t0, "t1": t1}
    if api.rank == 0:
        values = yield from collect_results(api, base, njobs)
        recombined = [
            _Job(j.move1, j.move2, int(values[i]), j.nodes)
            for i, j in enumerate(workload.jobs)
        ]
        result["value"] = _combine(recombined, list(workload.root_moves))
        result["best_move"] = _best_of(recombined, list(workload.root_moves))
        result["expected_value"] = workload.best_value
    return result
