"""The paper's four parallel applications + shared job-queue infrastructure.

Each application provides a sequential reference implementation (the
speed-up denominator) and a DSE-parallel worker to be run with
:func:`repro.dse.run_parallel`.
"""

from .dct2 import (
    DEFAULT_KEEP,
    block_work,
    compress_block,
    dct2_block,
    dct2_image_seq,
    dct2_worker,
    dct_matrix,
    idct2_block,
    make_image,
)
from .gauss_seidel import (
    DEFAULT_SWEEPS,
    gauss_seidel_seq,
    gauss_seidel_worker,
    make_system,
    row_partition,
)
from .matmul import make_matrices, matmul_work, matmul_worker
from .workloads import (
    DISTRIBUTIONS,
    dynamic_schedule_worker,
    job_sizes,
    static_schedule_worker,
)
from .jobqueue import (
    collect_results,
    init_job_queue,
    job_queue_layout_words,
    work_job_queue,
)
from .knights_tour import (
    DEFAULT_BOARD,
    DEFAULT_START,
    KnightsTourWorkload,
    TourJob,
    count_tours_seq,
    knight_moves,
    knights_tour_worker,
    knights_tour_workload,
)
from .othello import (
    BLACK,
    EMPTY,
    WHITE,
    OthelloWorkload,
    alphabeta,
    apply_move,
    best_move_seq,
    evaluate,
    initial_board,
    legal_moves,
    midgame_board,
    othello_worker,
    othello_workload,
)

__all__ = [
    "DEFAULT_KEEP",
    "block_work",
    "compress_block",
    "dct2_block",
    "dct2_image_seq",
    "dct2_worker",
    "dct_matrix",
    "idct2_block",
    "make_image",
    "DEFAULT_SWEEPS",
    "gauss_seidel_seq",
    "gauss_seidel_worker",
    "make_system",
    "row_partition",
    "make_matrices",
    "matmul_work",
    "matmul_worker",
    "DISTRIBUTIONS",
    "dynamic_schedule_worker",
    "job_sizes",
    "static_schedule_worker",
    "collect_results",
    "init_job_queue",
    "job_queue_layout_words",
    "work_job_queue",
    "DEFAULT_BOARD",
    "DEFAULT_START",
    "KnightsTourWorkload",
    "TourJob",
    "count_tours_seq",
    "knight_moves",
    "knights_tour_worker",
    "knights_tour_workload",
    "BLACK",
    "EMPTY",
    "WHITE",
    "OthelloWorkload",
    "alphabeta",
    "apply_move",
    "best_move_seq",
    "evaluate",
    "initial_board",
    "legal_moves",
    "midgame_board",
    "othello_worker",
    "othello_workload",
]
