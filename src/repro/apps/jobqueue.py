"""Shared dynamic job queue over DSE global memory.

Both search applications (Othello, Knight's Tour) distribute work the same
way the paper describes: a pool of independent jobs that processors pull
from a shared structure.  The queue is a counter word in global memory
guarded by a distributed lock; each pull is therefore several DSE messages
— which is precisely the communication frequency that limits speed-up when
jobs are small or numerous.

Global-memory layout (relative to a base address)::

    base + 0              next-job counter
    base + 1 .. 1+njobs   one result word per job
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Sequence

import numpy as np

from ..dse.api import ParallelAPI
from ..hardware.cpu import Work
from ..sim.core import Event

__all__ = ["job_queue_layout_words", "init_job_queue", "work_job_queue", "collect_results"]

_LOCK = "dse.jobqueue"


def job_queue_layout_words(njobs: int) -> int:
    """Words of global memory the queue occupies."""
    return 1 + njobs


def init_job_queue(api: ParallelAPI, base: int, njobs: int) -> Generator[Event, Any, None]:
    """Reset the counter and results (call from one rank before a barrier)."""
    yield from api.gm_write(base, np.zeros(1 + njobs))


def work_job_queue(
    api: ParallelAPI,
    base: int,
    jobs_work: Sequence[Work],
    job_result: Callable[[int], float],
) -> Generator[Event, Any, List[int]]:
    """Pull and execute jobs until the pool is empty.

    ``jobs_work[j]`` is the compute charged for job ``j``;
    ``job_result(j)`` supplies the (real, precomputed) numeric result that
    gets written to the job's result slot.  Returns the indices this rank
    processed.
    """
    njobs = len(jobs_work)
    mine: List[int] = []
    while True:
        # Atomically take the next job index.
        yield from api.lock(_LOCK)
        idx = int((yield from api.gm_read_scalar(base)))
        if idx < njobs:
            yield from api.gm_write_scalar(base, float(idx + 1))
        yield from api.unlock(_LOCK)
        if idx >= njobs:
            break
        yield from api.compute(jobs_work[idx])
        yield from api.gm_write_scalar(base + 1 + idx, job_result(idx))
        mine.append(idx)
    return mine


def collect_results(
    api: ParallelAPI, base: int, njobs: int
) -> Generator[Event, Any, np.ndarray]:
    """Read every job's result word (master side, after a barrier)."""
    return (yield from api.gm_read(base + 1, njobs))
