"""Parallel dense matrix multiplication (extension application).

Not one of the paper's four workloads — included as the classic
shared-memory demo a DSE user would write first, and as a large-transfer
stress for the DSM (whole matrix rows move through global memory).

Decomposition: ``C = A @ B`` with A and C split into row blocks, one per
rank, living in that rank's global-memory slice; B lives in the master's
slice and every rank reads it once.  Real numerics via numpy; charged cost
is the classic ``2·n³`` multiply-add count split across ranks.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

import numpy as np

from ..dse.api import ParallelAPI
from ..errors import ApplicationError
from ..hardware.cpu import Work
from ..sim.core import Event
from .gauss_seidel import row_partition

__all__ = ["make_matrices", "matmul_work", "matmul_worker"]


def make_matrices(n: int, seed: int = 23) -> Tuple[np.ndarray, np.ndarray]:
    if n < 1:
        raise ApplicationError(f"matrix dimension must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, n)), rng.normal(size=(n, n))


def matmul_work(rows: int, n: int) -> Work:
    """Cost of computing ``rows`` rows of an n×n product."""
    return Work(flops=2.0 * rows * n * n, mems=float(rows * n + n * n))


def matmul_worker(
    api: ParallelAPI, n: int, seed: int = 23, verify: bool = True
) -> Generator[Event, Any, Dict[str, Any]]:
    """DSE-parallel matrix multiply (run under ``run_parallel``).

    Layout: B at the master's slice base; rank r's rows of A at
    ``home_base(r)``, its rows of C right after them.
    """
    a, b = make_matrices(n, seed)
    bounds = row_partition(n, api.size)
    lo, hi = bounds[api.rank]
    rows = hi - lo

    b_addr = api.home_base(0) + 2 * n * n  # clear of A/C blocks of rank 0
    a_addr = api.home_base(api.rank)
    c_addr = a_addr + max(rows, 1) * n

    # Distribution (untimed): master publishes B, each rank its A rows.
    if api.rank == 0:
        yield from api.gm_write(b_addr, b.ravel())
    if rows:
        yield from api.gm_write(a_addr, a[lo:hi].ravel())
    yield from api.barrier("mm:loaded")
    t0 = api.now

    result: Dict[str, Any] = {}
    if rows:
        flat_b = yield from api.gm_read(b_addr, n * n)
        my_a = (yield from api.gm_read(a_addr, rows * n)).reshape(rows, n)
        my_c = my_a @ flat_b.reshape(n, n)
        yield from api.compute(matmul_work(rows, n))
        yield from api.gm_write(c_addr, my_c.ravel())
    yield from api.barrier("mm:done")
    t1 = api.now
    result.update({"t0": t0, "t1": t1, "rows": (lo, hi)})

    if verify and api.rank == 0:
        c = np.empty((n, n))
        for r, (rlo, rhi) in enumerate(bounds):
            if rhi > rlo:
                block = yield from api.gm_read(
                    api.home_base(r) + (rhi - rlo) * n, (rhi - rlo) * n
                )
                c[rlo:rhi] = block.reshape(rhi - rlo, n)
        result["c"] = c
    return result
