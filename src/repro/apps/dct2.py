"""Two-dimensional Discrete Cosine Transform image compression (paper §4.2).

The source image is divided into independent N×N pixel blocks; every block
is DCT-transformed and compressed (only the largest fraction of coefficients
kept) — the classic JPEG-style pipeline the paper parallelises.

Parallel decomposition follows the paper: one *job* is one **block row**
(a band of N image rows holding a row of N×N blocks).  The source image
lives in the master's global-memory slice; bands are assigned cyclically,
and every job is one band read + the per-block transforms + one band
write back to the master's node.  An N×N block carries O(N⁴) transform
work but only N² pixels of traffic, so small blocks make each message
round-trip pay for almost no computation — the granularity effect that
flattens the 2×2 curve — while 4×4 and 8×8 blocks scale.

Cost model note: the numerical result is computed with the separable
matrix form (``C X Cᵀ``), but the *charged* operation count is the direct
evaluation of the DCT-II definition with on-the-fly cosine computation
(≈14 flops per coefficient-pixel term, ``14·N⁴`` per block), which is what
a straightforward 1999 implementation did.  Tests verify the transform
itself against ``scipy``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, Generator, Tuple

import numpy as np

from ..dse.api import ParallelAPI
from ..errors import ApplicationError
from ..hardware.cpu import Work
from ..sim.core import Event

__all__ = [
    "make_image",
    "dct_matrix",
    "dct2_block",
    "idct2_block",
    "compress_block",
    "dct2_image_seq",
    "block_work",
    "sequential_work",
    "dct2_worker",
    "DEFAULT_KEEP",
]

#: fraction of coefficients kept ("25% compression rate" reconstruction)
DEFAULT_KEEP = 0.25


def make_image(size: int, seed: int = 11) -> np.ndarray:
    """A deterministic synthetic grayscale image: smooth field + texture."""
    if size < 2:
        raise ApplicationError(f"image size must be >= 2, got {size}")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(float) / size
    smooth = 128 + 80 * np.sin(3.1 * xx) * np.cos(2.3 * yy) + 40 * xx * yy
    noise = rng.normal(0.0, 6.0, size=(size, size))
    return np.clip(smooth + noise, 0, 255)


@lru_cache(maxsize=None)
def dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II basis matrix."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    c = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    c *= np.sqrt(2.0 / n)
    c[0] *= np.sqrt(0.5)
    return c


def dct2_block(block: np.ndarray) -> np.ndarray:
    """2-D DCT-II (orthonormal) of one square block."""
    c = dct_matrix(block.shape[0])
    return c @ block @ c.T


def idct2_block(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (orthonormal), for round-trip tests."""
    c = dct_matrix(coeffs.shape[0])
    return c.T @ coeffs @ c


def compress_block(coeffs: np.ndarray, keep: float) -> np.ndarray:
    """Zero all but the ``keep`` fraction of largest-magnitude coefficients."""
    if not (0 < keep <= 1):
        raise ApplicationError(f"keep fraction must be in (0, 1], got {keep}")
    n_keep = max(1, int(round(keep * coeffs.size)))
    if n_keep >= coeffs.size:
        return coeffs.copy()
    flat = np.abs(coeffs).ravel()
    threshold = np.partition(flat, coeffs.size - n_keep)[coeffs.size - n_keep]
    out = np.where(np.abs(coeffs) >= threshold, coeffs, 0.0)
    return out


def block_work(block_size: int) -> Work:
    """Charged cost of transforming+compressing one block.

    Direct DCT-II: B² output coefficients, each summing B² terms of
    ``pixel · cos(...) · cos(...)`` with the two cosines evaluated through
    libm in the loop (~12 flops each, plus the multiply-add: ~25 flops per
    term), plus the threshold compression pass.
    """
    b = block_size
    return Work(flops=25.0 * b**4 + 2.0 * b * b, mems=3.0 * b * b)


def sequential_work(size: int, block_size: int) -> Work:
    blocks = (size // block_size) ** 2
    return block_work(block_size).scaled(blocks)


def dct2_image_seq(
    image: np.ndarray, block_size: int, keep: float = DEFAULT_KEEP
) -> np.ndarray:
    """Sequential reference: compressed DCT coefficients of the image."""
    size = image.shape[0]
    if image.shape[0] != image.shape[1]:
        raise ApplicationError("image must be square")
    if size % block_size != 0:
        raise ApplicationError(
            f"block size {block_size} does not divide image size {size}"
        )
    out = np.empty_like(image, dtype=float)
    for by in range(0, size, block_size):
        for bx in range(0, size, block_size):
            block = image[by : by + block_size, bx : bx + block_size]
            out[by : by + block_size, bx : bx + block_size] = compress_block(
                dct2_block(block), keep
            )
    return out


def blocks_per_side(size: int, block_size: int) -> int:
    if size % block_size != 0:
        raise ApplicationError(
            f"block size {block_size} does not divide image size {size}"
        )
    return size // block_size


def dct2_worker(
    api: ParallelAPI,
    size: int,
    block_size: int,
    keep: float = DEFAULT_KEEP,
    seed: int = 11,
    verify: bool = True,
) -> Generator[Event, Any, Dict[str, Any]]:
    """DSE-parallel DCT-II compression (run under ``run_parallel``).

    Global-memory layout (all in the master's slice): band *j* — image
    rows ``j·B .. (j+1)·B`` — at ``j·B·size``, with the coefficient output
    area right after the image.  Band *j* is processed by rank
    ``j % size``.
    """
    n_bands = blocks_per_side(size, block_size)
    band_words = block_size * size
    in_base = 0
    out_base = in_base + n_bands * band_words

    # Distribution phase (untimed: before the start barrier): the master
    # loads the source image into its slice.
    if api.rank == 0:
        image = make_image(size, seed)
        yield from api.gm_write(in_base, image.ravel())
    yield from api.barrier("dct:loaded")
    t0 = api.now

    # Processing phase: one job per band, assigned cyclically.
    work = block_work(block_size)
    my_bands = 0
    for j in range(api.rank, n_bands, api.size):
        data = yield from api.gm_read(in_base + j * band_words, band_words)
        band = data.reshape(block_size, size)
        out = np.empty_like(band)
        for bx in range(0, size, block_size):
            block = band[:, bx : bx + block_size]
            out[:, bx : bx + block_size] = compress_block(dct2_block(block), keep)
            yield from api.compute(work)
        yield from api.gm_write(out_base + j * band_words, out.ravel())
        my_bands += 1
    yield from api.barrier("dct:done")
    t1 = api.now

    # Verification gather (rank 0 only): reassemble the coefficient image.
    result: Dict[str, Any] = {"bands": my_bands, "t0": t0, "t1": t1}
    if verify and api.rank == 0:
        data = yield from api.gm_read(out_base, n_bands * band_words)
        result["coeffs"] = data.reshape(size, size)
    return result
