"""Gauss-Seidel solution of simultaneous linear equations (paper §4.1).

The paper solves an N-dimensional simultaneous equation with N varied from
100 to 900.  We build a diagonally dominant dense system, solve it with:

* :func:`gauss_seidel_seq` — the true sequential Gauss-Seidel iteration
  (the speed-up denominator), and
* :func:`gauss_seidel_worker` — the DSE-parallel block variant: each
  processor owns a contiguous block of rows/unknowns; within its block it
  applies Gauss-Seidel updates (newest values), across blocks it uses the
  values published in global memory at the last sweep (block-Jacobi
  coupling, the standard distributed-memory parallelisation; it converges
  for strictly diagonally dominant systems).

The solution vector is *placed*: rank r's block of x lives in rank r's
slice of global memory, so each sweep reads p-1 remote blocks and writes
one local block — the paper's fine-grain shared-memory traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..dse.api import ParallelAPI
from ..hardware.cpu import Work
from ..sim.core import Event

__all__ = [
    "make_system",
    "gauss_seidel_seq",
    "sequential_work",
    "gauss_seidel_worker",
    "row_partition",
    "DEFAULT_SWEEPS",
]

#: fixed sweep count so runs are deterministic and timing-comparable
DEFAULT_SWEEPS = 10


def make_system(n: int, seed: int = 7) -> Tuple[np.ndarray, np.ndarray]:
    """A strictly diagonally dominant dense system (guaranteed convergence)."""
    if n < 1:
        raise ValueError(f"system dimension must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    dominance = np.abs(a).sum(axis=1) + 1.0
    np.fill_diagonal(a, dominance)
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def sweep_work(rows: int, n: int) -> Work:
    """Operation count of one Gauss-Seidel sweep over ``rows`` rows."""
    # Each row: n multiply-adds (2n flops) + a divide, touching n memory words.
    return Work(flops=2.0 * rows * n + rows, mems=float(rows * n))


def sequential_work(n: int, sweeps: int) -> Work:
    return sweep_work(n, n).scaled(sweeps)


def gauss_seidel_seq(
    a: np.ndarray, b: np.ndarray, sweeps: int = DEFAULT_SWEEPS
) -> Tuple[np.ndarray, List[float]]:
    """True sequential Gauss-Seidel; returns (x, per-sweep residual norms)."""
    n = len(b)
    x = np.zeros(n)
    residuals = []
    diag = np.diag(a)
    for _ in range(sweeps):
        for i in range(n):
            s = a[i] @ x - diag[i] * x[i]
            x[i] = (b[i] - s) / diag[i]
        residuals.append(float(np.linalg.norm(a @ x - b)))
    return x, residuals


def row_partition(n: int, size: int) -> List[Tuple[int, int]]:
    """Contiguous (lo, hi) row ranges, one per rank (remainder spread)."""
    base, extra = divmod(n, size)
    bounds = []
    lo = 0
    for r in range(size):
        hi = lo + base + (1 if r < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _block_update(
    a: np.ndarray, b: np.ndarray, x: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Gauss-Seidel update of rows [lo, hi) against the snapshot ``x``."""
    out = x.copy()
    diag = np.diag(a)
    for i in range(lo, hi):
        s = a[i] @ out - diag[i] * out[i]
        out[i] = (b[i] - s) / diag[i]
    return out[lo:hi]


def gauss_seidel_worker(
    api: ParallelAPI,
    n: int,
    sweeps: int = DEFAULT_SWEEPS,
    seed: int = 7,
    verify: bool = True,
) -> Generator[Event, Any, Dict[str, Any]]:
    """DSE-parallel block Gauss-Seidel (run under ``run_parallel``).

    Every rank regenerates the (deterministic) system and works on its
    contiguous row block; the x vector is distributed across the ranks'
    global-memory slices.
    """
    a, b = make_system(n, seed)
    size, rank = api.size, api.rank
    bounds = row_partition(n, size)
    lo, hi = bounds[rank]

    # x block r lives at the start of rank r's home slice.
    def block_addr(r: int) -> int:
        return api.home_base(r)

    # Initialise own block to zero (the sequential start vector).
    yield from api.gm_write(block_addr(rank), np.zeros(max(hi - lo, 1)))
    yield from api.barrier("gs:init")
    t0 = api.now

    x = np.zeros(n)
    for sweep in range(sweeps):
        # Gather the current x: own block is local, others are remote reads.
        for r in range(size):
            rlo, rhi = bounds[r]
            if rhi > rlo:
                data = yield from api.gm_read(block_addr(r), rhi - rlo)
                x[rlo:rhi] = data
        # Separate the gather from this sweep's writes: without this
        # barrier a fast rank's write races a slow rank's gather of the
        # same block, and the "last sweep values" coupling below becomes
        # timing-dependent (found by repro.sanitize race detection).
        yield from api.barrier(f"gs:gather{sweep}")
        if hi > lo:
            # The real numerics: update own rows from the gathered snapshot.
            new_block = _block_update(a, b, x, lo, hi)
            yield from api.compute(sweep_work(hi - lo, n))
            yield from api.gm_write(block_addr(rank), new_block)
        yield from api.barrier(f"gs:sweep{sweep}")
    t1 = api.now

    result: Dict[str, Any] = {"rows": (lo, hi), "t0": t0, "t1": t1}
    if verify:
        # Final gather so the rank can report the full solution and residual.
        for r in range(size):
            rlo, rhi = bounds[r]
            if rhi > rlo:
                data = yield from api.gm_read(block_addr(r), rhi - rlo)
                x[rlo:rhi] = data
        result["x"] = x
        result["residual"] = float(np.linalg.norm(a @ x - b))
    return result
