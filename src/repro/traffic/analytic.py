"""Closed-form M/G/1-PS predictions for the validation gate.

The PS request-cloning reproducibility report (Pellegrini 2020, arXiv
2002.04416) rests on two classical facts this module encodes:

1. **PS insensitivity** — an M/G/1-PS queue's mean response time depends
   on the service distribution only through its mean:

   .. math:: E[T] = \\frac{E[S]}{1 - \\rho}, \\qquad \\rho = \\lambda E[S]

2. **Cluster-split cloning is exactly solvable** — partition ``N`` PS
   servers into groups of ``d`` and send synchronized clones of each
   request to every member of one uniformly chosen group.  Because the
   clones stay synchronized on egalitarian PS servers (same admit time,
   same per-job share, first finisher cancels the rest), each group
   behaves as a *single* M/G/1-PS queue whose service time is the
   minimum of ``d`` i.i.d. draws, fed by a ``d/N`` thinning-free share
   of the arrivals:

   .. math:: E[T_d] = \\frac{E[X_{(1:d)}]}{1 - \\lambda\\,d\\,E[X_{(1:d)}]/N}

   Whether cloning pays is then a pure tail question: for Pareto
   ``E[X_(1:d)]`` shrinks fast (min of Pareto(α) is Pareto(dα)), for
   exponential it shrinks like ``1/d`` (break-even at every load), and
   for deterministic service it does not shrink at all — cloning merely
   multiplies load by ``d`` and *hurts*.

The simulation must land on these curves; ``tools/check_bench.py
--suite traffic`` gates exactly that, and :func:`expected_ordering`
states which policy should win where.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError

__all__ = [
    "ps_mean_response",
    "random_dispatch_mean_response",
    "clone_mean_response",
    "clone_vs_random",
    "expected_ordering",
    "sweep_loads",
]


def ps_mean_response(mean_service: float, rho: float) -> float:
    """M/G/1-PS mean response time at load ``rho`` (insensitive to shape)."""
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"need 0 <= rho < 1, got {rho}")
    return mean_service / (1.0 - rho)


def random_dispatch_mean_response(
    service, lam: float, n_servers: int, rate: float = 1.0
) -> float:
    """Mean response under uniform random dispatch to ``n_servers`` PS queues.

    Splitting a Poisson stream uniformly gives each server an independent
    M/G/1-PS at the same per-server load, so the system mean equals the
    single-queue PS formula at ``rho = lam * E[S] / (n * rate)``.
    """
    rho = lam * service.mean / (n_servers * rate)
    return ps_mean_response(service.mean / rate, rho)


def clone_mean_response(
    service, lam: float, n_servers: int, d: int, rate: float = 1.0
) -> float:
    """Mean response for cluster-split clone-to-d with cancel-on-first.

    ``service`` must expose ``mean`` and ``min_of_mean(d)`` (all the
    distributions in :mod:`repro.traffic.arrivals` do).
    """
    if d < 1:
        raise ConfigurationError(f"clone degree must be >= 1, got {d}")
    if n_servers % d:
        raise ConfigurationError(
            f"cluster-split needs n_servers divisible by d ({n_servers} % {d})"
        )
    min_mean = service.min_of_mean(d) / rate
    rho = lam * d * min_mean / n_servers
    return ps_mean_response(min_mean, rho)


def clone_vs_random(
    service, lam: float, n_servers: int, d: int, rate: float = 1.0
) -> Tuple[float, float]:
    """(clone-to-d, random) analytic mean response times, same offered load."""
    return (
        clone_mean_response(service, lam, n_servers, d, rate),
        random_dispatch_mean_response(service, lam, n_servers, rate),
    )


def expected_ordering(service, lam: float, n_servers: int, d: int,
                      rate: float = 1.0) -> str:
    """Which policy the model says wins: ``"clone"``, ``"random"``, ``"tie"``.

    This is the qualitative claim the bench gate checks against the
    simulation: any service with ``d * E[min of d] <= E[S]`` (Pareto
    alpha <= 1.5, exponential) → clone wins at every load; deterministic
    service → clone loses once the extra load bites; in between (e.g.
    Pareto alpha 2.2) the winner flips with the load.
    """
    if n_servers % d:
        raise ConfigurationError(
            f"cluster-split needs n_servers divisible by d ({n_servers} % {d})"
        )
    # Saturation-aware: a side whose load reaches 1 diverges and loses
    # outright (deterministic service saturates the clone side at half
    # the arrival rate — the formula would raise, but the verdict is
    # well-defined).
    rho_clone = lam * d * (service.min_of_mean(d) / rate) / n_servers
    rho_rand = lam * service.mean / (n_servers * rate)
    if rho_clone >= 1.0 or rho_rand >= 1.0:
        if rho_clone >= 1.0 and rho_rand >= 1.0:
            return "tie"
        return "random" if rho_clone >= 1.0 else "clone"
    clone, rand = clone_vs_random(service, lam, n_servers, d, rate)
    if abs(clone - rand) <= 1e-9 * max(clone, rand):
        return "tie"
    return "clone" if clone < rand else "random"


def sweep_loads(service, n_servers: int, d: int, rhos: List[float],
                rate: float = 1.0) -> List[dict]:
    """Analytic clone-vs-random curve over per-server loads ``rhos``.

    Returns one row per load with the arrival rate that produces it,
    ready to plot against (or gate) the simulated sweep.
    """
    rows = []
    for rho in rhos:
        lam = rho * n_servers * rate / service.mean
        clone, rand = clone_vs_random(service, lam, n_servers, d, rate)
        rows.append({
            "rho": rho,
            "lam": lam,
            "clone": clone,
            "random": rand,
            "winner": expected_ordering(service, lam, n_servers, d, rate),
        })
    return rows
