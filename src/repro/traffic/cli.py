"""``dse-experiments traffic`` — the multi-tenant traffic sweep CLI.

Sweep mode (default) drives the abstract PS engine at scale: a
policies x loads grid of multi-tenant scenarios (a heavy-tailed ``web``
tenant plus a bursty MMPP ``batch`` tenant behind a token-bucket quota),
each point an independent seeded simulation fanned across worker
processes through the content-addressed result cache.  The default grid
totals over 10^6 requests and its merged output is byte-identical for
``--jobs 1`` and ``--jobs N`` (asserted by tests).

Cluster mode (``--cluster``) runs the small-scale full-stack variant
instead — real DSE processes over a real (possibly lossy) transport —
see :mod:`repro.traffic.cluster_backend`; this is the mode behind the
``sr`` vs ``dual`` burst-loss rows in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..resilience.campaign import CrashPlan
from ..util.tables import Table
from .arrivals import Exponential, Pareto, PoissonArrivals, make_arrivals
from .engine import ElasticConfig, TrafficConfig, TrafficEngine, run_traffic
from .tenants import QuotaConfig, TenantSpec

__all__ = ["traffic_main", "build_sweep_config", "run_traced_traffic"]

#: default sweep grid — 3 x 3 x 120k = 1.08M requests
DEFAULT_POLICIES = ("random", "jsq", "clone-2")
DEFAULT_LOADS = (0.35, 0.55, 0.75)
DEFAULT_REQUESTS = 120_000
DEFAULT_SERVERS = 8


def build_sweep_config(
    policy: str,
    rho: float,
    requests: int,
    seed: int = 7,
    n_servers: int = DEFAULT_SERVERS,
    elastic: bool = False,
    crashes: int = 0,
) -> TrafficConfig:
    """The canonical two-tenant scenario at per-server load ``rho``.

    ``web``: 80%% of the arrival stream, Poisson, Pareto(1.5) service —
    the heavy-tail regime where cloning provably wins at every load
    (``d * E[min of d] == E[S]`` exactly at alpha 1.5).  ``batch``: the
    other 20%%, bursty MMPP arrivals, exponential service, behind a
    token-bucket quota sized to its *calm* rate — so flash-crowd bursts
    overflow the bucket and are rejected instead of stealing web's
    capacity.  Both service means are 1.0, so offered per-server load is
    ``rho`` (minus what the quota rejects).
    """
    lam = rho * n_servers
    web_requests = int(requests * 0.8)
    batch_requests = max(1, requests - web_requests)
    web = TenantSpec(
        name="web",
        arrivals=PoissonArrivals(0.8 * lam),
        service=Pareto(alpha=1.5, mean=1.0),
        n_requests=web_requests,
    )
    batch_rate = 0.2 * lam
    batch = TenantSpec(
        name="batch",
        arrivals=make_arrivals("mmpp", batch_rate),
        service=Exponential(1.0),
        # Quota at ~1.3x the long-run rate: the calm phase fits, the 4x
        # burst phase overflows — admission control visibly at work.
        quota=QuotaConfig(rate=1.3 * batch_rate, burst=max(4.0, 2.0 * batch_rate)),
        n_requests=batch_requests,
    )
    elastic_cfg = None
    if elastic:
        elastic_cfg = ElasticConfig(
            min_servers=max(2, n_servers // 2),
            max_servers=2 * n_servers,
            interval=20.0,
        )
    crash_plans: Tuple[CrashPlan, ...] = ()
    if crashes:
        duration = requests / lam  # expected run length in simulated seconds
        crash_plans = tuple(
            CrashPlan(
                kernel_id=1 + (i % (n_servers - 1)),
                at=duration * (i + 1) / (crashes + 1),
                restart_after=duration * 0.05,
            )
            for i in range(crashes)
        )
    return TrafficConfig(
        tenants=(web, batch),
        n_servers=n_servers,
        policy=policy,
        seed=seed,
        elastic=elastic_cfg,
        crashes=crash_plans,
    )


def _sweep_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """One sweep point as a picklable, cacheable top-level task."""
    config = build_sweep_config(
        policy=params["policy"],
        rho=params["rho"],
        requests=params["requests"],
        seed=params["seed"],
        n_servers=params["n_servers"],
        elastic=params["elastic"],
        crashes=params["crashes"],
    )
    result = run_traffic(config)
    out = result.canonical()
    out["rho"] = params["rho"]
    return out


def run_traced_traffic(
    requests: int = 4000,
    metrics_interval: float = 0.0,
    span_sample: int = 50,
    seed: int = 7,
) -> "TrafficEngine":
    """A small traffic run with request-span tracing on (for ``trace``).

    Returns the finished engine so the caller can export
    ``engine.recorder`` (Chrome trace) and ``engine.sampler`` (metrics).
    """
    config = build_sweep_config("clone-2", 0.55, requests, seed=seed)
    config = TrafficConfig(
        tenants=config.tenants,
        n_servers=config.n_servers,
        policy=config.policy,
        seed=config.seed,
        obs_trace=True,
        span_sample=span_sample,
        metrics_interval=metrics_interval,
    )
    engine = TrafficEngine(config)
    engine.result = engine.run()
    return engine


def _sweep_main(args) -> int:
    from ..experiments.parallel import ResultCache, run_tasks

    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    loads = tuple(float(x) for x in args.loads.split(","))
    requests = args.requests
    if args.fast:
        # Keep the clone-vs-random pair so the headline ordering check
        # still runs in smoke mode.
        policies = ("random", "clone-2")
        loads = loads[:2]
        requests = min(requests, 2500)
    grid = [
        {
            "policy": policy,
            "rho": rho,
            "requests": requests,
            "seed": args.seed,
            "n_servers": args.servers,
            "elastic": args.elastic,
            "crashes": args.crashes,
        }
        for policy in policies
        for rho in loads
    ]
    total = requests * len(grid)
    cache = None if args.no_cache else ResultCache()
    start = time.perf_counter()
    points = run_tasks(
        _sweep_task, grid, jobs=args.jobs, cache=cache, namespace="traffic"
    )
    wall = time.perf_counter() - start

    table = Table(
        ["policy", "rho", "mean", "web p50", "web p99", "web p999",
         "batch p99", "batch rej", "goodput/s", "util"],
        title=(f"{len(grid)} points x {requests} requests "
               f"({total} total), {args.servers} servers, seed {args.seed}"),
    )
    for point in points:
        web = point["per_tenant"]["web"]
        batch = point["per_tenant"]["batch"]
        goodput = web["goodput_rps"] + batch["goodput_rps"]
        table.add(
            point["policy"],
            f"{point['rho']:g}",
            f"{point['overall']['mean']:.4f}",
            f"{web['p50']:.3f}",
            f"{web['p99']:.3f}",
            f"{web['p999']:.3f}",
            f"{batch['p99']:.3f}",
            int(batch["rejected"]),
            f"{goodput:.2f}",
            f"{point['utilisation']:.3f}",
        )
    print(table.render())

    # The headline property: at matched load, clone-2 beats random on
    # the heavy-tailed mixture (alpha 1.5 => cloning is load-neutral).
    by_key = {(p["policy"], p["rho"]): p for p in points}
    for rho in loads:
        clone = by_key.get(("clone-2", rho))
        rand = by_key.get(("random", rho))
        if clone and rand:
            c, r = clone["overall"]["mean"], rand["overall"]["mean"]
            verdict = "OK" if c < r else "VIOLATION"
            print(f"  clone-2 vs random @ rho={rho:g}: "
                  f"{c:.4f} < {r:.4f} [{verdict}]")
    summary = f"swept {total} requests in {wall:.1f}s with jobs={args.jobs}"
    if cache is not None:
        summary += f"; {cache.summary()}"
    print(summary)

    if args.out:
        doc = {"points": points, "seed": args.seed, "servers": args.servers}
        with open(args.out, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        print(f"wrote {args.out}")
    return 0


def _cluster_main(args) -> int:
    from .cluster_backend import run_cluster_traffic

    summary = run_cluster_traffic(
        n_kernels=args.servers,
        n_requests=args.requests,
        arrival_rate=args.rate,
        mean_service=args.mean_service,
        placement=args.placement,
        transport=args.transport,
        p_enter_bad=args.loss,
        p_exit_bad=args.p_exit,
        payload_words=args.payload,
        seed=args.seed,
        shards=args.shards,
    )
    table = Table(
        ["transport", "requests", "mean", "p50", "p99", "goodput/s", "elapsed"],
        title=(f"full-stack: {args.servers} kernels, loss {args.loss:g}, "
               f"seed {args.seed}"),
    )
    table.add(
        summary["transport"],
        summary["count"],
        f"{summary['mean']:.4f}",
        f"{summary['p50']:.4f}",
        f"{summary['p99']:.4f}",
        f"{summary['goodput_rps']:.2f}",
        f"{summary['elapsed']:.4f}",
    )
    print(table.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(json.dumps(summary, sort_keys=True, indent=1) + "\n")
        print(f"wrote {args.out}")
    return 0


def traffic_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dse-experiments traffic",
        description="Multi-tenant request traffic: the PS-engine sweep, or "
                    "the full-stack cluster mode (--cluster).",
    )
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        help="comma list: random, rr, jsq, lwl, clone-<d> "
                             f"(default {','.join(DEFAULT_POLICIES)})")
    parser.add_argument("--loads", default=",".join(f"{x:g}" for x in DEFAULT_LOADS),
                        help="comma list of per-server loads rho "
                             f"(default {','.join(f'{x:g}' for x in DEFAULT_LOADS)})")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help=f"requests per sweep point (default {DEFAULT_REQUESTS})")
    parser.add_argument("--servers", type=int, default=DEFAULT_SERVERS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--elastic", action="store_true",
                        help="enable the autoscaler (min n/2, max 2n)")
    parser.add_argument("--crashes", type=int, default=0,
                        help="crash this many servers mid-run (engine mode)")
    parser.add_argument("--fast", action="store_true",
                        help="tiny grid for smoke tests")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--out", default=None,
                        help="write the merged sweep as canonical JSON")
    parser.add_argument("--cluster", action="store_true",
                        help="full-stack mode: real DSE kernels + transport")
    parser.add_argument("--transport", default="datagram",
                        help="cluster mode: datagram/reliable/reliable-gbn/sr/dual")
    parser.add_argument("--loss", type=float, default=0.0,
                        help="cluster mode: Gilbert-Elliott p_enter_bad")
    parser.add_argument("--p-exit", dest="p_exit", type=float, default=0.25)
    parser.add_argument("--rate", type=float, default=40.0,
                        help="cluster mode: arrival rate (req/s)")
    parser.add_argument("--mean-service", type=float, default=0.05,
                        help="cluster mode: mean request CPU seconds")
    parser.add_argument("--placement", default="rr",
                        choices=("rr", "least-loaded"))
    parser.add_argument("--shards", type=int, default=0,
                        help="cluster mode: shard the event loop N ways "
                             "(switched fabric; byte-identical for every N)")
    parser.add_argument("--payload", type=int, default=0,
                        help="cluster mode: global-memory words each request "
                             "reads + writes back (bulk-data lane under dual)")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.cluster:
        if args.requests == DEFAULT_REQUESTS:
            args.requests = 200  # full-stack requests are ~1000x costlier
        return _cluster_main(args)
    return _sweep_main(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(traffic_main())
