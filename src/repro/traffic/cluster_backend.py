"""Full-stack traffic mode: requests as real DSE processes on the cluster.

The engine in :mod:`repro.traffic.engine` abstracts servers as PS queues
so it can push 10^6 requests; this module is the complementary
*small-scale, full-stack* mode: every request is a real DSE process
invoked over the configured transport (datagram / reliable / sr / dual)
through the real NIC, fabric, and OS model — so transport-level effects
(Gilbert–Elliott burst loss, retransmission storms, dual-channel
separation) show up in request latency and goodput.

Two entry points:

* :func:`run_cluster_traffic` — a Poisson request stream paced by the
  master on kernel 0, dispatched open-loop through
  :class:`repro.dse.taskfarm.FarmStream` with round-robin or SSI
  least-loaded placement, optional burst loss armed on every NIC.
  Backs the ``sr`` vs ``dual`` burst-loss comparison in EXPERIMENTS.md.
* :func:`run_resilient_traffic` — the same request population pushed
  through the crash-tolerant ``farm_dynamic`` under a scripted
  :class:`~repro.resilience.campaign.FaultCampaign`, proving requests
  survive kernel crashes via retry/reassignment (requires the datagram
  transport, as all resilience runs do).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence

from ..dse.config import ClusterConfig
from ..dse.runtime import launch_master
from ..dse.taskfarm import FarmStream, farm_dynamic
from ..errors import ConfigurationError
from ..network.faults import BurstLossConfig, LossInjector
from ..resilience.campaign import CrashPlan, FaultCampaign
from ..resilience.config import ResilienceConfig
from ..sim.rng import RandomStreams
from ..ssi.remote_exec import pick_least_loaded
from .arrivals import make_arrivals, make_service
from .slo import LatencyHistogram

__all__ = ["run_cluster_traffic", "run_resilient_traffic"]


def _request_task(api, size: float) -> Generator:
    """One request: burn ``size`` seconds of CPU, report the finish time."""
    yield from api.compute_seconds(size)
    return api.now


def _request_task_payload(api, job) -> Generator:
    """A request with bulk data: fetch the payload from global memory,
    compute, write the result back.

    The GM read/write pairs are what a dual-channel transport routes
    over its *unreliable* lane (idempotent, app-level retry), while the
    invoke/complete RPCs stay on the reliable lane — so this task shape
    is what makes ``sr`` vs ``dual`` observable at the request level.
    """
    size, addr, nwords = job
    payload = yield from api.gm_read(addr, nwords)
    yield from api.compute_seconds(size)
    yield from api.gm_write(addr, payload)
    return api.now


def _summarise(arrived: List[float], finished: List[float],
               done_at: float) -> Dict[str, float]:
    hist = LatencyHistogram()
    for t0, t1 in zip(arrived, finished):
        hist.observe(t1 - t0)
    out = hist.summary()
    out["elapsed"] = done_at
    out["goodput_rps"] = len(finished) / done_at if done_at > 0 else 0.0
    return out


def run_cluster_traffic(
    n_kernels: int = 4,
    n_requests: int = 200,
    arrival_rate: float = 40.0,
    mean_service: float = 0.05,
    arrivals: str = "poisson",
    service: str = "exp",
    placement: str = "rr",
    transport: str = "datagram",
    p_enter_bad: float = 0.0,
    p_exit_bad: float = 0.25,
    payload_words: int = 0,
    seed: int = 1999,
    shards: int = 0,
) -> Dict[str, float]:
    """One open-loop request stream through the real cluster stack.

    The master on kernel 0 paces arrivals with ``api.sleep``, dispatches
    each request the moment it arrives (``FarmStream``), and drains at
    the end; request latency is finish time minus arrival time, so it
    includes invoke/completion RPCs over the (possibly lossy) fabric.
    ``placement`` is ``"rr"`` or ``"least-loaded"`` (the SSI view).

    With ``payload_words > 0`` every request also moves that much global
    memory (read on entry, write-back on exit) — the bulk-data class a
    ``dual`` transport carries on its unreliable lane.

    ``shards > 0`` runs the cluster under sharded parallel-in-time
    execution (:mod:`repro.shard`); this selects the switched fabric
    (sharding's lookahead comes from its per-port model) and is
    incompatible with burst loss — the injector draws from one shared
    RNG on one shard's loop, which would break shard-count invariance.
    The master here is a closure, so sharded traffic always runs on the
    inline backend.
    """
    if placement not in ("rr", "least-loaded"):
        raise ConfigurationError(
            f"placement must be 'rr' or 'least-loaded', got {placement!r}"
        )
    if shards and p_enter_bad > 0.0:
        raise ConfigurationError(
            "burst loss injection is not supported under sharded execution"
        )
    arrival_model = make_arrivals(arrivals, arrival_rate)
    service_model = make_service(service, mean_service)
    outcome: Dict[str, Any] = {}

    def master(api) -> Generator:
        streams = RandomStreams(seed)
        next_gap = arrival_model.gaps(streams.stream("trf.cb.arr"))
        svc_rng = streams.stream("trf.cb.svc")
        addr = 0
        if payload_words:
            addr = yield from api.gm_alloc(payload_words)
            task = _request_task_payload
        else:
            task = _request_task
        stream = FarmStream(api, task)
        arrived: List[float] = []
        for i in range(n_requests):
            yield from api.sleep(next_gap())
            size = service_model.sample(svc_rng)
            if placement == "least-loaded":
                target = pick_least_loaded(api)
            else:
                target = i % api.size
            arrived.append(api.now)
            item = (size, addr, payload_words) if payload_words else size
            yield from stream.dispatch(item, target)
        finished = yield from stream.drain()
        outcome["arrived"] = arrived
        outcome["finished"] = finished
        outcome["done_at"] = api.now
        return len(finished)

    config_kwargs: Dict[str, Any] = dict(
        n_processors=n_kernels,
        n_machines=n_kernels,
        transport=transport,
        seed=seed,
    )
    if shards:
        from ..network.topology import FabricConfig

        config_kwargs["fabric"] = FabricConfig(kind="switch")
        config_kwargs["shards"] = shards
    config = ClusterConfig(**config_kwargs)
    run = launch_master(config, master)
    if p_enter_bad > 0.0:
        burst = BurstLossConfig(p_enter_bad=p_enter_bad, p_exit_bad=p_exit_bad)
        for m in range(n_kernels):
            LossInjector(
                run.cluster.sim, run.cluster.network.nic(m),
                run.cluster.rng, burst=burst,
            ).arm()
    result = run.finish()
    summary = _summarise(outcome["arrived"], outcome["finished"], outcome["done_at"])
    summary["sim_events"] = result.sim_events
    summary["transport"] = transport
    return summary


def run_resilient_traffic(
    n_kernels: int = 4,
    n_requests: int = 120,
    arrival_rate: float = 30.0,
    mean_service: float = 0.05,
    crash_times: Sequence[float] = (0.2,),
    crash_victims: Optional[Sequence[int]] = None,
    restart_after: float = 0.3,
    seed: int = 1999,
) -> Dict[str, float]:
    """The crash-campaign variant: every request completes despite crashes.

    Requests are dispatched through the resilience-aware ``farm_dynamic``
    while a :class:`FaultCampaign` kills kernels mid-run; lost requests
    are retried on surviving kernels.  Returns the latency summary plus
    the farm's retry/waste accounting — the traffic-layer proof of the
    "requests survive crash campaigns via reassignment" claim.
    """
    victims = list(crash_victims) if crash_victims is not None else [
        1 + (i % max(1, n_kernels - 1)) for i in range(len(list(crash_times)))
    ]
    plans = [
        CrashPlan(kernel_id=victim, at=at, restart_after=restart_after)
        for victim, at in zip(victims, crash_times)
    ]
    arrival_model = make_arrivals("poisson", arrival_rate)
    service_model = make_service("exp", mean_service)
    outcome: Dict[str, Any] = {}

    def master(api) -> Generator:
        streams = RandomStreams(seed)
        next_gap = arrival_model.gaps(streams.stream("trf.cb.arr"))
        svc_rng = streams.stream("trf.cb.svc")
        sizes: List[float] = []
        start = api.now
        for _ in range(n_requests):
            sizes.append(service_model.sample(svc_rng))
        # farm_dynamic is closed-loop, so this mode trades open-loop
        # pacing for crash-tolerant dispatch: the fair comparison is
        # completion, not latency-under-load.
        finished = yield from farm_dynamic(api, _request_task, sizes)
        outcome["start"] = start
        outcome["finished"] = list(finished)
        outcome["attempts"] = finished.attempts
        outcome["retries"] = finished.retries
        outcome["wasted"] = finished.wasted_seconds
        outcome["done_at"] = api.now
        return len(finished)

    config = ClusterConfig(
        n_processors=n_kernels,
        n_machines=n_kernels,
        transport="datagram",
        seed=seed,
        resilience=ResilienceConfig(),
    )
    run = launch_master(config, master)
    campaign = FaultCampaign(crashes=plans)
    campaign.arm(run.cluster)
    result = run.finish()
    done_at = outcome["done_at"]
    completed = [f for f in outcome["finished"] if f is not None]
    return {
        "completed": len(completed),
        "retries": outcome["retries"],
        "wasted_seconds": outcome["wasted"],
        "elapsed": done_at,
        "goodput_rps": len(completed) / done_at if done_at > 0 else 0.0,
        "sim_events": result.sim_events,
    }
