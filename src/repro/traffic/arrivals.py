"""Seed-deterministic arrival processes and service-time distributions.

The traffic layer is *open-loop*: tenants offer requests on their own
clock regardless of how the cluster is coping — exactly the regime the
PS request-cloning reproducibility report (Pellegrini 2020) models and
the regime that exposes overload behaviour (closed-loop load generators
self-throttle and hide it).

Every stochastic draw flows through a caller-supplied ``random.Random``
stream from :class:`repro.sim.rng.RandomStreams`, so a tenant's arrival
sequence is a pure function of (master seed, tenant name) — independent
of every other tenant, of the dispatch policy, and of how the run is
partitioned across worker processes.

Arrival processes
    * :class:`PoissonArrivals` — memoryless, rate ``lam``.
    * :class:`MMPPArrivals` — Markov-modulated Poisson: the rate
      switches between phases (e.g. calm/burst) after exponential
      dwells; the classic model for flash-crowd traffic.

Service distributions
    * :class:`Exponential` — SCV 1, the M/M baseline.
    * :class:`Pareto` — heavy-tailed (Lomax-free, plain Pareto-I);
      ``min`` of ``d`` i.i.d. copies is again Pareto with shape
      ``d*alpha``, which is what makes request cloning analytically
      tractable (see :mod:`repro.traffic.analytic`).
    * :class:`Deterministic` — SCV 0, the distribution where cloning
      can only ever waste capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError

__all__ = [
    "PoissonArrivals",
    "MMPPArrivals",
    "Exponential",
    "Pareto",
    "Deterministic",
    "make_arrivals",
    "make_service",
]


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoissonArrivals:
    """Poisson arrivals: i.i.d. exponential gaps at ``rate`` per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {self.rate}")

    @property
    def mean_rate(self) -> float:
        return self.rate

    def gaps(self, rng):
        """State for one run: returns a ``next_gap()`` callable."""
        expovariate = rng.expovariate
        rate = self.rate

        def next_gap() -> float:
            return expovariate(rate)

        return next_gap


@dataclass(frozen=True)
class MMPPArrivals:
    """Markov-modulated Poisson process cycling through ``rates``.

    The process dwells in phase ``i`` for an exponential time with mean
    ``dwells[i]`` seconds, emitting Poisson arrivals at ``rates[i]``,
    then moves to the next phase (cyclically).  Sampling is exact: a
    candidate gap that overruns the remaining dwell is *discarded* and
    redrawn at the new phase's rate — valid because the exponential is
    memoryless.
    """

    rates: Tuple[float, ...]
    dwells: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rates) < 2:
            raise ConfigurationError("MMPP needs at least two phases")
        if len(self.rates) != len(self.dwells):
            raise ConfigurationError(
                f"MMPP rates/dwells length mismatch: "
                f"{len(self.rates)} != {len(self.dwells)}"
            )
        if any(r <= 0 for r in self.rates) or any(d <= 0 for d in self.dwells):
            raise ConfigurationError("MMPP rates and dwells must all be > 0")

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate (dwell-weighted average of the phases)."""
        total = sum(self.dwells)
        return sum(r * d for r, d in zip(self.rates, self.dwells)) / total

    def gaps(self, rng):
        expovariate = rng.expovariate
        rates, dwells = self.rates, self.dwells
        state = {"phase": 0, "left": expovariate(1.0 / dwells[0])}

        def next_gap() -> float:
            elapsed = 0.0
            while True:
                gap = expovariate(rates[state["phase"]])
                if gap <= state["left"]:
                    state["left"] -= gap
                    return elapsed + gap
                # Phase expires before the candidate arrival: advance to
                # the phase boundary and redraw (memorylessness makes the
                # discarded candidate statistically free).
                elapsed += state["left"]
                state["phase"] = (state["phase"] + 1) % len(rates)
                state["left"] = expovariate(1.0 / dwells[state["phase"]])

        return next_gap


# ---------------------------------------------------------------------------
# service-time distributions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Exponential:
    """Exponential service times with the given ``mean`` (seconds of work)."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"service mean must be > 0, got {self.mean}")

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (variance / mean^2)."""
        return 1.0

    def sample(self, rng) -> float:
        return rng.expovariate(1.0 / self.mean)

    def min_of_mean(self, d: int) -> float:
        """E[min of d i.i.d. copies] — exponential min is exponential."""
        return self.mean / d


@dataclass(frozen=True)
class Pareto:
    """Pareto-I service times: ``P(X > x) = (xm/x)^alpha`` for ``x >= xm``.

    Parameterised by ``alpha`` and the desired ``mean``; the scale is
    derived (``xm = mean*(alpha-1)/alpha``).  ``alpha`` must exceed 1
    (finite mean); an ``alpha`` in (1, 2] has infinite variance — the
    heavy-tail regime where cloning pays the most.
    """

    alpha: float
    mean: float

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ConfigurationError(
                f"Pareto alpha must be > 1 for a finite mean, got {self.alpha}"
            )
        if self.mean <= 0:
            raise ConfigurationError(f"service mean must be > 0, got {self.mean}")

    @property
    def xm(self) -> float:
        return self.mean * (self.alpha - 1.0) / self.alpha

    @property
    def scv(self) -> float:
        if self.alpha <= 2.0:
            return float("inf")
        return 1.0 / (self.alpha * (self.alpha - 2.0))

    def sample(self, rng) -> float:
        # Inverse-CDF: xm * U^(-1/alpha); use 1-U so U=0 cannot blow up.
        return self.xm * (1.0 - rng.random()) ** (-1.0 / self.alpha)

    def min_of_mean(self, d: int) -> float:
        """min of d i.i.d. Pareto(alpha, xm) is Pareto(d*alpha, xm)."""
        da = d * self.alpha
        return da * self.xm / (da - 1.0)


@dataclass(frozen=True)
class Deterministic:
    """Constant service times — zero variability, cloning's worst case."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"service mean must be > 0, got {self.mean}")

    @property
    def scv(self) -> float:
        return 0.0

    def sample(self, rng) -> float:
        return self.mean

    def min_of_mean(self, d: int) -> float:
        return self.mean


# ---------------------------------------------------------------------------
# string factories (CLI / sweep parameter dicts)
# ---------------------------------------------------------------------------

def make_arrivals(spec: str, rate: float):
    """Build an arrival process from a CLI spec string.

    ``"poisson"`` — Poisson at ``rate``; ``"mmpp"`` — a two-phase
    calm/burst MMPP whose *long-run* rate equals ``rate`` (burst phase
    4x the calm phase, 10%% of the time in burst).
    """
    if spec == "poisson":
        return PoissonArrivals(rate)
    if spec == "mmpp":
        # calm 90% of the time, burst (4x calm) 10%: solve the dwell
        # weighting so the long-run mean equals the requested rate.
        calm = rate / 1.3
        return MMPPArrivals(rates=(calm, 4.0 * calm), dwells=(9.0, 1.0))
    raise ConfigurationError(f"unknown arrival spec {spec!r} (poisson, mmpp)")


def make_service(spec: str, mean: float):
    """Build a service distribution from a CLI spec string.

    ``"exp"``, ``"det"``, or ``"pareto[:alpha]"`` (default alpha 2.2).
    """
    if spec == "exp":
        return Exponential(mean)
    if spec == "det":
        return Deterministic(mean)
    if spec == "pareto" or spec.startswith("pareto:"):
        _, _, alpha = spec.partition(":")
        return Pareto(alpha=float(alpha) if alpha else 2.2, mean=mean)
    raise ConfigurationError(
        f"unknown service spec {spec!r} (exp, det, pareto[:alpha])"
    )
