"""Canonical traffic scenarios (shared by tools, benchmarks, CI).

The matrix runs the single-tenant configurations the PS request-cloning
report solves exactly (:mod:`repro.traffic.analytic`), so every point
carries both its simulated outcome *and* the closed-form prediction:

* ``<policy>@<rho>`` — Pareto(alpha 1.5) service at per-server load
  ``rho`` for each policy.  Alpha 1.5 is the boundary where clone-2 is
  exactly load-neutral (``2 * E[min of 2] == E[S]``), so cloning wins
  at *every* load — the report's headline curve.
* ``<policy>@det<rho>`` — deterministic service: zero variability, so
  cloning only multiplies load and must *lose* — the report's negative
  control.

Every field is simulated and therefore machine-independent;
``tools/check_bench.py --suite traffic`` compares the committed
``BENCH_traffic.json`` trajectory exactly and additionally gates

1. the clone-2 < random ordering on the heavy tail at every load,
2. the random < clone-2 ordering on the deterministic control, and
3. |simulated - analytic| / analytic within tolerance where a closed
   form exists (random and clone-2; JSQ has none).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .analytic import clone_mean_response, random_dispatch_mean_response
from .arrivals import Deterministic, Pareto, PoissonArrivals
from .engine import TrafficConfig, run_traffic
from .tenants import TenantSpec

__all__ = [
    "BENCH_POLICIES",
    "BENCH_LOADS",
    "CANONICAL",
    "run_point",
    "run_bench_matrix",
    "check_gates",
]

#: policies in the committed matrix (jsq has no closed form — no tolerance
#: gate, but its trajectory is still compared exactly)
BENCH_POLICIES = ("random", "jsq", "clone-2")

#: per-server loads of the heavy-tail sweep
BENCH_LOADS = (0.3, 0.5, 0.7)

#: the deterministic-service negative control: both policies stable, but
#: clone-2's doubled load costs ~5x in mean response
DET_LOAD = 0.45

CANONICAL = {
    "n_servers": 8,
    "n_requests": 60_000,
    "alpha": 1.5,
    "mean_service": 1.0,
    "seed": 2020,
}


def run_point(
    policy: str,
    rho: float,
    service_kind: str = "pareto",
    n_servers: int = CANONICAL["n_servers"],
    n_requests: int = CANONICAL["n_requests"],
    seed: int = CANONICAL["seed"],
) -> Dict[str, float]:
    """One canonical single-tenant point; everything returned is simulated
    (plus the closed-form prediction where one exists)."""
    if service_kind == "pareto":
        service = Pareto(alpha=CANONICAL["alpha"], mean=CANONICAL["mean_service"])
    else:
        service = Deterministic(CANONICAL["mean_service"])
    lam = rho * n_servers
    config = TrafficConfig(
        tenants=(TenantSpec("bench", PoissonArrivals(lam), service, n_requests),),
        n_servers=n_servers,
        policy=policy,
        seed=seed,
    )
    result = run_traffic(config)
    out = {
        "count": result.overall["count"],
        "mean": round(result.overall["mean"], 9),
        "p50": round(result.overall["p50"], 9),
        "p99": round(result.overall["p99"], 9),
        "p999": round(result.overall["p999"], 9),
        "elapsed": round(result.elapsed, 9),
        "utilisation": round(result.utilisation, 9),
        "sim_events": result.sim_events,
        "clones_cancelled": int(result.stats.get("clones_cancelled", 0)),
    }
    if policy == "random":
        out["analytic"] = round(
            random_dispatch_mean_response(service, lam, n_servers), 9
        )
    elif policy.startswith("clone-"):
        d = int(policy.partition("-")[2])
        out["analytic"] = round(
            clone_mean_response(service, lam, n_servers, d), 9
        )
    return out


def run_bench_matrix(n_requests: int = CANONICAL["n_requests"]) -> Dict[str, Dict[str, float]]:
    """The full canonical matrix, keyed ``"<policy>@<rho>"`` /
    ``"<policy>@det<rho>"``."""
    results = {}
    for policy in BENCH_POLICIES:
        for rho in BENCH_LOADS:
            results[f"{policy}@{rho:g}"] = run_point(
                policy, rho, "pareto", n_requests=n_requests
            )
    for policy in ("random", "clone-2"):
        results[f"{policy}@det{DET_LOAD:g}"] = run_point(
            policy, DET_LOAD, "det",
            # The unstable-ish det clone point grows with run length;
            # half the requests keeps it quick without losing the gate.
            n_requests=n_requests // 2,
        )
    return results


def check_gates(
    results: Dict[str, Dict[str, float]], tolerance: float = 0.15
) -> List[Tuple[str, bool]]:
    """The report-reproduction gates over one matrix; (description, ok)."""
    checks: List[Tuple[str, bool]] = []
    for rho in BENCH_LOADS:
        clone = results[f"clone-2@{rho:g}"]["mean"]
        rand = results[f"random@{rho:g}"]["mean"]
        checks.append((
            f"heavy tail @ rho={rho:g}: clone-2 mean {clone:.4f} "
            f"< random {rand:.4f}",
            clone < rand,
        ))
    det_clone = results[f"clone-2@det{DET_LOAD:g}"]["mean"]
    det_rand = results[f"random@det{DET_LOAD:g}"]["mean"]
    checks.append((
        f"deterministic control @ rho={DET_LOAD:g}: random mean "
        f"{det_rand:.4f} < clone-2 {det_clone:.4f}",
        det_rand < det_clone,
    ))
    for key, outcome in sorted(results.items()):
        analytic = outcome.get("analytic")
        if analytic is None or "det" in key:
            # No closed form (jsq), or the control point where clone-2
            # sits near saturation and the finite-run mean keeps growing.
            continue
        err = abs(outcome["mean"] - analytic) / analytic
        checks.append((
            f"{key}: sim {outcome['mean']:.4f} vs analytic {analytic:.4f} "
            f"(err {err * 100:.1f}% <= {tolerance * 100:g}%)",
            err <= tolerance,
        ))
    return checks
