"""The traffic engine: open-loop multi-tenant load on an elastic cluster.

One :class:`TrafficEngine` run wires together:

* one generator process per tenant, pacing that tenant's arrival process
  from its own RNG substream (``trf.arr.<tenant>``) and drawing service
  sizes from another (``trf.svc.<tenant>``) — tenants never share draws,
  so adding a tenant or switching the dispatch policy perturbs nobody
  else's sample path;
* admission control: a per-tenant :class:`~repro.traffic.tenants.TokenBucket`
  consulted at arrival, before any dispatch draw;
* a dispatch policy (:mod:`repro.traffic.policies`) fanning each admitted
  request out to 1 or ``d`` :class:`~repro.traffic.service.PSServer`
  clones, with cancel-on-first-complete;
* an optional elastic controller resizing the
  :class:`~repro.traffic.service.VirtualCluster` against the offered
  work rate, and an optional crash schedule (reusing the resilience
  layer's :class:`~repro.resilience.campaign.CrashPlan`) with orphaned
  requests *reassigned*, not lost;
* SLO accounting (:mod:`repro.traffic.slo`), ``trf`` stat counters, and
  optional sampled request spans / metrics series through ``repro.obs``.

Requests are **not** simulation processes: a request is a tiny record,
its lifecycle driven by the servers' departure timers — two-ish events
per request end to end, which is what makes 10^6-request runs routine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.metrics import MetricsSampler
from ..obs.spans import SpanRecorder
from ..resilience.campaign import CrashPlan
from ..sim.core import Simulator
from ..sim.monitor import StatSet
from ..sim.rng import RandomStreams
from ..ssi.endpoints import ServiceDirectory
from .policies import make_policy
from .service import Clone, VirtualCluster
from .slo import SLOTracker
from .tenants import TenantSpec, TokenBucket

__all__ = ["ElasticConfig", "TrafficConfig", "TrafficResult", "TrafficEngine", "run_traffic"]


@dataclass(frozen=True)
class ElasticConfig:
    """Autoscaler settings for the virtual cluster.

    Every ``interval`` simulated seconds the controller computes the
    offered work rate over the last window and resizes the active set to
    ``ceil(rate / (target_util * server_rate))``, clamped to
    [``min_servers``, ``max_servers``].  Purely deterministic — no RNG.
    """

    min_servers: int
    max_servers: int
    interval: float = 10.0
    target_util: float = 0.7

    def __post_init__(self) -> None:
        if self.min_servers < 1:
            raise ConfigurationError(
                f"elastic min_servers must be >= 1, got {self.min_servers}"
            )
        if self.max_servers < self.min_servers:
            raise ConfigurationError(
                f"elastic max_servers ({self.max_servers}) < "
                f"min_servers ({self.min_servers})"
            )
        if self.interval <= 0:
            raise ConfigurationError(
                f"elastic interval must be > 0, got {self.interval}"
            )
        if not 0.0 < self.target_util < 1.0:
            raise ConfigurationError(
                f"elastic target_util must be in (0, 1), got {self.target_util}"
            )


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic run, fully specified (hashable for the result cache)."""

    tenants: Tuple[TenantSpec, ...]
    n_servers: int
    server_rate: float = 1.0
    policy: str = "random"
    seed: int = 0
    elastic: Optional[ElasticConfig] = None
    #: CrashPlan schedule; ``kernel_id`` is the server id (server 0 is the
    #: un-crashable anchor, mirroring the resilience layer's kernel 0)
    crashes: Tuple[CrashPlan, ...] = ()
    obs_trace: bool = False
    #: record one request span per this many admitted requests
    span_sample: int = 1000
    #: metrics sampling cadence in simulated seconds; 0 disables
    metrics_interval: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError("a traffic run needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names: {names}")
        if self.n_servers < 1:
            raise ConfigurationError(
                f"n_servers must be >= 1, got {self.n_servers}"
            )
        if self.server_rate <= 0:
            raise ConfigurationError(
                f"server_rate must be > 0, got {self.server_rate}"
            )
        if self.span_sample < 1:
            raise ConfigurationError(
                f"span_sample must be >= 1, got {self.span_sample}"
            )
        if self.metrics_interval < 0:
            raise ConfigurationError(
                f"metrics_interval must be >= 0, got {self.metrics_interval}"
            )
        make_policy(self.policy)  # fail fast on a bad spelling


class _Request:
    """One in-flight request: tenant, birth time, and its clone set."""

    __slots__ = ("tenant", "t0", "clones", "done", "span")

    def __init__(self, tenant: str, t0: float):
        self.tenant = tenant
        self.t0 = t0
        self.clones: List[Clone] = []
        self.done = False
        self.span = None


@dataclass
class TrafficResult:
    """Everything one run produced, JSON-safe via :meth:`canonical`."""

    config_policy: str
    seed: int
    elapsed: float
    per_tenant: Dict[str, Dict[str, float]]
    overall: Dict[str, float]
    stats: Dict[str, float]
    sim_events: int
    servers_final: int
    utilisation: float
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    spans: Optional[SpanRecorder] = None

    @property
    def mean_response(self) -> float:
        return self.overall.get("mean", 0.0)

    def canonical(self) -> Dict[str, Any]:
        """A deterministic, JSON-safe dict (floats rounded to 9 places).

        Contains only simulated quantities — no wall-clock, no object
        ids — so two runs of the same config compare byte-identical
        after ``json.dumps(..., sort_keys=True)``.
        """
        def walk(value):
            if isinstance(value, float):
                if math.isinf(value) or math.isnan(value):
                    return str(value)
                return round(value, 9)
            if isinstance(value, dict):
                return {str(k): walk(v) for k, v in sorted(value.items())}
            if isinstance(value, (list, tuple)):
                return [walk(v) for v in value]
            return value

        return walk({
            "policy": self.config_policy,
            "seed": self.seed,
            "elapsed": self.elapsed,
            "per_tenant": self.per_tenant,
            "overall": self.overall,
            "stats": self.stats,
            "sim_events": self.sim_events,
            "servers_final": self.servers_final,
            "utilisation": self.utilisation,
        })


class TrafficEngine:
    """Builds and runs one traffic scenario on a fresh simulator."""

    def __init__(self, config: TrafficConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.stats = StatSet("trf")
        self.directory = ServiceDirectory()
        self.policy = make_policy(config.policy)
        self.cluster = VirtualCluster(
            self.sim,
            config.n_servers,
            rate=config.server_rate,
            service_name="trf",
            directory=self.directory,
            stats=self.stats,
            max_servers=config.elastic.max_servers if config.elastic else None,
        )
        if config.elastic and config.elastic.min_servers > config.n_servers:
            raise ConfigurationError(
                "elastic min_servers cannot exceed the starting n_servers"
            )
        if self.policy.n_clones > config.n_servers:
            raise ConfigurationError(
                f"policy {config.policy!r} needs {self.policy.n_clones} servers, "
                f"have {config.n_servers}"
            )
        if config.elastic and self.policy.n_clones > config.elastic.min_servers:
            raise ConfigurationError(
                f"policy {config.policy!r} needs elastic min_servers >= "
                f"{self.policy.n_clones}"
            )
        for server in self.cluster.servers:
            server.on_complete = self._on_clone_complete
        self.slo = SLOTracker([t.name for t in config.tenants])
        self.buckets: Dict[str, TokenBucket] = {}
        for spec in config.tenants:
            if spec.quota is not None:
                self.buckets[spec.name] = TokenBucket(spec.quota, self.sim.now)
        self._dispatch_rng = self.streams.stream("trf.dispatch")
        self.recorder = SpanRecorder(enabled=config.obs_trace)
        self.sampler: Optional[MetricsSampler] = None
        if config.metrics_interval > 0:
            self.sampler = MetricsSampler(self.sim, config.metrics_interval)
            self.sampler.register("trf.servers_active", lambda: self.cluster.n_active)
            self.sampler.register("trf.outstanding", lambda: float(self._outstanding))
            self.sampler.register("trf.queue_total", lambda: self.cluster.total_queue())
            self.sampler.register_statset("trf", self.stats)
        self._outstanding = 0
        self._generators_live = 0
        self._admitted = 0
        self._t_done = 0.0
        #: offered work (seconds) since the last elastic window reset
        self._window_work = 0.0

    # -- request lifecycle ----------------------------------------------
    def _offer(self, spec: TenantSpec, svc_rng, now: float) -> None:
        stats = self.stats
        stats.counter("requests_offered").increment()
        self.slo.offered[spec.name] += 1
        bucket = self.buckets.get(spec.name)
        if bucket is not None and not bucket.try_take(now):
            stats.counter("requests_rejected").increment()
            self.slo.rejected[spec.name] += 1
            return
        stats.counter("requests_admitted").increment()
        self._admitted += 1
        request = _Request(spec.name, now)
        targets = self.policy.select(self.cluster, self._dispatch_rng, now)
        if (
            self.recorder.enabled
            and self._admitted % self.config.span_sample == 0
        ):
            request.span = self.recorder.begin(
                now, f"trf.request.{spec.name}", "request",
                pid=targets[0], tid=0,
            )
        if len(targets) > 1:
            stats.counter("requests_cloned").increment()
        for server_id in targets:
            size = spec.service.sample(svc_rng)
            stats.tally("request_work").observe(size)
            self._window_work += size
            clone = Clone(request, size)
            request.clones.append(clone)
            stats.counter("clones_dispatched").increment()
            self.cluster.servers[server_id].admit(clone, now)
        self._outstanding += 1

    def _on_clone_complete(self, clone: Clone, now: float) -> None:
        request = clone.request
        if request.done:  # pragma: no cover - siblings are cancelled below
            return
        request.done = True
        stats = self.stats
        for sibling in request.clones:
            if sibling is not clone and sibling.alive and sibling.server is not None:
                sibling.server.remove(sibling, now)
                stats.counter("clones_cancelled").increment()
        latency = now - request.t0
        self.slo.observe(request.tenant, latency)
        stats.counter("requests_completed").increment()
        stats.tally("response_time").observe(latency)
        if request.span is not None:
            self.recorder.end(request.span, now)
        request.clones.clear()
        self._outstanding -= 1
        if self._outstanding == 0 and self._generators_live == 0:
            self._t_done = now

    # -- processes -------------------------------------------------------
    def _tenant_proc(self, spec: TenantSpec) -> Generator:
        next_gap = spec.arrivals.gaps(self.streams.stream(f"trf.arr.{spec.name}"))
        svc_rng = self.streams.stream(f"trf.svc.{spec.name}")
        sim = self.sim
        for _ in range(spec.n_requests):
            yield sim.timeout(next_gap(), name="trf.arrival")
            self._offer(spec, svc_rng, sim.now)
        self._generators_live -= 1
        if self._generators_live == 0 and self._outstanding == 0:
            self._t_done = sim.now

    def _elastic_proc(self, cfg: ElasticConfig) -> Generator:
        sim = self.sim
        while True:
            yield sim.timeout(cfg.interval, name="trf.elastic")
            if self._generators_live == 0 and self._outstanding == 0:
                return
            rate = self._window_work / cfg.interval
            self._window_work = 0.0
            desired = math.ceil(
                rate / (cfg.target_util * self.config.server_rate)
            )
            floor = max(cfg.min_servers, self.policy.n_clones)
            desired = max(floor, min(cfg.max_servers, desired))
            current = self.cluster.n_active
            if desired > current:
                self.cluster.grow(desired - current)
                for server in self.cluster.servers:
                    if server.on_complete is None:
                        server.on_complete = self._on_clone_complete
            elif desired < current:
                self.cluster.shrink(current - desired)

    def _crash_proc(self) -> Generator:
        sim = self.sim
        for plan in sorted(self.config.crashes, key=lambda p: (p.at, p.kernel_id)):
            if plan.at > sim.now:
                yield sim.timeout(plan.at - sim.now, name="trf.crash")
            lost = self.cluster.crash(plan.kernel_id)
            self._reassign(lost, sim.now)
            if plan.restart_after is not None:
                sim.process(
                    self._restart_proc(plan.kernel_id, plan.restart_after),
                    name="trf.restart",
                )

    def _restart_proc(self, server_id: int, after: float) -> Generator:
        yield self.sim.timeout(after)
        self.cluster.restart(server_id)
        server = self.cluster.servers[server_id]
        if server.on_complete is None:  # pragma: no cover - set at build time
            server.on_complete = self._on_clone_complete

    def _reassign(self, lost: List[Clone], now: float) -> None:
        """Re-dispatch requests whose every clone died with the server.

        A lost clone whose request still has a live sibling needs nothing:
        cancel-on-first-complete already treats it as cancelled.  A request
        left with *no* live clone is re-dispatched (same size, uniform
        random placement over the surviving active set) — open requests
        survive a crash campaign; only their latency pays.
        """
        stats = self.stats
        for clone in lost:
            request = clone.request
            if request.done:
                continue
            if any(c.alive for c in request.clones):
                continue
            active = self.cluster.active
            server_id = active[self._dispatch_rng.randrange(len(active))]
            replacement = Clone(request, clone.size)
            request.clones.append(replacement)
            stats.counter("requests_reassigned").increment()
            self.slo.reassigned[request.tenant] += 1
            self.cluster.servers[server_id].admit(replacement, now)

    # -- driving ---------------------------------------------------------
    def run(self) -> TrafficResult:
        config = self.config
        sim = self.sim
        self._generators_live = len(config.tenants)
        for spec in config.tenants:
            sim.process(self._tenant_proc(spec), name=f"trf.tenant.{spec.name}")
        if config.elastic is not None:
            sim.process(self._elastic_proc(config.elastic), name="trf.elastic")
        if config.crashes:
            sim.process(self._crash_proc(), name="trf.crashes")
        if self.sampler is not None:
            self.sampler.start()
        sim.run()
        elapsed = self._t_done if self._t_done > 0 else sim.now
        per_tenant = {
            spec.name: self.slo.tenant_summary(spec.name, elapsed)
            for spec in config.tenants
        }
        overall = self.slo.overall.summary()
        series = {}
        if self.sampler is not None:
            series = {
                name: s.items() for name, s in sorted(self.sampler.series.items())
            }
        return TrafficResult(
            config_policy=config.policy,
            seed=config.seed,
            elapsed=elapsed,
            per_tenant=per_tenant,
            overall=overall,
            stats=self.stats.snapshot(),
            sim_events=sim.events_processed,
            servers_final=self.cluster.n_active,
            utilisation=self.cluster.utilisation(elapsed),
            series=series,
            spans=self.recorder if config.obs_trace else None,
        )


def run_traffic(config: TrafficConfig) -> TrafficResult:
    """Build a fresh engine for ``config``, run it to completion."""
    return TrafficEngine(config).run()
