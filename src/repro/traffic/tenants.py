"""Tenants and admission control.

A :class:`TenantSpec` describes one customer of the shared service: its
arrival process, its service-time distribution, how many requests it
offers, and (optionally) a :class:`QuotaConfig` token-bucket quota.
Admission control happens *before* dispatch: a request that finds its
tenant's bucket empty is rejected immediately (the multi-tenant
fairness mechanism — one tenant's flash crowd cannot starve another's
quota), counted per tenant in the SLO tracker.

The token bucket refills lazily from the simulated clock, so it adds no
events and no RNG draws — admission is a pure function of the arrival
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ConfigurationError

__all__ = ["QuotaConfig", "TokenBucket", "TenantSpec"]


@dataclass(frozen=True)
class QuotaConfig:
    """Token-bucket quota: sustained ``rate`` req/s, ``burst`` tokens deep."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigurationError(f"quota burst must be >= 1, got {self.burst}")


class TokenBucket:
    """Lazily refilled token bucket (no events, no randomness)."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, config: QuotaConfig, now: float):
        self.rate = config.rate
        self.burst = config.burst
        self.tokens = config.burst  # starts full
        self._last = now

    def try_take(self, now: float) -> bool:
        """Admit one request if a token is available at ``now``."""
        tokens = self.tokens + (now - self._last) * self.rate
        if tokens > self.burst:
            tokens = self.burst
        self._last = now
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            return True
        self.tokens = tokens
        return False


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the multi-tenant request service."""

    name: str
    #: arrival process (PoissonArrivals / MMPPArrivals)
    arrivals: Any
    #: service-time distribution (Exponential / Pareto / Deterministic)
    service: Any
    #: open-loop request budget for the run
    n_requests: int
    #: optional admission quota; None = never reject
    quota: Optional[QuotaConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name cannot be empty")
        if self.n_requests < 1:
            raise ConfigurationError(
                f"tenant {self.name!r} needs n_requests >= 1, got {self.n_requests}"
            )
