"""Pluggable dispatch policies: where does the next request go?

A policy maps one admitted request to one or more target servers out of
the cluster's *active* set.  The menu reproduces the comparison in the
PS request-cloning report:

========================  ==================================================
``random``                uniform over active servers — the baseline
``rr``                    round-robin over active servers
``jsq``                   join-shortest-queue (fewest resident jobs,
                          lowest id breaks ties)
``lwl``                   least-work-left (smallest unfinished work,
                          lowest id breaks ties) — JSQ with size info
``clone-<d>``             clone-to-d with cancel-on-first-complete,
                          *cluster-split* variant: the active servers are
                          partitioned into groups of ``d``; a request
                          picks a group uniformly and runs one clone on
                          every member.  Synchronized clones on PS
                          servers make the group behave as M/G/1-PS fed
                          by ``min`` of ``d`` service draws — the case
                          the report solves exactly.
========================  ==================================================

Policies are deterministic given the dispatch RNG stream: ``random``
and ``clone-<d>`` draw exactly one ``randrange`` per request, the
others draw none, so switching policies never perturbs the arrival or
service streams (common-random-numbers comparisons stay paired).
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError

__all__ = ["DispatchPolicy", "make_policy", "POLICY_NAMES"]

#: the policy spellings ``make_policy`` accepts (``clone-<d>`` for any d >= 2)
POLICY_NAMES = ("random", "rr", "jsq", "lwl", "clone-<d>")


class DispatchPolicy:
    """Base: picks target server ids for each request."""

    #: how many clones each request fans out to
    n_clones = 1

    name = "base"

    def select(self, cluster, rng, now: float) -> List[int]:
        raise NotImplementedError


class RandomPolicy(DispatchPolicy):
    """Uniform random over active servers."""

    name = "random"

    def select(self, cluster, rng, now: float) -> List[int]:
        active = cluster.active
        return [active[rng.randrange(len(active))]]


class RoundRobinPolicy(DispatchPolicy):
    """Cycle through the active list; position survives elasticity."""

    name = "rr"

    def __init__(self):
        self._next = 0

    def select(self, cluster, rng, now: float) -> List[int]:
        active = cluster.active
        index = self._next % len(active)
        self._next = index + 1
        return [active[index]]


class JSQPolicy(DispatchPolicy):
    """Join-shortest-queue: fewest resident jobs wins, lowest id tiebreak."""

    name = "jsq"

    def select(self, cluster, rng, now: float) -> List[int]:
        servers = cluster.servers
        best = min(cluster.active, key=lambda i: (servers[i].queue_len, i))
        return [best]


class LWLPolicy(DispatchPolicy):
    """Least-work-left: smallest unfinished work, lowest id tiebreak."""

    name = "lwl"

    def select(self, cluster, rng, now: float) -> List[int]:
        servers = cluster.servers
        best = min(cluster.active, key=lambda i: (servers[i].work_left(now), i))
        return [best]


class ClonePolicy(DispatchPolicy):
    """Cluster-split clone-to-d with cancel-on-first-complete.

    The active list (ascending ids) is partitioned into consecutive
    groups of ``d``; a trailing remainder short of ``d`` servers is left
    out of the rotation (logged by the engine as unused capacity).  One
    uniform draw picks the group; the engine places one clone per
    member and cancels the laggards when the first finishes.
    """

    def __init__(self, d: int):
        if d < 2:
            raise ConfigurationError(f"clone-to-d needs d >= 2, got {d}")
        self.d = d
        self.n_clones = d
        self.name = f"clone-{d}"

    def select(self, cluster, rng, now: float) -> List[int]:
        active = cluster.active
        n_groups = len(active) // self.d
        if n_groups < 1:
            raise ConfigurationError(
                f"{self.name} needs at least {self.d} active servers, "
                f"have {len(active)}"
            )
        group = rng.randrange(n_groups)
        start = group * self.d
        return active[start:start + self.d]


def make_policy(name: str) -> DispatchPolicy:
    """Build a policy from its CLI spelling (see :data:`POLICY_NAMES`)."""
    if name == "random":
        return RandomPolicy()
    if name == "rr":
        return RoundRobinPolicy()
    if name == "jsq":
        return JSQPolicy()
    if name == "lwl":
        return LWLPolicy()
    if name.startswith("clone-"):
        _, _, suffix = name.partition("-")
        try:
            d = int(suffix)
        except ValueError:
            raise ConfigurationError(f"bad clone policy spec {name!r}")
        return ClonePolicy(d)
    raise ConfigurationError(
        f"unknown dispatch policy {name!r} (one of: {', '.join(POLICY_NAMES)})"
    )
