"""repro.traffic — multi-tenant cloud-service traffic on the SSI cluster.

The north-star workload: millions of simulated users offering open-loop
request traffic to the cluster-as-one-machine, with admission control,
elastic capacity, request cloning, and SLO metrics.  Validated against
the PS request-cloning reproducibility report (Pellegrini 2020, arXiv
2002.04416); see docs/traffic.md.

* :mod:`~repro.traffic.arrivals` — Poisson/MMPP arrivals, Exp/Pareto/Det
  service distributions, all seed-deterministic
* :mod:`~repro.traffic.tenants` — tenant specs and token-bucket quotas
* :mod:`~repro.traffic.service` — virtual-time PS servers, elastic cluster
* :mod:`~repro.traffic.policies` — random / rr / jsq / lwl / clone-to-d
* :mod:`~repro.traffic.engine` — the open-loop run driver
* :mod:`~repro.traffic.slo` — deterministic latency histograms, SLO tracking
* :mod:`~repro.traffic.analytic` — M/G/1-PS closed forms for the gate
* :mod:`~repro.traffic.bench` — the committed BENCH_traffic.json matrix
* :mod:`~repro.traffic.cluster_backend` — small-scale full-stack mode on
  the real DSE cluster (transports, burst loss, crash campaigns)
"""

from .arrivals import (
    Deterministic,
    Exponential,
    MMPPArrivals,
    Pareto,
    PoissonArrivals,
    make_arrivals,
    make_service,
)
from .engine import (
    ElasticConfig,
    TrafficConfig,
    TrafficEngine,
    TrafficResult,
    run_traffic,
)
from .policies import POLICY_NAMES, make_policy
from .service import Clone, PSServer, VirtualCluster
from .slo import LatencyHistogram, SLOTracker
from .tenants import QuotaConfig, TenantSpec, TokenBucket

__all__ = [
    "PoissonArrivals",
    "MMPPArrivals",
    "Exponential",
    "Pareto",
    "Deterministic",
    "make_arrivals",
    "make_service",
    "QuotaConfig",
    "TenantSpec",
    "TokenBucket",
    "Clone",
    "PSServer",
    "VirtualCluster",
    "POLICY_NAMES",
    "make_policy",
    "LatencyHistogram",
    "SLOTracker",
    "ElasticConfig",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficResult",
    "run_traffic",
]
