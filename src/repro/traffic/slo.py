"""SLO metrics: deterministic latency percentiles, goodput, queue series.

Response-time percentiles (p50/p99/p999) over millions of requests
cannot keep every sample, so :class:`LatencyHistogram` buckets samples
geometrically.  The bucket index is computed from ``math.frexp`` —
*exact* float decomposition, no ``log`` — so two runs (or two worker
processes in a ``--jobs N`` sweep) bucket identically on any libm, and
the committed ``BENCH_traffic.json`` trajectory can be compared
bit-for-bit across machines.

Resolution: ``SUBDIV`` sub-buckets per power of two, i.e. a relative
bucket width of ``2**(1/SUBDIV) - 1`` (~4.4%% at the default 16) —
plenty for SLO curves, and histograms merge by plain counter addition.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = ["LatencyHistogram", "SLOTracker"]

#: sub-buckets per power of two (relative resolution ~4.4%)
SUBDIV = 16

#: quantiles every summary reports, with their JSON key names
QUANTILES = ((0.50, "p50"), (0.99, "p99"), (0.999, "p999"))


class LatencyHistogram:
    """Geometric histogram over positive latencies, exactly mergeable."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    @staticmethod
    def bucket_of(value: float) -> int:
        """Exact geometric bucket index of a positive float.

        ``frexp`` gives ``value = m * 2**e`` with ``m`` in [0.5, 1); the
        bucket is ``e * SUBDIV`` plus which of the SUBDIV equal mantissa
        slices ``m`` falls in.  All operations are exact in IEEE-754.
        """
        m, e = math.frexp(value)
        return e * SUBDIV + int((m - 0.5) * 2.0 * SUBDIV)

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[float, float]:
        """The [lo, hi) latency range of one bucket index."""
        e, sub = divmod(index, SUBDIV)
        lo = math.ldexp(0.5 + sub / (2.0 * SUBDIV), e)
        hi = math.ldexp(0.5 + (sub + 1) / (2.0 * SUBDIV), e)
        return lo, hi

    def observe(self, value: float) -> None:
        if value <= 0.0:
            # Zero-latency requests (an empty service sample rounded off)
            # land in the smallest representable bucket.
            value = 5e-324
        index = self.bucket_of(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LatencyHistogram") -> None:
        for index, n in sorted(other.buckets.items()):
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile as the midpoint of the covering bucket.

        Deterministic and exactly reproducible; accurate to the bucket
        resolution (~4.4%).  Returns 0.0 on an empty histogram.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                lo, hi = self.bucket_bounds(index)
                return (lo + hi) / 2.0
        lo, hi = self.bucket_bounds(max(self.buckets))
        return (lo + hi) / 2.0  # pragma: no cover - float-edge fallback

    def summary(self) -> Dict[str, float]:
        """The JSON-safe percentile summary (keys sorted by the caller)."""
        out = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }
        for q, key in QUANTILES:
            out[key] = self.quantile(q)
        return out


class SLOTracker:
    """Per-tenant and overall SLO bookkeeping for one traffic run."""

    __slots__ = ("tenants", "overall", "offered", "rejected", "completed", "reassigned")

    def __init__(self, tenant_names: List[str]):
        self.tenants: Dict[str, LatencyHistogram] = {
            name: LatencyHistogram() for name in tenant_names
        }
        self.overall = LatencyHistogram()
        self.offered: Dict[str, int] = {name: 0 for name in tenant_names}
        self.rejected: Dict[str, int] = {name: 0 for name in tenant_names}
        self.completed: Dict[str, int] = {name: 0 for name in tenant_names}
        self.reassigned: Dict[str, int] = {name: 0 for name in tenant_names}

    def observe(self, tenant: str, latency: float) -> None:
        self.tenants[tenant].observe(latency)
        self.overall.observe(latency)
        self.completed[tenant] += 1

    def goodput(self, tenant: str, elapsed: float) -> float:
        """Completed requests per simulated second for one tenant."""
        return self.completed[tenant] / elapsed if elapsed > 0 else 0.0

    def tenant_summary(self, tenant: str, elapsed: float) -> Dict[str, float]:
        out = self.tenants[tenant].summary()
        out["offered"] = self.offered[tenant]
        out["rejected"] = self.rejected[tenant]
        out["reassigned"] = self.reassigned[tenant]
        out["goodput_rps"] = self.goodput(tenant, elapsed)
        return out
