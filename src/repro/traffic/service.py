"""Processor-sharing servers and the elastic virtual cluster.

Each backend node is a :class:`PSServer`: an egalitarian processor-
sharing queue (every resident job receives ``rate / n`` service), the
model the PS request-cloning report builds on and the same discipline
the OS layer's CPU scheduler implements for real guest processes.

The implementation is the classic *virtual time* construction, chosen
so a million-request run stays tractable on the event engine:

* the server's virtual clock ``V`` advances at ``rate / n(t)``;
* a job admitted at ``V0`` with ``size`` seconds of work departs when
  ``V`` reaches ``V0 + size`` — a constant, computed once;
* departures are a min-heap on that finish virtual time with lazy
  deletion (cancelled clones stay in the heap, dead), and exactly one
  armed :class:`~repro.sim.core.Timeout` per server covers the next
  departure.  Every arrival/removal cancels and re-arms it — the exact
  timer-churn pattern the engine's Timeout free-list was built for.

So one request costs O(log n) heap work and ~2 events end to end,
independent of how many jobs share the server.

:class:`VirtualCluster` holds the server pool and makes it *elastic*:
``grow``/``shrink`` add capacity or drain it away (a shrinking server
finishes its residents, accepts nothing new, then parks), and ``crash``
/ ``restart`` model node failures for the resilience story.  Servers
register themselves as SSI service endpoints in a
:class:`repro.ssi.endpoints.ServiceDirectory`, so placement-aware
callers resolve the same live view the dispatcher uses.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..sim.core import Simulator
from ..ssi.endpoints import ServiceDirectory

__all__ = ["Clone", "PSServer", "VirtualCluster"]


class Clone:
    """One copy of a request resident on one server."""

    __slots__ = ("request", "size", "server", "vfinish", "alive")

    def __init__(self, request: Any, size: float):
        self.request = request
        self.size = size
        self.server: Optional["PSServer"] = None
        self.vfinish = 0.0
        #: False once completed, cancelled, or lost to a crash
        self.alive = True


class PSServer:
    """An egalitarian processor-sharing queue with virtual-time departures."""

    __slots__ = (
        "sim", "server_id", "rate", "jobs", "_heap", "_vtime", "_vlast",
        "_timer", "on_complete", "up", "draining", "busy_area", "completed",
    )

    def __init__(self, sim: Simulator, server_id: int, rate: float = 1.0):
        if rate <= 0:
            raise ConfigurationError(f"server rate must be > 0, got {rate}")
        self.sim = sim
        self.server_id = server_id
        self.rate = rate
        #: live clones resident on this server
        self.jobs: Dict[int, Clone] = {}
        #: min-heap of [vfinish, seq, clone] with lazy deletion
        self._heap: List[list] = []
        self._vtime = 0.0
        self._vlast = sim.now
        self._timer = None
        #: called as on_complete(clone, now) when a clone finishes
        self.on_complete: Optional[Callable[[Clone, float], None]] = None
        self.up = True
        self.draining = False
        #: integral of "has at least one job" over time (utilisation)
        self.busy_area = 0.0
        self.completed = 0

    # -- virtual clock ---------------------------------------------------
    def _advance(self, now: float) -> None:
        n = len(self.jobs)
        if n:
            dt = now - self._vlast
            self._vtime += dt * self.rate / n
            self.busy_area += dt
        self._vlast = now

    def work_left(self, now: float) -> float:
        """Total unfinished work resident on the server (read-only)."""
        n = len(self.jobs)
        if not n:
            return 0.0
        v = self._vtime + (now - self._vlast) * self.rate / n
        return sum(c.vfinish for c in self.jobs.values()) - n * v

    @property
    def queue_len(self) -> int:
        return len(self.jobs)

    # -- membership ------------------------------------------------------
    def admit(self, clone: Clone, now: float) -> None:
        self._advance(now)
        clone.server = self
        clone.vfinish = self._vtime + clone.size
        self.jobs[id(clone)] = clone
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(self._heap, [clone.vfinish, seq, clone])
        self._rearm()

    def remove(self, clone: Clone, now: float) -> None:
        """Cancel a resident clone (sibling won the race, or reassigned)."""
        if not clone.alive or clone.server is not self:
            return
        self._advance(now)
        clone.alive = False
        clone.server = None
        del self.jobs[id(clone)]
        self._rearm()

    # -- departures ------------------------------------------------------
    def _rearm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()  # owner-only cancel: recycled via the pool
            self._timer = None
        heap = self._heap
        while heap and not heap[0][2].alive:
            heappop(heap)
        if not heap or not self.up:
            return
        n = len(self.jobs)
        delay = (heap[0][0] - self._vtime) * n / self.rate
        if delay < 0.0:
            delay = 0.0
        self._timer = timer = self.sim.timeout(delay, name="trf.depart")
        timer.callbacks.append(self._on_depart)

    def _on_depart(self, _event) -> None:
        now = self.sim.now
        self._advance(now)
        self._timer = None
        heap = self._heap
        while heap and not heap[0][2].alive:
            heappop(heap)
        if not heap:  # pragma: no cover - cancelled between arm and fire
            return
        clone = heappop(heap)[2]
        clone.alive = False
        clone.server = None
        del self.jobs[id(clone)]
        self.completed += 1
        self._rearm()
        # Callback last: it may cancel sibling clones on other servers.
        if self.on_complete is not None:
            self.on_complete(clone, now)

    # -- failures --------------------------------------------------------
    def crash(self, now: float) -> List[Clone]:
        """Take the server down; returns the clones lost with it."""
        self._advance(now)
        self.up = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        lost = [self.jobs[key] for key in sorted(self.jobs)]
        for clone in lost:
            clone.alive = False
            clone.server = None
        self.jobs.clear()
        self._heap.clear()
        return lost

    def restart(self, now: float) -> None:
        self._advance(now)
        self.up = True
        self.draining = False


class VirtualCluster:
    """An elastic pool of PS servers behind one SSI service name."""

    def __init__(
        self,
        sim: Simulator,
        n_servers: int,
        rate: float = 1.0,
        service_name: str = "svc",
        directory: Optional[ServiceDirectory] = None,
        stats=None,
        max_servers: Optional[int] = None,
    ):
        if n_servers < 1:
            raise ConfigurationError(f"need at least one server, got {n_servers}")
        self.sim = sim
        self.rate = rate
        self.service_name = service_name
        self.directory = directory if directory is not None else ServiceDirectory()
        self.stats = stats
        self.max_servers = max_servers
        self.servers: List[PSServer] = []
        #: ids of servers accepting new work, ascending
        self.active: List[int] = []
        #: deactivated servers still finishing resident jobs
        self.draining: List[int] = []
        for _ in range(n_servers):
            self._add_server()

    # -- pool management -------------------------------------------------
    def _add_server(self) -> PSServer:
        server = PSServer(self.sim, len(self.servers), self.rate)
        self.servers.append(server)
        self.active.append(server.server_id)
        self.directory.register(self.service_name, server.server_id, self.sim.now)
        if self.stats is not None:
            self.stats.counter("servers_added").increment()
        return server

    @property
    def n_active(self) -> int:
        return len(self.active)

    def active_servers(self) -> List[PSServer]:
        return [self.servers[i] for i in self.active]

    def grow(self, k: int) -> int:
        """Activate ``k`` more servers (un-park drained ones first)."""
        added = 0
        for _ in range(k):
            if self.max_servers is not None and self.n_active >= self.max_servers:
                break
            parked = [
                s.server_id for s in self.servers
                if s.up and not s.jobs and s.draining
                and s.server_id not in self.active
            ]
            if parked:
                sid = parked[0]
                self.servers[sid].draining = False
                self.draining = [i for i in self.draining if i != sid]
                self.active.append(sid)
                self.active.sort()
                self.directory.register(self.service_name, sid, self.sim.now)
                if self.stats is not None:
                    self.stats.counter("servers_added").increment()
            else:
                self._add_server()
            added += 1
        return added

    def shrink(self, k: int) -> int:
        """Deactivate the ``k`` highest-id active servers (never the last).

        A deactivated server stops receiving work immediately and drains
        its resident jobs to completion — requests are never killed by a
        scale-down decision.
        """
        removed = 0
        for _ in range(k):
            if len(self.active) <= 1:
                break
            sid = self.active.pop()  # highest id (list is ascending)
            server = self.servers[sid]
            server.draining = True
            self.draining.append(sid)
            self.directory.deregister(self.service_name, sid, self.sim.now)
            if self.stats is not None:
                self.stats.counter("servers_removed").increment()
            removed += 1
        return removed

    # -- failures --------------------------------------------------------
    def crash(self, server_id: int) -> List[Clone]:
        """Crash one server; returns the clones that were lost on it."""
        server = self.servers[server_id]
        if not server.up:
            return []
        lost = server.crash(self.sim.now)
        if server_id in self.active:
            self.active.remove(server_id)
            self.directory.deregister(self.service_name, server_id, self.sim.now)
        self.draining = [i for i in self.draining if i != server_id]
        if self.stats is not None:
            self.stats.counter("server_crashes").increment()
        return lost

    def restart(self, server_id: int) -> None:
        server = self.servers[server_id]
        if server.up:
            return
        server.restart(self.sim.now)
        self.active.append(server_id)
        self.active.sort()
        self.directory.register(self.service_name, server_id, self.sim.now)
        if self.stats is not None:
            self.stats.counter("server_restarts").increment()

    # -- observability ---------------------------------------------------
    def total_queue(self) -> int:
        return sum(s.queue_len for s in self.servers)

    def utilisation(self, now: float, start: float = 0.0) -> float:
        """Mean busy fraction across all servers over [start, now]."""
        span = now - start
        if span <= 0:
            return 0.0
        areas = []
        for server in self.servers:
            busy = server.busy_area
            if server.jobs:  # account the open busy interval
                busy += now - server._vlast
            areas.append(busy / span)
        return sum(areas) / len(areas) if areas else 0.0
