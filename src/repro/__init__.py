"""repro — a reproduction of the DSE portable cluster computing environment
with Single System Image support (Asazu, Apduhan, Arita; ICPP 1999).

The package layers, bottom to top:

* :mod:`repro.sim` — discrete-event simulation engine.
* :mod:`repro.hardware` — CPU/OS cost models for the paper's three platforms.
* :mod:`repro.network` — CSMA/CD shared-bus Ethernet (and a switched ablation).
* :mod:`repro.protocol` — datagram/reliable transports with protocol-processing costs.
* :mod:`repro.osmodel` — UNIX machines: scheduler, syscalls, signals, sockets.
* :mod:`repro.dse` — the paper's contribution: the DSE kernel as a parallel
  processing library (process management, global memory / DSM, message
  exchange) plus the Parallel API library.
* :mod:`repro.ssi` — single-system-image services on top of DSE.
* :mod:`repro.mp` — PVM/MPI-style message-passing baseline.
* :mod:`repro.apps` — the four paper applications.
* :mod:`repro.experiments` — the harness that regenerates every figure.

Quickstart::

    from repro.dse import ClusterConfig, run_parallel
    from repro.hardware import get_platform

    def worker(api):
        rank = api.rank
        yield from api.gm_write(0, 8 * rank, [float(rank)])
        yield from api.barrier("done")
        return rank

    config = ClusterConfig(platform=get_platform("linux"), n_processors=4)
    result = run_parallel(config, worker)
    print(result.elapsed, result.returns)
"""

from .errors import (
    ApplicationError,
    ConfigurationError,
    DSEError,
    GlobalMemoryError,
    NetworkError,
    OSModelError,
    ProcessManagementError,
    ProtocolError,
    ReproError,
    SSIError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ApplicationError",
    "ConfigurationError",
    "DSEError",
    "GlobalMemoryError",
    "NetworkError",
    "OSModelError",
    "ProcessManagementError",
    "ProtocolError",
    "ReproError",
    "SSIError",
]
