"""Closed-form performance models, validated against the simulator.

Back-of-envelope models of the bulk-synchronous applications from first
principles — the same platform constants the simulator charges, combined
analytically instead of event by event.  The model-vs-simulation tests
keep both honest: if a refactor of the runtime changes behaviour in a way
the physics does not justify, the validation bench catches it.

Model shape for one bulk-synchronous phase on ``p`` processors over ``M``
machines:

* compute: ``C/p``, inflated by the virtual-cluster co-location factor
  (``ceil(p/M)`` kernels share a CPU, with the context-switch tax);
* communication: each worker performs its round trips (fixed per-message
  CPU cost + per-byte protocol cost + wire time), while the shared bus
  serialises the *total* byte volume — the phase cannot beat the bus;
* synchronisation: one barrier round trip per phase.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..dse.messages import HEADER_BYTES, WORD_BYTES
from ..hardware.platform import PlatformSpec

__all__ = ["message_cost", "barrier_cost", "predict_gauss_seidel", "colocation_factor"]


def colocation_factor(p: int, machines: int, platform: PlatformSpec) -> float:
    """Slowdown of compute when kernels double up (processor sharing)."""
    used = min(p, machines)
    per_machine = math.ceil(p / used)
    if per_machine <= 1:
        return 1.0
    tax = 1.0 + platform.os_costs.context_switch / platform.os_costs.timeslice
    return per_machine * tax


def message_cost(
    platform: PlatformSpec, payload_bytes: int, rate_bps: float = 10e6
) -> float:
    """End-to-end time of one request/response round trip carrying
    ``payload_bytes`` of data one way (headers folded in approximately)."""
    costs = platform.os_costs
    per_msg_cpu = (
        2 * costs.syscall * 1.5  # sendto + recvfrom weights
        + 2 * costs.protocol_per_message
        + costs.signal_delivery
        + costs.context_switch
    )
    data = payload_bytes + HEADER_BYTES
    # Request (header only) + response (header + data) on the wire.
    wire = (2 * (HEADER_BYTES + 54) + data) * 8 / rate_bps
    byte_cpu = 2 * costs.protocol_per_byte * data
    return 2 * per_msg_cpu + byte_cpu + wire


def barrier_cost(platform: PlatformSpec, p: int, rate_bps: float = 10e6) -> float:
    """A p-party barrier: p request/response pairs through kernel 0,
    serialised at the coordinator's CPU and the bus."""
    if p <= 1:
        return 0.0
    return p * message_cost(platform, 0, rate_bps) * 0.6  # replies overlap


def predict_gauss_seidel(
    platform: PlatformSpec,
    n: int,
    sweeps: int,
    procs: Sequence[int],
    machines: int = 6,
    rate_bps: float = 10e6,
) -> Dict[int, float]:
    """Predicted execution time of the parallel block Gauss-Seidel."""
    cpu = platform.cpu
    # One sweep of the full system (flops + streamed memory traffic).
    sweep_compute = (2.0 * n * n + n) / (cpu.mflops * 1e6) + (n * n) / (
        cpu.mmemops * 1e6
    )
    out: Dict[int, float] = {}
    for p in procs:
        if p == 1:
            out[p] = sweeps * sweep_compute
            continue
        compute = sweep_compute / p * colocation_factor(p, machines, platform)
        # Each worker reads p-1 remote blocks of ~n/p words per sweep.
        block_bytes = (n / p) * WORD_BYTES
        per_worker_comm = (p - 1) * message_cost(platform, block_bytes, rate_bps)
        # The shared bus serialises the total volume: p workers x (p-1) blocks.
        bus = p * (p - 1) * (block_bytes + HEADER_BYTES + 54) * 8 / rate_bps
        comm = max(per_worker_comm, bus)
        # Two barriers per sweep: one separating the gather from the
        # writes (race-freedom, see gauss_seidel_worker) and the
        # end-of-sweep barrier.
        out[p] = sweeps * (
            compute + comm + 2 * barrier_cost(platform, p, rate_bps)
        )
    return out
