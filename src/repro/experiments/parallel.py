"""Multicore experiment runner with a content-addressed result cache.

Sweep points (scale grid cells, figure workloads) are *independent
simulations*, so the experiment layer can fan them across a
:mod:`multiprocessing` pool — each worker process runs its own event loop —
and merge the results deterministically.  Two properties make this safe:

* **Determinism**: every point is a pure function of its parameters (all
  randomness is seeded), so where/when a point runs cannot change its
  result — only its wall-clock.  Merged output is byte-identical for
  ``--jobs 1``, ``--jobs N``, and a warm cache (asserted by tests).
* **Content addressing**: a point's cache key is the SHA-256 of its
  canonical parameters plus a fingerprint of the entire ``repro`` source
  tree, so editing *any* model code invalidates every cached result — no
  stale-cache hazards, at the cost of over-invalidation (acceptable: the
  cache is a convenience, correctness never depends on it).

Cached values must be JSON-serialisable; keep wall-clock fields out of
anything you compare across runs (they are the one nondeterministic part).

The cache lives under ``$REPRO_CACHE_DIR`` (default ``.repro_cache/`` in
the current directory); writes are atomic (write-then-rename), so parallel
writers — even across concurrent sweeps — cannot tear an entry.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "code_fingerprint",
    "canonical_params",
    "cache_key",
    "ResultCache",
    "run_tasks",
]

#: package root of the ``repro`` source tree (fingerprinted wholesale)
_PKG_ROOT = Path(__file__).resolve().parents[1]

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process: simulation results depend only on the model
    code and the parameters, so this plus the canonical parameters is a
    sound cache key.  Any edit anywhere in ``repro`` invalidates everything.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        digest = hashlib.sha256()
        for path in sorted(_PKG_ROOT.rglob("*.py")):
            digest.update(str(path.relative_to(_PKG_ROOT)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


def canonical_params(params: Any) -> str:
    """Canonical JSON for a parameter object (sorted keys, no whitespace)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


def cache_key(
    namespace: str,
    params: Any,
    fingerprint: Optional[str] = None,
    shards: Any = None,
) -> str:
    """Content address of one task: namespace + params + code fingerprint.

    ``shards`` is the execution-sharding identity (count, backend, shard
    map — see :mod:`repro.shard`) and is folded into the key separately
    from the task parameters: sharded and single-process runs of the same
    point must never collide in the cache, even for callers whose params
    don't mention sharding.  ``None`` is the unsharded legacy identity.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = (
        f"{namespace}\0{canonical_params(params)}\0{fingerprint}"
        f"\0shards={canonical_params(shards)}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk JSON store addressed by :func:`cache_key` digests."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or ``None`` (counts hit/miss)."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, json.JSONDecodeError):
            # Missing or torn entry: treat as a miss; a fresh put repairs it.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` atomically (write to a temp file, then rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def summary(self) -> str:
        return f"cache: {self.hits} hit(s), {self.misses} miss(es) at {self.root}"


def run_tasks(
    func: Callable[[Any], Any],
    params: Sequence[Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    namespace: str = "task",
    shards: Any = None,
) -> List[Any]:
    """Run ``func`` over ``params``, fanning uncached points across a pool.

    Results come back in ``params`` order regardless of completion order
    (``Pool.map`` preserves input order), so merged output is independent
    of scheduling.  ``func`` must be a module-level callable (fork pickles
    it by reference) and, when caching, must return JSON-serialisable
    values.  ``jobs <= 1`` runs everything in-process.  ``shards`` is the
    sweep's execution-sharding identity, passed to :func:`cache_key`.
    """
    results: List[Any] = [None] * len(params)
    pending: List[int] = []
    fingerprint = code_fingerprint() if cache is not None else None
    for i, p in enumerate(params):
        if cache is not None:
            hit = cache.get(cache_key(namespace, p, fingerprint, shards=shards))
            if hit is not None:
                results[i] = hit["value"]
                continue
        pending.append(i)

    if pending:
        todo = [params[i] for i in pending]
        if jobs > 1 and len(todo) > 1:
            with multiprocessing.Pool(processes=min(jobs, len(todo))) as pool:
                fresh = pool.map(func, todo)
        else:
            fresh = [func(p) for p in todo]
        for i, value in zip(pending, fresh):
            results[i] = value
            if cache is not None:
                cache.put(
                    cache_key(namespace, params[i], fingerprint, shards=shards),
                    {"value": value},
                )
    return results
