"""Large-virtual-cluster scaling experiments (``dse-experiments scale``).

The paper's measurements stop at 12 processors on 6 machines.  This module
asks what the same system model predicts for *large* virtual clusters —
tens to hundreds of nodes — where the two scaling levers added for that
regime matter: the switched fabric (``FabricConfig(kind="switch")``)
replaces the collision-bound shared bus, and global-memory batching
(``ClusterConfig(gmem_batching=True)``) coalesces the DSM chatter.

One measurement = one (workload, nodes, fabric, batching) point, reporting
the simulated elapsed time, achieved speed-up over one processor, total and
per-processor wire-message counts, and the *simulation cost* (host
wall-clock and events processed) so the engine's own scaling is visible
next to the model's.

Used three ways: the ``dse-experiments scale`` subcommand (see
:func:`scale_main`), ``benchmarks/bench_large_cluster.py``, and
``docs/scaling.md`` (whose quoted numbers come from the CLI).

Sweep points are independent simulations, so :func:`scale_sweep` can fan
them across worker processes (``jobs=N`` / ``--jobs N``) and reuse prior
results through the content-addressed cache (:mod:`repro.experiments.parallel`);
the merged output is byte-identical however the points were scheduled —
speed-ups are derived *after* the deterministic merge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..dse.config import ClusterConfig
from ..dse.runtime import run_parallel
from ..hardware.platforms import get_platform
from ..network.topology import FabricConfig
from ..util.tables import Table
from .parallel import ResultCache, run_tasks

__all__ = [
    "SCALE_WORKLOADS",
    "ScalePoint",
    "measure_scale_point",
    "scale_sweep",
    "scale_table",
    "sweep_canonical",
    "sweep_messages",
    "parse_int_list",
    "scale_main",
]


def _gauss_seidel_args(nodes: int, size: int) -> tuple:
    # Fixed problem size (strong scaling); every rank gets >= 1 row.
    return (max(size, nodes), 2, 7, False)


def _knights_tour_args(nodes: int, size: int) -> tuple:
    # Work divisions grow with the cluster, as the paper's Figures 19-21
    # vary "the number of divisions in the problem".
    return (max(2 * nodes, size), 5, 0)


#: workload key -> (import path, worker attr, args builder(nodes, size))
SCALE_WORKLOADS: Dict[str, Tuple[str, str, Callable[[int, int], tuple]]] = {
    "gauss-seidel": ("repro.apps.gauss_seidel", "gauss_seidel_worker", _gauss_seidel_args),
    "knights-tour": ("repro.apps.knights_tour", "knights_tour_worker", _knights_tour_args),
}

#: default problem size per workload (gauss-seidel: matrix order;
#: knights-tour: minimum job count)
DEFAULT_SIZE = {"gauss-seidel": 256, "knights-tour": 0}

#: default node grid: the paper's regime, then the large-cluster regime
DEFAULT_NODES = (6, 16, 32, 64)


@dataclass
class ScalePoint:
    """One (workload, nodes, fabric, batching) measurement."""

    workload: str
    nodes: int
    fabric: str
    batching: bool
    elapsed: float  # simulated seconds (processing phase, max over ranks)
    msgs: int  # wire messages across the whole run
    events: int  # simulation events processed (engine cost)
    wall_seconds: float  # host wall-clock of the simulation run
    speedup: Optional[float] = None  # vs the same workload on 1 processor
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def msgs_per_proc(self) -> float:
        return self.msgs / self.nodes

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "nodes": self.nodes,
            "fabric": self.fabric,
            "batching": self.batching,
            "elapsed": self.elapsed,
            "msgs": self.msgs,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "speedup": self.speedup,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScalePoint":
        return cls(**payload)


def _resolve_worker(workload: str) -> Callable[..., Generator]:
    import importlib

    try:
        module_name, attr, _ = SCALE_WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown scale workload {workload!r}; expected {sorted(SCALE_WORKLOADS)}"
        ) from None
    return getattr(importlib.import_module(module_name), attr)


def measure_scale_point(
    workload: str,
    nodes: int,
    fabric: str = "switch",
    batching: bool = True,
    machines: Optional[int] = None,
    platform: str = "linux",
    size: Optional[int] = None,
    shards: int = 0,
    shard_workers: str = "inline",
) -> ScalePoint:
    """Run one workload at ``nodes`` processors and collect the metrics.

    ``machines`` defaults to ``nodes`` — a real large cluster, one kernel
    per machine; pass fewer to study virtual-cluster doubling at scale.
    ``shards``/``shard_workers`` select sharded parallel-in-time execution
    (simulated results are byte-identical for every shard count; only
    ``wall_seconds`` changes — see docs/sharding.md).
    """
    worker = _resolve_worker(workload)
    args_of = SCALE_WORKLOADS[workload][2]
    args = args_of(nodes, DEFAULT_SIZE[workload] if size is None else size)
    config = ClusterConfig(
        platform=get_platform(platform),
        n_processors=nodes,
        n_machines=nodes if machines is None else machines,
        fabric=FabricConfig(kind=fabric),
        gmem_batching=batching,
        shards=shards,
        shard_workers=shard_workers,
    )
    start = time.perf_counter()
    result = run_parallel(config, worker, args=args)
    wall = time.perf_counter() - start
    elapsed = max(out["t1"] - out["t0"] for out in result.returns.values())
    return ScalePoint(
        workload=workload,
        nodes=nodes,
        fabric=fabric,
        batching=batching,
        elapsed=elapsed,
        msgs=int(result.stats["msgs_sent"]),
        events=result.sim_events,
        wall_seconds=wall,
        stats=result.stats,
    )


def _scale_task(params: dict) -> dict:
    """One sweep point as a picklable top-level task (pool workers fork
    this module by reference); returns a JSON-serialisable dict."""
    return measure_scale_point(**params).to_dict()


def scale_sweep(
    workload: str,
    nodes: Sequence[int] = DEFAULT_NODES,
    fabric: str = "switch",
    batching: bool = True,
    machines: Optional[int] = None,
    platform: str = "linux",
    size: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    shards: int = 0,
    shard_workers: str = "inline",
) -> List[ScalePoint]:
    """Measure a node grid and fill in speed-ups against one processor.

    ``jobs > 1`` fans the baseline and every grid point across a process
    pool; ``cache`` reuses prior identical runs.  Speed-ups are computed
    from the merged results, so output is independent of scheduling.
    ``shards`` runs every grid point under sharded execution (the
    one-processor baseline clamps to a single shard).
    """
    shard_common = {"shards": shards, "shard_workers": shard_workers}
    tasks = [
        {"workload": workload, "nodes": 1, "fabric": fabric, "batching": batching,
         "machines": 1, "platform": platform, "size": size,
         "shards": min(shards, 1), "shard_workers": shard_workers}
    ]
    for n in nodes:
        tasks.append(
            {"workload": workload, "nodes": n, "fabric": fabric, "batching": batching,
             "machines": machines, "platform": platform, "size": size,
             **shard_common}
        )
    raw = run_tasks(
        _scale_task,
        tasks,
        jobs=jobs,
        cache=cache,
        namespace="scale",
        shards=shard_common if shards else None,
    )
    baseline, *rest = [ScalePoint.from_dict(r) for r in raw]
    for point in rest:
        point.speedup = baseline.elapsed / point.elapsed if point.elapsed else None
    return rest


def scale_table(points: Sequence[ScalePoint], title: str = "large-cluster scaling") -> Table:
    """Render scale points as the report table the docs quote."""
    table = Table(
        [
            "workload", "nodes", "fabric", "batch",
            "elapsed(s)", "speedup", "msgs", "msgs/proc",
            "events", "wall(s)",
        ],
        title=title,
    )
    for p in points:
        table.add(
            p.workload,
            p.nodes,
            p.fabric,
            "on" if p.batching else "off",
            round(p.elapsed, 6),
            round(p.speedup, 2) if p.speedup else "-",
            p.msgs,
            round(p.msgs_per_proc, 1),
            p.events,
            round(p.wall_seconds, 1),
        )
    return table


def sweep_canonical(points: Sequence[ScalePoint]) -> str:
    """Deterministic JSON for a sweep (the ``--out`` format).

    Drops ``wall_seconds`` — the one nondeterministic field — so the output
    is byte-identical across ``--jobs`` settings and warm-cache reruns
    (asserted by tests and the CI perf job).
    """
    import json

    clean = []
    for p in points:
        d = p.to_dict()
        del d["wall_seconds"]
        clean.append(d)
    return json.dumps({"points": clean}, indent=2, sort_keys=True) + "\n"


# -- shared sweep helper (bench_message_scaling + bench_large_cluster) --------
def sweep_messages(
    worker: Callable[..., Generator],
    args: tuple,
    procs: Sequence[int],
    platform: str = "sunos",
    config_kwargs: Optional[dict] = None,
) -> Tuple[List[int], List[float]]:
    """Total wire messages and elapsed time at each processor count.

    The common core of the message-accounting benches: both
    ``bench_message_scaling`` and ``bench_large_cluster`` report columns
    produced by this function, so their numbers are directly comparable.
    """
    msgs: List[int] = []
    times: List[float] = []
    for p in procs:
        kwargs = dict(config_kwargs or {})
        kwargs.setdefault("platform", get_platform(platform))
        kwargs.setdefault("n_processors", p)
        if p == 1:
            kwargs.setdefault("n_machines", 1)
        result = run_parallel(ClusterConfig(**kwargs), worker, args=args)
        msgs.append(int(result.stats["msgs_sent"]))
        times.append(max(r["t1"] - r["t0"] for r in result.returns.values()))
    return msgs, times


def parse_int_list(text: str) -> Tuple[int, ...]:
    """Parse a ``6,32,64``-style comma list (the CLI/env sweep format)."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"expected a comma-separated integer list, got {text!r}") from None
    if not values or any(v < 1 for v in values):
        raise ValueError(f"processor counts must be positive integers, got {text!r}")
    return values


def scale_main(argv: List[str]) -> int:
    """``dse-experiments scale`` — sweep a workload across cluster sizes."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="dse-experiments scale",
        description="Measure DSE scaling on large virtual clusters.",
    )
    parser.add_argument(
        "--workload", choices=sorted(SCALE_WORKLOADS), default="gauss-seidel"
    )
    parser.add_argument(
        "--nodes", type=parse_int_list, default=DEFAULT_NODES,
        help="comma-separated processor counts (default: %(default)s)",
    )
    parser.add_argument(
        "--fabric", choices=("ethernet", "switch"), default="switch",
        help="network fabric (default: switch; ethernet is the paper's bus)",
    )
    parser.add_argument(
        "--no-batching", action="store_true",
        help="disable global-memory message batching (on by default)",
    )
    parser.add_argument(
        "--machines", type=int, default=None,
        help="physical machines (default: one per node; fewer doubles kernels up)",
    )
    parser.add_argument("--platform", default="linux")
    parser.add_argument(
        "--size", type=int, default=None,
        help="problem size (gauss-seidel: matrix order; knights-tour: min jobs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent sweep points (default: 1)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard each point's event loop N ways (0 = classic single "
             "loop; results are byte-identical for every N, see "
             "docs/sharding.md)",
    )
    parser.add_argument(
        "--shard-workers", choices=("inline", "process"), default="process",
        help="sharded backend: one OS process per shard (process, default) "
             "or everything in-process (inline, the determinism reference)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point, bypassing the on-disk result cache",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the sweep as deterministic JSON (wall-clock excluded)",
    )
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ResultCache()
    points = scale_sweep(
        args.workload,
        nodes=args.nodes,
        fabric=args.fabric,
        batching=not args.no_batching,
        machines=args.machines,
        platform=args.platform,
        size=args.size,
        jobs=args.jobs,
        cache=cache,
        shards=args.shards,
        shard_workers=args.shard_workers,
    )
    print(scale_table(points, title=f"{args.workload} scaling ({args.platform})").render())
    if cache is not None:
        print(cache.summary())
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(sweep_canonical(points))
        print(f"wrote {args.out}")
    return 0
