"""Per-figure experiment definitions (the paper's Figures 4-21 + Table 1).

Each function regenerates the data behind one (or one platform-group of)
figure(s); :data:`FIGURES` maps figure ids to runnable specs.  Parameters
reconstruct the paper's where the scan lost them (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..apps.dct2 import dct2_worker
from ..apps.gauss_seidel import gauss_seidel_worker
from ..apps.knights_tour import knights_tour_worker
from ..apps.othello import othello_worker
from ..hardware.platforms import get_platform, table1_rows
from .harness import DEFAULT_PROCS, sweep_processors

__all__ = [
    "FigureData",
    "gauss_seidel_figures",
    "dct2_figures",
    "othello_figure",
    "knights_tour_figure",
    "table1",
    "FIGURES",
    "GS_DIMENSIONS",
    "DCT_BLOCKS",
    "OTHELLO_DEPTHS",
    "KT_JOBS",
]

#: reconstructed workload parameters (the scan lost the numerals)
GS_DIMENSIONS = (100, 300, 500, 700, 900)
GS_DIMENSIONS_FAST = (100, 500, 900)
DCT_IMAGE = 128
DCT_BLOCKS = (2, 4, 8)
OTHELLO_DEPTHS = (3, 4, 5, 6, 7, 8)
OTHELLO_DEPTHS_FAST = (3, 5, 7)
KT_JOBS = (8, 32, 128, 512)


@dataclass
class FigureData:
    """The rows/series behind one figure."""

    fig_id: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)

    def to_text(self) -> str:
        from ..util.tables import render_series

        return render_series(
            self.x_label, self.x_values, self.series, title=f"[{self.fig_id}] {self.title}"
        )

    def speedup_variant(self, fig_id: str, title: str) -> "FigureData":
        """Derive the paired speed-up figure (T(1)/T(p) per series)."""
        out = FigureData(fig_id, title, self.x_label, list(self.x_values))
        for name, times in self.series.items():
            base = times[0]
            out.series[name] = [base / t if t > 0 else float("nan") for t in times]
        return out


def _procs(fast: bool) -> Sequence[int]:
    return (1, 2, 4, 6, 8, 12) if fast else DEFAULT_PROCS


# ------------------------------------------------------------------ Table 1
def table1() -> FigureData:
    data = FigureData(
        "table1", "Experiment environments", "machine", [r[0] for r in table1_rows()]
    )
    data.series["platform/OS"] = [r[1] for r in table1_rows()]  # type: ignore[assignment]
    data.series["cpu"] = [r[2] for r in table1_rows()]  # type: ignore[assignment]
    return data


# ------------------------------------------------------ Figures 4-9: Gauss-Seidel
def gauss_seidel_figures(
    platform_key: str, fast: bool = False
) -> Tuple[FigureData, FigureData]:
    """Execution time + speed-up of Gauss-Seidel on one platform."""
    platform = get_platform(platform_key)
    procs = list(_procs(fast))
    dims = GS_DIMENSIONS_FAST if fast else GS_DIMENSIONS
    sweeps = 5 if fast else 10
    fig_no = {"sunos": (4, 5), "aix": (6, 7), "linux": (8, 9)}[platform_key]
    time_fig = FigureData(
        f"fig{fig_no[0]}",
        f"Gauss-Seidel Method on {platform.name} (execution time, s)",
        "processors",
        procs,
    )
    for n in dims:
        ms = sweep_processors(
            platform, gauss_seidel_worker, (n, sweeps, 7, False), procs
        )
        time_fig.series[f"N={n}"] = [m.elapsed for m in ms]
    speed_fig = time_fig.speedup_variant(
        f"fig{fig_no[1]}", f"Speed-up of Gauss-Seidel Method on {platform.name}"
    )
    return time_fig, speed_fig


# ------------------------------------------------------ Figures 10-15: DCT-II
def dct2_figures(
    platform_key: str, fast: bool = False
) -> Tuple[FigureData, FigureData]:
    platform = get_platform(platform_key)
    procs = list(_procs(fast))
    size = 64 if fast else DCT_IMAGE
    fig_no = {"sunos": (10, 11), "aix": (12, 13), "linux": (14, 15)}[platform_key]
    time_fig = FigureData(
        f"fig{fig_no[0]}",
        f"DCT-II on {platform.name} ({size}x{size} image, 25% kept; execution time, s)",
        "processors",
        procs,
    )
    for b in DCT_BLOCKS:
        ms = sweep_processors(
            platform, dct2_worker, (size, b, 0.25, 11, False), procs
        )
        time_fig.series[f"{b}x{b}"] = [m.elapsed for m in ms]
    speed_fig = time_fig.speedup_variant(
        f"fig{fig_no[1]}", f"Speed-up of DCT-II on {platform.name}"
    )
    return time_fig, speed_fig


# ------------------------------------------------------ Figures 16-18: Othello
def othello_figure(platform_key: str, fast: bool = False) -> FigureData:
    platform = get_platform(platform_key)
    procs = list(_procs(fast))
    depths = OTHELLO_DEPTHS_FAST if fast else OTHELLO_DEPTHS
    fig_no = {"sunos": 16, "aix": 17, "linux": 18}[platform_key]
    fig = FigureData(
        f"fig{fig_no}",
        f"Speed-up of Othello Game on {platform.name}",
        "processors",
        procs,
    )
    for depth in depths:
        ms = sweep_processors(platform, othello_worker, (depth,), procs)
        base = ms[0].elapsed
        fig.series[f"Depth{depth}"] = [base / m.elapsed for m in ms]
    return fig


# ------------------------------------------------ Figures 19-21: Knight's Tour
def knights_tour_figure(platform_key: str, fast: bool = False) -> FigureData:
    platform = get_platform(platform_key)
    procs = list(_procs(fast))
    fig_no = {"sunos": 19, "aix": 20, "linux": 21}[platform_key]
    fig = FigureData(
        f"fig{fig_no}",
        f"Knight's Tour Problem on {platform.name} (execution time, s)",
        "processors",
        procs,
    )
    for jobs in KT_JOBS:
        ms = sweep_processors(platform, knights_tour_worker, (jobs,), procs)
        fig.series[f"{jobs}_Jobs"] = [m.elapsed for m in ms]
    return fig


# ------------------------------------------------------------------ registry
def _gs(platform_key: str, which: int) -> Callable[[bool], FigureData]:
    return lambda fast=False: gauss_seidel_figures(platform_key, fast)[which]


def _dct(platform_key: str, which: int) -> Callable[[bool], FigureData]:
    return lambda fast=False: dct2_figures(platform_key, fast)[which]


#: figure id -> callable(fast) -> FigureData
FIGURES: Dict[str, Callable[..., FigureData]] = {
    "table1": lambda fast=False: table1(),
    "fig4": _gs("sunos", 0),
    "fig5": _gs("sunos", 1),
    "fig6": _gs("aix", 0),
    "fig7": _gs("aix", 1),
    "fig8": _gs("linux", 0),
    "fig9": _gs("linux", 1),
    "fig10": _dct("sunos", 0),
    "fig11": _dct("sunos", 1),
    "fig12": _dct("aix", 0),
    "fig13": _dct("aix", 1),
    "fig14": _dct("linux", 0),
    "fig15": _dct("linux", 1),
    "fig16": lambda fast=False: othello_figure("sunos", fast),
    "fig17": lambda fast=False: othello_figure("aix", fast),
    "fig18": lambda fast=False: othello_figure("linux", fast),
    "fig19": lambda fast=False: knights_tour_figure("sunos", fast),
    "fig20": lambda fast=False: knights_tour_figure("aix", fast),
    "fig21": lambda fast=False: knights_tour_figure("linux", fast),
}
