"""Command-line entry point: regenerate any figure of the paper.

Installed as ``dse-experiments``::

    dse-experiments --list
    dse-experiments table1 fig5 fig11
    dse-experiments all --fast

The ``trace`` subcommand runs one workload with cross-layer causal tracing
and exports a Chrome trace-event file (load it at ``chrome://tracing`` or
https://ui.perfetto.dev) plus, optionally, the metrics time-series::

    dse-experiments trace --workload gauss-seidel --processors 4 \\
        --out trace.json --metrics metrics.csv

The ``scale`` subcommand sweeps a workload across large virtual clusters
(see :mod:`repro.experiments.scaling` and ``docs/scaling.md``)::

    dse-experiments scale --workload gauss-seidel --nodes 6,32,64 \\
        --fabric switch

The ``sanitize`` subcommand runs workloads under the race/deadlock
sanitizers (see :mod:`repro.sanitize` and ``docs/sanitizers.md``)::

    dse-experiments sanitize --all
    dse-experiments sanitize --demo

The ``resilience`` subcommand injects kernel crashes into paper workloads
and measures detection + recovery (see :mod:`repro.resilience` and
``docs/resilience.md``)::

    dse-experiments resilience --mode spmd --crash-at 0.05
    dse-experiments resilience --mode farm --crashes 2

The ``loss-sweep`` subcommand streams messages through each transport
under Gilbert–Elliott burst loss and tabulates goodput + the speed-up
over the seed's stop-and-wait protocol (see :mod:`repro.perf.netbench`
and ``docs/networking.md``)::

    dse-experiments loss-sweep

The ``traffic`` subcommand drives the multi-tenant request layer: a
policies x loads sweep of the PS cloning engine (cached, ``--jobs N``
byte-identical), or the full-stack cluster variant with ``--cluster``
(see :mod:`repro.traffic` and ``docs/traffic.md``)::

    dse-experiments traffic --jobs 4
    dse-experiments traffic --cluster --transport dual --loss 0.02
    dse-experiments loss-sweep --loss 0,0.02,0.05 --transports reliable,sr
    dse-experiments loss-sweep --fabric ethernet --messages 400

The ``profile-engine`` subcommand runs a workload (or an engine
micro-bench) under the event-loop profiler and prints where the host CPU
went: dispatch counts/time per event type, hot callback sites, and the
callback fan-out histogram (see :mod:`repro.perf` and
``docs/performance.md``)::

    dse-experiments profile-engine --workload gauss-seidel --processors 6
    dse-experiments profile-engine --bench ps_churn

The ``check`` subcommand model-checks the transport/coherence protocol
state machines over bounded scopes: it exhaustively enumerates every
delivery order, loss, and duplication decision, checks safety invariants
at each state, and emits replayable counterexample traces (see
:mod:`repro.check` and ``docs/checking.md``)::

    dse-experiments check --smoke
    dse-experiments check --mutants
    dse-experiments check sw-lost-wakeup --save-trace traces/
    dse-experiments check --replay traces/sw-lost-wakeup.json

The ``replay`` subcommand records a run into a checkpoint ring and lets
you seek/inspect/resume any simulated instant of it; ``live`` streams a
running simulation's vitals as JSON lines (see :mod:`repro.replay` and
``docs/debugging.md``)::

    dse-experiments replay --workload gauss-seidel --at 0.002 --resume
    dse-experiments replay --load run.replay --worst api.gm_read
    dse-experiments live --workload gauss-seidel --out live.jsonl

Figure regeneration accepts ``--jobs N`` to fan independent figures across
worker processes and reuses prior runs through the content-addressed
result cache (``--no-cache`` bypasses it).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from .checks import check_figure
from .figures import FIGURES

__all__ = ["main"]

#: workload key -> (import path, worker attr, small default args)
_TRACE_WORKLOADS = {
    "gauss-seidel": ("repro.apps.gauss_seidel", "gauss_seidel_worker", (96, 2, 7, False)),
    "knights-tour": ("repro.apps.knights_tour", "knights_tour_worker", (8,)),
    "othello": ("repro.apps.othello", "othello_worker", (3,)),
    "dct2": ("repro.apps.dct2", "dct2_worker", (32, 8, 0.25, 11, False)),
}


def _figure_task(params: dict) -> dict:
    """Compute one figure as a picklable, cacheable top-level task."""
    from dataclasses import asdict

    return asdict(FIGURES[params["fig_id"]](fast=params["fast"]))


def _trace_main(argv: List[str]) -> int:
    """Run one workload traced and export Chrome trace (+ metrics) files."""
    import importlib

    from ..dse.config import ClusterConfig
    from ..dse.runtime import run_parallel
    from ..hardware.platforms import get_platform, platform_names
    from ..obs import write_chrome_trace, write_metrics_csv, write_metrics_jsonl

    parser = argparse.ArgumentParser(
        prog="dse-experiments trace",
        description="Run one workload with causal tracing and export the spans.",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(_TRACE_WORKLOADS) + ["traffic"],
        default="gauss-seidel",
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", choices=platform_names(), default="sunos")
    parser.add_argument("--out", default="trace.json", help="Chrome trace output path")
    parser.add_argument(
        "--metrics", default=None,
        help="also export the metrics time-series (.csv or .jsonl by extension)",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=0.0005,
        help="sampling period in simulated seconds (default 0.5 ms)",
    )
    parser.add_argument(
        "--span-limit", type=int, default=None, help="cap on retained spans"
    )
    args = parser.parse_args(argv)

    if args.workload == "traffic":
        # The traffic layer owns its simulator (no cluster); it mints
        # sampled request-level spans, which span_census aggregates into
        # the per-tenant latency block.
        from ..traffic.cli import run_traced_traffic
        from .timeline import span_census

        engine = run_traced_traffic(
            metrics_interval=args.metrics_interval if args.metrics else 0.0,
        )
        result = engine.result
        print(f"traffic clone-2 sweep point: elapsed {result.elapsed:.6f}s "
              f"simulated, {result.overall['count']:.0f} requests")
        print(span_census(engine.recorder, sim=engine.sim))
        if not engine.recorder.spans:
            print(f"no spans were recorded, so {args.out} was not written")
            return 1
        n_events = write_chrome_trace(engine.recorder, args.out, engine.cluster)
        print(f"wrote {n_events} trace events to {args.out}")
        if args.metrics:
            if engine.sampler is None or not engine.sampler.samples_taken:
                print(f"no metric samples were taken, so {args.metrics} "
                      "was not written")
                return 1
            writer = (write_metrics_jsonl if args.metrics.endswith(".jsonl")
                      else write_metrics_csv)
            n_rows = writer(engine.sampler, args.metrics)
            print(f"wrote {n_rows} metric samples to {args.metrics}")
        return 0

    module_name, attr, worker_args = _TRACE_WORKLOADS[args.workload]
    worker = getattr(importlib.import_module(module_name), attr)
    config = ClusterConfig(
        platform=get_platform(args.platform),
        n_processors=args.processors,
        obs_trace=True,
        obs_metrics_interval=args.metrics_interval if args.metrics else 0.0,
        obs_span_limit=args.span_limit,
    )
    result = run_parallel(config, worker, args=worker_args)
    cluster = result.cluster
    print(
        f"{args.workload} p={args.processors} on {args.platform}: "
        f"elapsed {result.elapsed:.6f}s simulated"
    )
    status = 0
    if not cluster.obs.spans:
        # Nothing recorded — an empty trace file would only mislead.
        print(
            f"no spans were recorded, so {args.out} was not written "
            "(raise --span-limit, or check that the workload ran any work)"
        )
        status = 1
    else:
        n_events = write_chrome_trace(cluster.obs, args.out, cluster=cluster)
        dropped = f" ({cluster.obs.dropped} spans dropped past limit)" if cluster.obs.dropped else ""
        print(f"wrote {n_events} trace events to {args.out}{dropped}")
    if args.metrics:
        if cluster.metrics is None or not cluster.metrics.samples_taken:
            print(
                f"no metric samples were taken, so {args.metrics} was not "
                "written (pass a --metrics-interval shorter than the run)"
            )
            status = 1
        else:
            writer = write_metrics_jsonl if args.metrics.endswith(".jsonl") else write_metrics_csv
            n_rows = writer(cluster.metrics, args.metrics)
            print(f"wrote {n_rows} metric samples to {args.metrics}")
    return status


def _profile_engine_main(argv: List[str]) -> int:
    """Profile the event loop under one workload or engine micro-bench."""
    import importlib

    from ..perf import BENCHES, EngineProfiler

    parser = argparse.ArgumentParser(
        prog="dse-experiments profile-engine",
        description="Profile Simulator.run: event types, hot sites, fan-out.",
    )
    parser.add_argument(
        "--workload", choices=sorted(_TRACE_WORKLOADS), default=None,
        help="profile one end-to-end workload (default: gauss-seidel)",
    )
    parser.add_argument(
        "--bench", choices=sorted(BENCHES), default=None,
        help="profile one canonical engine bench scenario instead",
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", default="sunos")
    parser.add_argument(
        "--top", type=int, default=12, help="callback sites to show (default 12)"
    )
    args = parser.parse_args(argv)
    if args.workload and args.bench:
        parser.error("--workload and --bench are mutually exclusive")

    if args.bench:
        with EngineProfiler() as profiler:
            BENCHES[args.bench]()
        print(f"profile of engine bench {args.bench!r}:\n")
    else:
        from ..dse.config import ClusterConfig
        from ..dse.runtime import run_parallel
        from ..hardware.platforms import get_platform

        workload = args.workload or "gauss-seidel"
        module_name, attr, worker_args = _TRACE_WORKLOADS[workload]
        worker = getattr(importlib.import_module(module_name), attr)
        config = ClusterConfig(
            platform=get_platform(args.platform), n_processors=args.processors
        )
        with EngineProfiler() as profiler:
            result = run_parallel(config, worker, args=worker_args)
        print(
            f"profile of {workload} p={args.processors} on {args.platform} "
            f"(elapsed {result.elapsed:.6f}s simulated):\n"
        )
    print(profiler.profile.render(top=args.top))
    return 0


def _loss_sweep_main(argv: List[str]) -> int:
    """Tabulate transport goodput under Gilbert–Elliott burst loss."""
    from ..perf.netbench import CANONICAL, LOSS_POINTS, TRANSPORTS, sweep_rows
    from ..protocol.transport import TRANSPORT_KINDS
    from ..util.tables import Table

    parser = argparse.ArgumentParser(
        prog="dse-experiments loss-sweep",
        description="Stream messages through each transport under burst "
                    "loss; report goodput and speed-up vs stop-and-wait.",
    )
    parser.add_argument(
        "--transports", default=",".join(TRANSPORTS),
        help=f"comma list from {', '.join(TRANSPORT_KINDS)} "
             f"(default: {','.join(TRANSPORTS)})",
    )
    parser.add_argument(
        "--loss", default=",".join(f"{p:g}" for p in LOSS_POINTS),
        help="comma list of Gilbert-Elliott p_enter_bad values "
             f"(default: {','.join(f'{p:g}' for p in LOSS_POINTS)})",
    )
    parser.add_argument("--p-exit", type=float, default=CANONICAL["p_exit_bad"],
                        help="burst exit probability (mean burst = 1/p_exit "
                             f"frames; default {CANONICAL['p_exit_bad']:g})")
    parser.add_argument("--messages", type=int, default=CANONICAL["n_messages"])
    parser.add_argument("--payload", type=int, default=CANONICAL["payload_bytes"])
    parser.add_argument("--fabric", choices=("switch", "ethernet"),
                        default=CANONICAL["fabric"])
    parser.add_argument("--seed", type=int, default=CANONICAL["seed"])
    args = parser.parse_args(argv)

    transports = tuple(t.strip() for t in args.transports.split(",") if t.strip())
    unknown = [t for t in transports if t not in TRANSPORT_KINDS]
    if unknown:
        parser.error(f"unknown transport(s) {unknown}; pick from {TRANSPORT_KINDS}")
    loss_points = tuple(float(p) for p in args.loss.split(","))

    rows = sweep_rows(
        transports,
        loss_points,
        n_messages=args.messages,
        payload_bytes=args.payload,
        p_exit_bad=args.p_exit,
        fabric=args.fabric,
        seed=args.seed,
    )
    t = Table(
        ["transport", "p_enter_bad", "goodput_msg_s", "elapsed_s",
         "retransmits", "timeouts", "vs_stop_and_wait"],
        title=(f"{args.messages} x {args.payload} B over {args.fabric}, "
               f"mean burst {1 / args.p_exit:g} frames, seed {args.seed}"),
    )
    for row in rows:
        dnf = not row["completed"]
        t.add(
            row["transport"],
            f"{row['p_enter_bad']:g}",
            "DNF" if dnf else f"{row['goodput_mps']:.0f}",
            "-" if dnf else f"{row['elapsed_s']:.6f}",
            row["retransmissions"],
            row["timeouts"],
            f"{row['speedup_vs_stop_and_wait']:g}x",
        )
    print(t.render())
    if any(not row["completed"] for row in rows):
        print("\nDNF: retry budget exhausted mid-burst (partial delivery; "
              "stop-and-wait caps at 8 attempts per message)")
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "profile-engine":
        return _profile_engine_main(argv[1:])
    if argv and argv[0] == "loss-sweep":
        return _loss_sweep_main(argv[1:])
    if argv and argv[0] == "traffic":
        from ..traffic.cli import traffic_main

        return traffic_main(argv[1:])
    if argv and argv[0] == "scale":
        from .scaling import scale_main

        return scale_main(argv[1:])
    if argv and argv[0] == "sanitize":
        from ..sanitize.cli import sanitize_main

        return sanitize_main(argv[1:])
    if argv and argv[0] == "resilience":
        from ..resilience.cli import resilience_main

        return resilience_main(argv[1:])
    if argv and argv[0] == "check":
        from ..check.cli import check_main

        return check_main(argv[1:])
    if argv and argv[0] == "replay":
        from ..replay.cli import replay_main

        return replay_main(argv[1:])
    if argv and argv[0] == "live":
        from ..replay.cli import live_main

        return live_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="dse-experiments",
        description="Regenerate the tables/figures of the DSE/SSI paper (ICPP 1999).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure ids (table1, fig4..fig21) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available figure ids")
    parser.add_argument(
        "--fast", action="store_true", help="smaller parameter grid (quick look)"
    )
    parser.add_argument(
        "--no-checks", action="store_true", help="skip the paper-shape checks"
    )
    parser.add_argument(
        "--plot", action="store_true", help="also draw each figure as an ASCII chart"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent figures (default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every figure, bypassing the on-disk result cache",
    )
    args = parser.parse_args(argv)

    if args.list or not args.figures:
        print("available figures:", " ".join(FIGURES))
        return 0

    wanted = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure id(s): {unknown}; use --list", file=sys.stderr)
        return 2

    # Compute every requested figure up front — independent simulations, so
    # they fan across the pool and hit the result cache — then render and
    # check in the requested order (deterministic merge).
    from .figures import FigureData
    from .parallel import ResultCache, run_tasks

    cache = None if args.no_cache else ResultCache()
    sweep_start = time.perf_counter()
    raw = run_tasks(
        _figure_task,
        [{"fig_id": f, "fast": args.fast} for f in wanted],
        jobs=args.jobs,
        cache=cache,
        namespace="figure",
    )
    sweep_wall = time.perf_counter() - sweep_start
    computed = {f: FigureData(**d) for f, d in zip(wanted, raw)}

    failures = 0
    for fig_id in wanted:
        start = time.perf_counter()
        fig = computed[fig_id]
        print(fig.to_text())
        if args.plot and fig_id != "table1":
            from .plot import plot_figure

            print()
            print(plot_figure(fig))
        if not args.no_checks:
            for description, ok in check_figure(fig):
                status = "PASS" if ok else "FAIL"
                print(f"  [{status}] {description}")
                failures += 0 if ok else 1
        print(f"  ({time.perf_counter() - start:.1f}s wall)\n")
    summary = f"computed {len(wanted)} figure(s) in {sweep_wall:.1f}s with jobs={args.jobs}"
    if cache is not None:
        summary += f"; {cache.summary()}"
    print(summary)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
