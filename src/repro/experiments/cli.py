"""Command-line entry point: regenerate any figure of the paper.

Installed as ``dse-experiments``::

    dse-experiments --list
    dse-experiments table1 fig5 fig11
    dse-experiments all --fast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from .checks import check_figure
from .figures import FIGURES

__all__ = ["main"]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dse-experiments",
        description="Regenerate the tables/figures of the DSE/SSI paper (ICPP 1999).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure ids (table1, fig4..fig21) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available figure ids")
    parser.add_argument(
        "--fast", action="store_true", help="smaller parameter grid (quick look)"
    )
    parser.add_argument(
        "--no-checks", action="store_true", help="skip the paper-shape checks"
    )
    parser.add_argument(
        "--plot", action="store_true", help="also draw each figure as an ASCII chart"
    )
    args = parser.parse_args(argv)

    if args.list or not args.figures:
        print("available figures:", " ".join(FIGURES))
        return 0

    wanted = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure id(s): {unknown}; use --list", file=sys.stderr)
        return 2

    failures = 0
    for fig_id in wanted:
        start = time.time()
        fig = FIGURES[fig_id](fast=args.fast)
        print(fig.to_text())
        if args.plot and fig_id != "table1":
            from .plot import plot_figure

            print()
            print(plot_figure(fig))
        if not args.no_checks:
            for description, ok in check_figure(fig):
                status = "PASS" if ok else "FAIL"
                print(f"  [{status}] {description}")
                failures += 0 if ok else 1
        print(f"  ({time.time() - start:.1f}s wall)\n")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
