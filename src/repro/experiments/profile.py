"""Post-mortem run profiling: where the time and the messages went.

The paper explains its curves via overheads — system calls, protocol
processing, communication frequency, machine load, bus collisions.  This
module turns a finished :class:`~repro.dse.runtime.RunResult` into the
per-kernel / per-machine / fabric breakdown that makes those explanations
visible for *any* workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dse.runtime import RunResult
from ..errors import ConfigurationError
from ..util.tables import Table

__all__ = ["RunProfile", "profile_result"]


@dataclass
class RunProfile:
    """Structured breakdown of one run."""

    elapsed: float
    kernels: List[Dict[str, float]] = field(default_factory=list)
    machines: List[Dict[str, float]] = field(default_factory=list)
    fabric: Dict[str, float] = field(default_factory=dict)
    #: span name -> (count, total seconds), from the cross-layer causal
    #: trace (empty unless the run had ClusterConfig(obs_trace=True))
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: engine cost of the run: events dispatched by the event loop
    events_processed: int = 0
    #: events lazily cancelled (superseded timers) and never dispatched
    events_cancelled: int = 0

    # -- aggregates ---------------------------------------------------------
    @property
    def total_remote_requests(self) -> float:
        return sum(k["requests_sent"] for k in self.kernels)

    @property
    def total_local_calls(self) -> float:
        return sum(k["local_calls"] for k in self.kernels)

    @property
    def locality_ratio(self) -> float:
        """Fraction of DSE operations resolved without leaving the node."""
        total = self.total_remote_requests + self.total_local_calls
        return self.total_local_calls / total if total else 1.0

    def render(self) -> str:
        parts = []
        kt = Table(
            ["kernel", "host", "reqs_out", "local", "served", "gm_remote", "gm_local", "bytes_out"],
            title=f"per-kernel profile (elapsed {self.elapsed:.4g}s)",
        )
        for k in self.kernels:
            kt.add(
                f"k{int(k['kernel_id'])}",
                k["hostname"],
                k["requests_sent"],
                k["local_calls"],
                k["requests_served"],
                k["gm_remote"],
                k["gm_local"],
                k["bytes_out"],
            )
        parts.append(kt.render())
        mt = Table(
            ["machine", "cpu_util", "loadavg", "msgs_out", "msgs_in", "syscalls"],
            title="per-machine profile",
        )
        for m in self.machines:
            mt.add(
                m["hostname"],
                round(m["cpu_utilization"], 3),
                round(m["load_average"], 2),
                m["msgs_sent"],
                m["msgs_received"],
                m["syscalls"],
            )
        parts.append(mt.render())
        ft = Table(["fabric counter", "value"], title="fabric")
        for key, value in self.fabric.items():
            ft.add(key, value)
        parts.append(ft.render())
        if self.spans:
            st = Table(["span", "count", "total (s)"], title="causal spans")
            for name, agg in sorted(
                self.spans.items(), key=lambda kv: -kv[1]["total"]
            ):
                st.add(name, int(agg["count"]), f"{agg['total']:.6g}")
            parts.append(st.render())
        parts.append(
            f"engine: {self.events_processed} events processed, "
            f"{self.events_cancelled} lazily cancelled"
        )
        return "\n\n".join(parts)


def profile_result(result: RunResult) -> RunProfile:
    """Build a :class:`RunProfile` from a finished run (needs the cluster)."""
    cluster = result.cluster
    if cluster is None:
        raise ConfigurationError(
            "profile_result needs RunResult.cluster (produced by run_master/run_parallel)"
        )
    profile = RunProfile(
        elapsed=result.elapsed,
        events_processed=cluster.total_events(),
        events_cancelled=cluster.total_cancelled(),
    )
    for kernel in cluster.kernels:
        ex, gm = kernel.exchange.stats, kernel.gmem.stats
        profile.kernels.append(
            {
                "kernel_id": kernel.kernel_id,
                "hostname": kernel.machine.hostname,
                "requests_sent": ex.counter("requests_sent").value,
                "local_calls": ex.counter("local_calls").value,
                "requests_served": kernel.stats.counter("requests_served").value,
                "gm_remote": gm.counter("remote_reads").value
                + gm.counter("remote_writes").value,
                "gm_local": gm.counter("local_reads").value
                + gm.counter("local_writes").value,
                "bytes_out": ex.counter("bytes_out").value,
            }
        )
    now = cluster.sim.now
    for machine in cluster.machines:
        profile.machines.append(
            {
                "hostname": machine.hostname,
                "cpu_utilization": machine.cpu.utilization(),
                "load_average": machine.load_average(),
                "msgs_sent": machine.stats.counter("msgs_sent").value,
                "msgs_received": machine.stats.counter("msgs_received").value,
                "syscalls": machine.stats.counter("syscalls").value,
            }
        )
    fabric = cluster.network.fabric
    profile.fabric = {
        "frames_sent": fabric.stats.counter("frames_sent").value,
        "frames_delivered": fabric.stats.counter("frames_delivered").value,
        "collisions": fabric.stats.counter("collisions").value,
        "bytes_sent": fabric.stats.counter("bytes_sent").value,
        "utilization": getattr(fabric, "utilization", None).average(now)
        if hasattr(fabric, "utilization")
        else 0.0,
    }
    for span in cluster.obs.spans:
        agg = profile.spans.setdefault(span.name, {"count": 0, "total": 0.0})
        agg["count"] += 1
        agg["total"] += span.duration
    return profile
