"""Measurement harness: run an application across processor counts.

Times are the *simulated* parallel execution time of the processing phase
(max over ranks of ``t1 - t0``, the markers every application worker
returns), exactly what the paper plots; speed-up is against the same
program on one processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..dse.config import ClusterConfig
from ..dse.runtime import RunResult, run_parallel
from ..hardware.platform import PlatformSpec

__all__ = ["Measurement", "measure_point", "sweep_processors", "DEFAULT_PROCS"]

#: the paper sweeps 1..12 processors on 6 machines; this grid keeps every
#: regime (1, the 6-machine knee, and the doubled-up virtual cluster)
DEFAULT_PROCS = (1, 2, 4, 6, 8, 10, 12)


@dataclass
class Measurement:
    """One (platform, processors, workload) timing point."""

    platform: str
    n_processors: int
    elapsed: float
    stats: Dict[str, float] = field(default_factory=dict)
    returns: Optional[Dict[int, Any]] = None


def measure_point(
    platform: PlatformSpec,
    worker: Callable[..., Generator],
    args: tuple,
    n_processors: int,
    config_kwargs: Optional[dict] = None,
) -> Measurement:
    """Run one configuration and extract the processing-phase time."""
    kwargs = dict(config_kwargs or {})
    kwargs.setdefault("platform", platform)
    kwargs.setdefault("n_processors", n_processors)
    if n_processors == 1:
        kwargs.setdefault("n_machines", 1)
    config = ClusterConfig(**kwargs)
    result: RunResult = run_parallel(config, worker, args=args)
    elapsed = max(out["t1"] - out["t0"] for out in result.returns.values())
    return Measurement(
        platform=platform.name,
        n_processors=n_processors,
        elapsed=elapsed,
        stats=result.stats,
        returns=result.returns,
    )


def sweep_processors(
    platform: PlatformSpec,
    worker: Callable[..., Generator],
    args: tuple,
    procs: Sequence[int] = DEFAULT_PROCS,
    config_kwargs: Optional[dict] = None,
) -> List[Measurement]:
    """Measure one workload at every processor count."""
    return [
        measure_point(platform, worker, args, p, config_kwargs) for p in procs
    ]
