"""Experiment harness: per-figure drivers, shape checks, CLI."""

from .checks import check_figure
from .figures import (
    DCT_BLOCKS,
    FIGURES,
    FigureData,
    GS_DIMENSIONS,
    KT_JOBS,
    OTHELLO_DEPTHS,
    dct2_figures,
    gauss_seidel_figures,
    knights_tour_figure,
    othello_figure,
    table1,
)
from .harness import DEFAULT_PROCS, Measurement, measure_point, sweep_processors
from .plot import ascii_plot, plot_figure
from .profile import RunProfile, profile_result
from .sensitivity import (
    bandwidth_sensitivity,
    peak_of,
    protocol_sensitivity,
    scaled_platform,
    speedup_curve,
)
from .timeline import event_log, message_census, render_timeline, span_census

__all__ = [
    "check_figure",
    "DCT_BLOCKS",
    "FIGURES",
    "FigureData",
    "GS_DIMENSIONS",
    "KT_JOBS",
    "OTHELLO_DEPTHS",
    "dct2_figures",
    "gauss_seidel_figures",
    "knights_tour_figure",
    "othello_figure",
    "table1",
    "DEFAULT_PROCS",
    "Measurement",
    "measure_point",
    "sweep_processors",
    "ascii_plot",
    "plot_figure",
    "RunProfile",
    "profile_result",
    "event_log",
    "message_census",
    "render_timeline",
    "span_census",
    "bandwidth_sensitivity",
    "peak_of",
    "protocol_sensitivity",
    "scaled_platform",
    "speedup_curve",
]
