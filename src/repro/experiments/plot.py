"""ASCII plots of figure data — the paper's charts in a terminal.

`render_series` tables give exact numbers; this module draws them, one
character-grid line chart per figure, so the curve *shapes* (the knee at
6 processors, the depth crossover) are visible at a glance without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .figures import FigureData

__all__ = ["ascii_plot", "plot_figure"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Plot several y-series over shared x values on a character grid."""
    if not series:
        raise ConfigurationError("nothing to plot")
    xs = [float(x) for x in x_values]
    if len(xs) < 2:
        raise ConfigurationError("need at least two x values")
    all_y = [y for ys in series.values() for y in ys if y == y]  # drop NaN
    if not all_y:
        raise ConfigurationError("no finite y values")
    y_lo, y_hi = min(all_y + [0.0]), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float):
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return row, col

    for idx, (name, ys) in enumerate(sorted(series.items())):
        marker = _MARKERS[idx % len(_MARKERS)]
        points = [
            cell(x, y) for x, y in zip(xs, ys) if y == y and y_lo <= y <= y_hi
        ]
        # connect consecutive points with linear interpolation
        for (r1, c1), (r2, c2) in zip(points, points[1:]):
            steps = max(abs(c2 - c1), abs(r2 - r1), 1)
            for s in range(steps + 1):
                rr = round(r1 + (r2 - r1) * s / steps)
                cc = round(c1 + (c2 - c1) * s / steps)
                if grid[rr][cc] == " ":
                    grid[rr][cc] = "."
        for r, c in points:
            grid[r][c] = marker

    lines: List[str] = []
    y_hi_tag, y_lo_tag = f"{y_hi:.3g}", f"{y_lo:.3g}"
    margin = max(len(y_hi_tag), len(y_lo_tag)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            tag = y_hi_tag.rjust(margin - 1)
        elif i == height - 1:
            tag = y_lo_tag.rjust(margin - 1)
        else:
            tag = " " * (margin - 1)
        lines.append(f"{tag}|" + "".join(row))
    lines.append(" " * margin + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * margin + x_axis + ("  " + x_label if x_label else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * margin + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


def plot_figure(fig: FigureData, width: int = 60, height: int = 16) -> str:
    """Render one figure's series as an ASCII chart with its title."""
    numeric_series = {
        name: [float(v) for v in values]
        for name, values in fig.series.items()
        if all(isinstance(v, (int, float)) for v in values)
    }
    if not numeric_series:
        raise ConfigurationError(f"{fig.fig_id} has no numeric series to plot")
    chart = ascii_plot(
        fig.x_values,
        numeric_series,
        width=width,
        height=height,
        x_label=fig.x_label,
    )
    return f"[{fig.fig_id}] {fig.title}\n{chart}"
