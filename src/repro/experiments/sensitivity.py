"""Sensitivity analysis: how the reconstructed constants move the curves.

The calibration constants (protocol costs, bandwidth, CPU rates) were
reconstructed from prose, so a reviewer's first question is "how sensitive
are the conclusions to them?"  This module answers it by re-running the
Gauss-Seidel experiment under scaled constants and reporting where the
speed-up peak lands — the conclusions hold across wide ranges (the peak
stays at/below 6 processors until communication becomes nearly free).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from ..apps.gauss_seidel import gauss_seidel_worker
from ..dse.config import ClusterConfig
from ..dse.runtime import run_parallel
from ..hardware.platform import PlatformSpec
from ..network.topology import FabricConfig

__all__ = [
    "scaled_platform",
    "speedup_curve",
    "peak_of",
    "protocol_sensitivity",
    "bandwidth_sensitivity",
]


def scaled_platform(
    platform: PlatformSpec,
    protocol_scale: float = 1.0,
    syscall_scale: float = 1.0,
    cpu_scale: float = 1.0,
) -> PlatformSpec:
    """A copy of ``platform`` with cost constants multiplied by scales."""
    costs = platform.os_costs
    new_costs = replace(
        costs,
        protocol_per_message=costs.protocol_per_message * protocol_scale,
        protocol_per_byte=costs.protocol_per_byte * protocol_scale,
        syscall=costs.syscall * syscall_scale,
    )
    cpu = platform.cpu
    new_cpu = replace(
        cpu,
        mflops=cpu.mflops * cpu_scale,
        mips=cpu.mips * cpu_scale,
        mmemops=cpu.mmemops * cpu_scale,
    )
    return replace(platform, os_costs=new_costs, cpu=new_cpu)


def speedup_curve(
    platform: PlatformSpec,
    n: int = 700,
    sweeps: int = 5,
    procs: Sequence[int] = (1, 2, 4, 6, 8, 12),
    rate_bps: float = 10e6,
) -> Dict[int, float]:
    """Measured Gauss-Seidel speed-up at each processor count."""
    times: Dict[int, float] = {}
    for p in procs:
        kw = {"n_machines": 1} if p == 1 else {}
        config = ClusterConfig(
            platform=platform,
            n_processors=p,
            fabric=FabricConfig(rate_bps=rate_bps),
            **kw,
        )
        res = run_parallel(config, gauss_seidel_worker, args=(n, sweeps, 7, False))
        times[p] = max(r["t1"] - r["t0"] for r in res.returns.values())
    base = times[procs[0]]
    return {p: base / t for p, t in times.items()}


def peak_of(curve: Dict[int, float]) -> Tuple[int, float]:
    """(processor count, speed-up) at the curve's maximum."""
    p = max(curve, key=curve.get)
    return p, curve[p]


def protocol_sensitivity(
    platform: PlatformSpec,
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    **kwargs,
) -> List[Tuple[float, int, float]]:
    """Rows of (protocol scale, peak processors, peak speed-up)."""
    rows = []
    for scale in scales:
        curve = speedup_curve(scaled_platform(platform, protocol_scale=scale), **kwargs)
        peak_p, peak_s = peak_of(curve)
        rows.append((scale, peak_p, peak_s))
    return rows


def bandwidth_sensitivity(
    platform: PlatformSpec,
    rates: Sequence[float] = (5e6, 10e6, 100e6),
    **kwargs,
) -> List[Tuple[float, int, float]]:
    """Rows of (bus rate, peak processors, peak speed-up)."""
    rows = []
    for rate in rates:
        curve = speedup_curve(platform, rate_bps=rate, **kwargs)
        peak_p, peak_s = peak_of(curve)
        rows.append((rate, peak_p, peak_s))
    return rows
