"""ASCII timelines from message traces.

When a cluster is built with ``ClusterConfig(trace=True)``, every kernel's
message exchange records send/receive events.  This module renders that
trace as a per-kernel activity heat-map over simulated time — the quickest
way to *see* a hotspot (one dark lane = one overloaded home node) or a
convoy (vertical bands = barrier waves).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..sim.monitor import TraceRecord, Tracer
from ..util.tables import Table

__all__ = ["render_timeline", "message_census", "event_log", "span_census"]

_SHADES = " .:-=+*#%@"

_EMPTY_TRACE = "no events captured (was trace=True set?)"


def render_timeline(
    tracer: Tracer,
    width: int = 64,
    kind: Optional[str] = None,
) -> str:
    """Per-source heat-map: one lane per kernel, darkness = message rate."""
    records = tracer.filter(kind=kind)
    if not records:
        return _EMPTY_TRACE
    t0 = records[0].time
    t1 = max(r.time for r in records)
    span = max(t1 - t0, 1e-12)
    lanes: Dict[str, List[int]] = defaultdict(lambda: [0] * width)
    for record in records:
        bucket = min(int((record.time - t0) / span * width), width - 1)
        lanes[record.source][bucket] += 1
    peak = max(max(lane) for lane in lanes.values())
    dropped = f", {tracer.dropped} dropped past limit" if tracer.dropped else ""
    lines = [
        f"timeline {t0:.4g}s .. {t1:.4g}s "
        f"({len(records)} events, peak {peak}/cell{dropped})"
    ]
    for source in sorted(lanes):
        cells = "".join(
            _SHADES[min(int(c / peak * (len(_SHADES) - 1) + (0 if c == 0 else 1)),
                        len(_SHADES) - 1)]
            for c in lanes[source]
        )
        lines.append(f"{source:>6} |{cells}|")
    return "\n".join(lines)


def message_census(tracer: Tracer) -> str:
    """Message counts and bytes by type (sends only, to avoid double count)."""
    counts: Dict[str, int] = defaultdict(int)
    nbytes: Dict[str, int] = defaultdict(int)
    for record in tracer.filter(kind="send"):
        msg_type, _dst, size = record.detail
        counts[msg_type] += 1
        nbytes[msg_type] += size
    table = Table(["message type", "count", "bytes"], title="message census")
    for msg_type in sorted(counts, key=lambda t: -counts[t]):
        table.add(msg_type, counts[msg_type], nbytes[msg_type])
    return table.render()


def event_log(tracer: Tracer, limit: int = 50) -> str:
    """The first ``limit`` raw trace records, one line each."""
    if not tracer.records:
        return _EMPTY_TRACE
    lines = []
    for record in tracer.records[:limit]:
        lines.append(f"{record.time:12.6f}s {record.source:>6} {record.kind:<5} {record.detail}")
    if len(tracer.records) > limit:
        lines.append(f"... {len(tracer.records) - limit} more")
    return "\n".join(lines)


def _request_span_block(recorder) -> str:
    """Latency aggregation of request-level spans (``cat == "request"``).

    The traffic layer mints sampled per-request spans; unlike compute
    spans, their interesting statistic is the latency *distribution*,
    not the total — so they get their own table with deterministic
    p50/p99/p999 from the same geometric histogram the SLO tracker uses
    (empty when the trace holds no request spans, e.g. compute-only
    workloads)."""
    from ..traffic.slo import LatencyHistogram

    hists: Dict[str, LatencyHistogram] = {}
    for span in recorder.spans:
        if span.cat != "request" or span.end is None:
            continue
        hist = hists.get(span.name)
        if hist is None:
            hist = hists[span.name] = LatencyHistogram()
        hist.observe(span.duration)
    if not hists:
        return ""
    table = Table(
        ["request span", "count", "mean (s)", "p50", "p99", "p999"],
        title="request spans",
    )
    for name in sorted(hists):
        s = hists[name].summary()
        table.add(
            name, s["count"], f"{s['mean']:.6g}",
            f"{s['p50']:.6g}", f"{s['p99']:.6g}", f"{s['p999']:.6g}",
        )
    return table.render()


def span_census(recorder, sim=None, ckpt=None) -> str:
    """Per-name span counts and total durations from a
    :class:`repro.obs.SpanRecorder` (the cross-layer causal trace).

    Pass the run's :class:`~repro.sim.core.Simulator` to append the engine
    footer (events processed / lazily cancelled) under the table, and the
    cluster's ``ckpt_stats`` :class:`~repro.sim.monitor.StatSet` to append
    checkpoint overhead (snapshot count / bytes / write latency) — so
    recording cost shows up in the same census as everything else.
    """
    if not recorder.spans:
        return "no spans captured (was obs_trace=True set?)"
    counts: Dict[str, int] = defaultdict(int)
    totals: Dict[str, float] = defaultdict(float)
    for span in recorder.spans:
        counts[span.name] += 1
        totals[span.name] += span.duration
    table = Table(["span", "count", "total time (s)"], title="span census")
    for name in sorted(counts, key=lambda n: -totals[n]):
        table.add(name, counts[name], f"{totals[name]:.6g}")
    out = table.render()
    request_block = _request_span_block(recorder)
    if request_block:
        out += "\n" + request_block
    if sim is not None:
        out += (
            f"\nengine: {sim.events_processed} events processed, "
            f"{sim.events_cancelled} lazily cancelled"
        )
    if ckpt is not None:
        snaps = ckpt.counter("snapshots").value
        if snaps:
            size = ckpt.tally("snapshot_bytes")
            latency = ckpt.tally("write_latency")
            out += (
                f"\nckpt: {snaps} snapshots, "
                f"{size.total:.0f} bytes (mean {size.mean:.0f}), "
                f"write latency mean {latency.mean:.6g}s"
            )
    return out
