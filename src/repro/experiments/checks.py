"""Shape checks: do regenerated figures reproduce the paper's findings?

Each check encodes one claim from the paper's prose as a predicate over a
:class:`FigureData`.  The benchmark harness runs them and reports pass/fail
next to the data — this is the "who wins, by roughly what factor, where
crossovers fall" validation, not absolute-number matching.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .figures import FigureData

__all__ = ["check_figure", "ShapeCheck"]

ShapeCheck = Tuple[str, bool]


def _peak(xs: List, ys: List[float]) -> Tuple[int, float]:
    i = max(range(len(ys)), key=lambda k: ys[k])
    return xs[i], ys[i]


def _speedups_from_times(fig: FigureData) -> Dict[str, List[float]]:
    return {k: [v[0] / t for t in v] for k, v in fig.series.items()}


def check_gs_speedup(fig: FigureData) -> List[ShapeCheck]:
    """Paper: small N collapses; N >= 700 improves through 5-6 processors;
    every N degrades beyond 6 (virtual cluster)."""
    checks: List[ShapeCheck] = []
    xs = fig.x_values
    small = fig.series.get("N=100")
    big = fig.series.get("N=900") or fig.series[max(fig.series)]
    if small:
        checks.append(("N=100 shows no speed-up at 6 processors", small[xs.index(6)] < 1.0))
    peak_x, peak_v = _peak(xs, big)
    checks.append((f"largest N peaks at 4-6 processors (peak at {peak_x})", 4 <= peak_x <= 6))
    checks.append((f"largest N peak speed-up > 2 (got {peak_v:.2f})", peak_v > 2.0))
    checks.append(
        ("largest N degrades beyond 6 processors", big[xs.index(8)] < big[xs.index(6)])
    )
    return checks


def check_dct_speedup(fig: FigureData) -> List[ShapeCheck]:
    """Paper: 2x2 blocks show no speed-up improvement; larger blocks do,
    best for the largest block size."""
    xs = fig.x_values
    s2, s8 = fig.series["2x2"], fig.series["8x8"]
    s4 = fig.series["4x4"]
    checks = [
        ("2x2 never exceeds 2x (no useful speed-up)", max(s2) < 2.0),
        ("8x8 exceeds 2.5x", max(s8) > 2.5),
        ("8x8 beats 4x4 beats 2x2 at 6 processors",
         s8[xs.index(6)] > s4[xs.index(6)] > s2[xs.index(6)]),
    ]
    return checks


def check_othello_speedup(fig: FigureData) -> List[ShapeCheck]:
    """Paper: shallow depths show no improvement; deeper depths do."""
    xs = fig.x_values
    shallow = fig.series[min(fig.series)]  # Depth3
    deep = fig.series[max(fig.series)]  # Depth7/8
    checks = [
        ("shallowest depth shows no improvement", max(shallow[1:]) < 1.0),
        (f"deepest depth speeds up >2.5x (got {max(deep):.2f})", max(deep) > 2.5),
        ("deepest depth keeps improving past 2 processors",
         deep[xs.index(6)] > deep[xs.index(2)]),
    ]
    return checks


def check_kt_time(fig: FigureData) -> List[ShapeCheck]:
    """Paper: a middling job count is most efficient, the largest count is
    least efficient; midrange improves to ~5-6 processors then declines."""
    xs = fig.x_values
    speed = _speedups_from_times(fig)
    names = sorted(fig.series, key=lambda s: int(s.split("_")[0]))
    small, mid, large = names[0], names[1], names[-1]
    best_at_6 = {k: v[xs.index(6)] for k, v in speed.items()}
    checks = [
        (f"midrange jobs ({mid}) most efficient at 6 procs",
         best_at_6[mid] == max(best_at_6.values())),
        (f"largest job count ({large}) least efficient at 6 procs",
         best_at_6[large] == min(best_at_6.values())),
        ("midrange declines beyond 6 processors",
         speed[mid][xs.index(8)] < speed[mid][xs.index(6)]),
        (f"midrange peak speed-up > 3 (got {max(speed[mid]):.2f})",
         max(speed[mid]) > 3.0),
    ]
    return checks


def check_figure(fig: FigureData) -> List[ShapeCheck]:
    """Dispatch to the right shape check for a figure id."""
    n = int(fig.fig_id.replace("fig", "")) if fig.fig_id.startswith("fig") else 0
    if n in (5, 7, 9):
        return check_gs_speedup(fig)
    if n in (11, 13, 15):
        return check_dct_speedup(fig)
    if n in (16, 17, 18):
        return check_othello_speedup(fig)
    if n in (19, 20, 21):
        return check_kt_time(fig)
    return []
