"""Unified observability: causal span tracing + metrics time-series.

The layer the ROADMAP's perf work stands on: when a cluster is built with
``ClusterConfig(obs_trace=True)``, every DSE API call mints a
:class:`TraceContext` that rides inside message headers, transport
segments, and Ethernet frames, so one remote global-memory read is a
single connected span tree across machines — exportable as Chrome
trace-event JSON (``chrome://tracing`` / Perfetto).  With
``obs_metrics_interval > 0`` a simulated-clock sampler additionally
snapshots bus utilisation, collision counts, NIC queue depth, run-queue
length and DSM locality into ring-buffered series (CSV/JSONL export).

All hooks are guarded by a single ``enabled`` flag and allocate nothing
when disabled; span tracing schedules no events, so traced and untraced
runs are bit-identical on virtual clocks.
"""

from .context import TraceContext
from .export import (
    chrome_trace_events,
    chrome_trace_json,
    metrics_rows,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_jsonl,
)
from .metrics import MetricsSampler, Series
from .spans import NET_TID, NULL_RECORDER, Span, SpanRecorder

__all__ = [
    "TraceContext",
    "Span",
    "SpanRecorder",
    "NULL_RECORDER",
    "NET_TID",
    "MetricsSampler",
    "Series",
    "chrome_trace_events",
    "chrome_trace_json",
    "metrics_rows",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_jsonl",
]
