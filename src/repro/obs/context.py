"""Trace identity: the (trace-id, span-id) pair that rides with a request.

A :class:`TraceContext` is minted at the DSE API boundary and carried —
explicitly, as a field of messages, packets, and frames — down every layer
the operation touches.  The context is deliberately tiny and immutable in
practice: propagating it never allocates anything but the context object
itself, and only when tracing is enabled.

The simulator is single-threaded but interleaves many generator-based
processes, so an ambient "current span" variable would leak between
processes across yields; explicit propagation is the only correct scheme
here (the same reason distributed tracers put span ids in message headers
rather than thread-locals).
"""

from __future__ import annotations

__all__ = ["TraceContext"]


class TraceContext:
    """Identity of one span: which trace it belongs to and its span id."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceContext t{self.trace_id}/s{self.span_id}>"
