"""Exporters: Chrome trace-event JSON for spans, CSV/JSONL for series.

The span export follows the Chrome trace-event format (the ``chrome://
tracing`` / Perfetto "JSON object" flavour): one complete event (``"ph":
"X"``) per span with microsecond ``ts``/``dur``, instant events (``"ph":
"i"``), and metadata events naming each machine as a *process* and each
DSE kernel as a *thread* — drop the file onto https://ui.perfetto.dev and
one remote read renders as a nested flame across machines.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, TextIO, Union

from .metrics import MetricsSampler
from .spans import NET_TID, Span, SpanRecorder

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "metrics_rows",
    "write_metrics_csv",
    "write_metrics_jsonl",
]

_SECONDS_TO_US = 1e6


def _span_event(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "trace_id": span.ctx.trace_id,
        "span_id": span.ctx.span_id,
    }
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.args:
        args.update(span.args)
    event: Dict[str, Any] = {
        "name": span.name,
        "cat": span.cat,
        "ph": span.phase,
        "ts": span.start * _SECONDS_TO_US,
        "pid": span.pid,
        "tid": span.tid,
        "args": args,
    }
    if span.phase == "X":
        # An unterminated span (operation failed mid-flight) exports with
        # zero duration rather than being lost.
        event["dur"] = span.duration * _SECONDS_TO_US
    else:
        event["s"] = "t"  # thread-scoped instant
    return event


def _metadata_events(cluster: Any) -> List[Dict[str, Any]]:
    """process_name/thread_name events from a built cluster."""
    events: List[Dict[str, Any]] = []
    for machine in getattr(cluster, "machines", []):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": machine.station_id,
                "tid": 0,
                "args": {"name": f"{machine.hostname} (station {machine.station_id})"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": machine.station_id,
                "tid": NET_TID,
                "args": {"name": "net (NIC + bus)"},
            }
        )
    for kernel in getattr(cluster, "kernels", []):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": kernel.machine.station_id,
                "tid": kernel.unix_process.pid,
                "args": {"name": f"kernel k{kernel.kernel_id}"},
            }
        )
    # traffic-layer VirtualCluster: one lane per PS server (pid = server id)
    for server in getattr(cluster, "servers", []):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": server.server_id,
                "tid": 0,
                "args": {
                    "name": f"{getattr(cluster, 'service_name', 'svc')} "
                            f"server {server.server_id}"
                },
            }
        )
    return events


def chrome_trace_events(
    recorder: SpanRecorder, cluster: Any = None
) -> List[Dict[str, Any]]:
    """All recorded spans as Chrome trace-event dicts (metadata first)."""
    events = _metadata_events(cluster) if cluster is not None else []
    events.extend(_span_event(span) for span in recorder.spans)
    return events


def chrome_trace_json(recorder: SpanRecorder, cluster: Any = None) -> str:
    """The full Chrome trace file content as a JSON string."""
    doc = {
        "traceEvents": chrome_trace_events(recorder, cluster),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(recorder.spans),
            "dropped": recorder.dropped,
        },
    }
    return json.dumps(doc)


def write_chrome_trace(
    recorder: SpanRecorder, path: str, cluster: Any = None
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    events = chrome_trace_events(recorder, cluster)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(recorder.spans),
            "dropped": recorder.dropped,
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(events)


# -- series export -----------------------------------------------------------


def metrics_rows(sampler: MetricsSampler) -> List[Dict[str, float]]:
    """Flatten every series into ``{series, time, value}`` rows."""
    rows: List[Dict[str, float]] = []
    for name in sorted(sampler.series):
        series = sampler.series[name]
        for t, v in series.items():
            rows.append({"series": name, "time": t, "value": v})
    return rows


def write_metrics_csv(sampler: MetricsSampler, path_or_file: Union[str, TextIO]) -> int:
    """Write all series as long-format CSV; returns the row count."""
    rows = metrics_rows(sampler)

    def _write(fh: TextIO) -> None:
        writer = csv.writer(fh)
        writer.writerow(["series", "time", "value"])
        for row in rows:
            writer.writerow([row["series"], repr(row["time"]), repr(row["value"])])

    if isinstance(path_or_file, str):
        with open(path_or_file, "w", newline="") as fh:
            _write(fh)
    else:
        _write(path_or_file)
    return len(rows)


def write_metrics_jsonl(sampler: MetricsSampler, path_or_file: Union[str, TextIO]) -> int:
    """Write all series as JSON-lines; returns the row count."""
    rows = metrics_rows(sampler)

    def _write(fh: TextIO) -> None:
        for row in rows:
            fh.write(json.dumps(row) + "\n")

    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            _write(fh)
    else:
        _write(path_or_file)
    return len(rows)
