"""Span-based causal tracing.

A :class:`Span` is one timed operation on one (machine, kernel/driver)
lane; spans form a tree via ``parent_id`` within a trace, so a single
remote global-memory read is one connected tree from the DSE API call down
to the Ethernet frames and back up through SIGIO delivery.

Design constraints (the tentpole's hard requirements):

* **zero-cost when disabled** — every instrumentation site guards on the
  recorder's single ``enabled`` flag before allocating anything;
* **zero perturbation** — recording only *reads* the simulated clock; it
  never schedules events, so traced and untraced runs are bit-identical on
  virtual time.

``pid``/``tid`` follow the Chrome trace-event convention: ``pid`` is the
machine (station id), ``tid`` is the UNIX process id of the DSE kernel, or
:data:`NET_TID` for link-layer activity that belongs to the machine rather
than any process.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional

from .context import TraceContext

__all__ = ["Span", "SpanRecorder", "NULL_RECORDER", "NET_TID"]

#: tid used for link-layer spans (NIC driver, bus) — "the wire", not a process
NET_TID = -1


class Span:
    """One recorded operation (or instant, when ``end`` equals ``start``)."""

    __slots__ = ("name", "cat", "pid", "tid", "start", "end", "ctx", "parent_id", "args", "phase")

    def __init__(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        start: float,
        ctx: TraceContext,
        parent_id: Optional[int],
        phase: str = "X",
    ):
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.start = start
        self.end: Optional[float] = None
        self.ctx = ctx
        self.parent_id = parent_id
        self.args: Optional[Dict[str, Any]] = None
        self.phase = phase  # "X" complete span, "i" instant

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.name!r} t{self.ctx.trace_id}/s{self.ctx.span_id}"
            f"<-{self.parent_id} [{self.start:.6f}, {self.end}]>"
        )


class SpanRecorder:
    """Collects spans for one cluster; shared by every layer via ``sim.obs``."""

    def __init__(self, enabled: bool = False, limit: Optional[int] = None):
        self.enabled = enabled
        self.limit = limit
        self.spans: List[Span] = []
        #: spans discarded because ``limit`` was reached
        self.dropped = 0
        self._trace_ids = count(1)
        self._span_ids = count(1)

    # -- recording -----------------------------------------------------------
    def begin(
        self,
        now: float,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        parent: Optional[TraceContext] = None,
    ) -> Span:
        """Open a span; ``parent=None`` starts a new trace (a root span)."""
        if parent is None:
            ctx = TraceContext(next(self._trace_ids), next(self._span_ids))
            parent_id = None
        else:
            ctx = TraceContext(parent.trace_id, next(self._span_ids))
            parent_id = parent.span_id
        span = Span(name, cat, pid, tid, now, ctx, parent_id)
        self._keep(span)
        return span

    def end(self, span: Span, now: float) -> None:
        span.end = now

    def instant(
        self,
        now: float,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        parent: Optional[TraceContext] = None,
    ) -> Span:
        """Record a point event (collision, SIGIO, retransmission)."""
        span = self.begin(now, name, cat, pid, tid, parent)
        span.end = now
        span.phase = "i"
        return span

    def _keep(self, span: Span) -> None:
        if self.limit is not None and len(self.spans) >= self.limit:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- queries -------------------------------------------------------------
    def trace(self, trace_id: int) -> List[Span]:
        """All recorded spans of one trace, in recording order."""
        return [s for s in self.spans if s.ctx.trace_id == trace_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0


#: shared disabled recorder for components built outside a cluster
NULL_RECORDER = SpanRecorder(enabled=False)
