"""Metrics time-series: a simulated-clock periodic sampler.

The paper explains its curves with *levels* — bus utilisation, collision
rate, NIC queue depth, run-queue length, DSM hit ratio — that counters
alone cannot show over time.  :class:`MetricsSampler` snapshots registered
sources (callables and whole ``StatSet``\\ s) every ``interval`` simulated
seconds into ring-buffered :class:`Series`.

The sampler is a normal simulation process, so it *does* add events to the
queue; it stops itself as soon as it observes that nothing else is
scheduled, so a run with metrics enabled terminates (its final clock value
may land on the last sampling tick — up to one ``interval`` past the last
workload event).  Span tracing, by contrast, adds no events at all; use
``obs_trace`` alone when bit-identical end times matter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Generator, List, Tuple

__all__ = ["Series", "MetricsSampler"]


class Series:
    """One ring-buffered time-series of (time, value) samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str, maxlen: int):
        self.name = name
        self.times = deque(maxlen=maxlen)
        self.values = deque(maxlen=maxlen)

    def append(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Series {self.name} n={len(self)}>"


class MetricsSampler:
    """Samples registered sources on a fixed simulated-time cadence."""

    def __init__(self, sim: Any, interval: float, maxlen: int = 4096):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        if maxlen <= 0:
            raise ValueError(f"ring-buffer length must be positive, got {maxlen}")
        self.sim = sim
        self.interval = interval
        self.maxlen = maxlen
        self.series: Dict[str, Series] = {}
        #: (name, callable) gauges sampled each tick
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        #: (prefix, statset) — every snapshot() entry becomes a series
        self._statsets: List[Tuple[str, Any]] = []
        self.samples_taken = 0
        self._started = False

    # -- registration --------------------------------------------------------
    def register(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge: ``fn()`` is called at every tick."""
        self._gauges.append((name, fn))

    def register_statset(self, prefix: str, statset: Any) -> None:
        """Register a :class:`repro.sim.monitor.StatSet`; each snapshot key
        becomes the series ``{prefix}.{key}``."""
        self._statsets.append((prefix, statset))

    def get(self, name: str) -> Series:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name, self.maxlen)
        return series

    # -- sampling ------------------------------------------------------------
    def sample(self) -> None:
        """Take one snapshot of every registered source at the current time."""
        now = self.sim.now
        self.samples_taken += 1
        for name, fn in self._gauges:
            self.get(name).append(now, float(fn()))
        for prefix, statset in self._statsets:
            for key, value in statset.snapshot().items():
                self.get(f"{prefix}.{key}").append(now, float(value))

    def start(self) -> None:
        """Spawn the periodic sampling process on the simulator."""
        if self._started:
            raise RuntimeError("metrics sampler already started")
        self._started = True
        self.sim.process(self._loop(), name="obs.metrics")

    def _loop(self) -> Generator:
        while True:
            self.sample()
            # Stop once the queue holds nothing but our own future tick:
            # sampling forever would keep the simulation from draining.
            if self.sim.peek() == float("inf"):
                return
            yield self.sim.timeout(self.interval)
