"""Reliable (TCP-flavoured) transports built on the datagram service.

The original DSE optimised TCP/IP processing and paid for it with protocol
dependency; the re-organised DSE abstracts the transport.  This module
provides the reliable options:

* :class:`ReliableService` — per-destination **stop-and-wait** with
  acknowledgements, retransmission on timeout, and duplicate suppression;
* :class:`WindowedReliableService` — **go-back-N** sliding window with
  cumulative acknowledgements, for streams of back-to-back messages.

On the simulated fabrics loss only happens when frames are dropped by a
fault injector (:mod:`repro.network.faults`) or exceed the 802.3 collision
limit, so retransmissions are rare — but the machinery is real and the
failure-injection tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..errors import ProtocolError
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from .packet import Packet
from .udp import DatagramService, Mailbox

__all__ = [
    "ReliableService",
    "WindowedReliableService",
    "RELIABLE_ACK_PORT_OFFSET",
    "GBN_ACK_PORT_OFFSET",
]

#: acks for data port P arrive on port P + offset
RELIABLE_ACK_PORT_OFFSET = 32768


@dataclass
class _Seg:
    """Reliable segment envelope carried inside a datagram payload."""

    kind: str  # "data" | "ack"
    seq: int
    user_payload: Any = None


class ReliableService:
    """Reliable in-order delivery over :class:`DatagramService`.

    Usage mirrors the datagram service: ``bind`` a port, ``send`` to a
    station/port.  ``send`` completes when the segment is acknowledged.
    """

    ACK_BYTES = 4

    def __init__(
        self,
        sim: Simulator,
        datagram: DatagramService,
        retransmit_timeout: float = 0.050,
        max_retries: int = 8,
    ):
        self.sim = sim
        self.datagram = datagram
        self.station = datagram.station
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self._ack_events: Dict[Tuple[int, int, int], Event] = {}
        self._ack_mailbox: Optional[Mailbox] = None
        self._bound: Dict[int, Mailbox] = {}
        self.stats = StatSet(f"rel:{self.station}")

    # -- setup --------------------------------------------------------------
    def _ensure_ack_port(self) -> None:
        if self._ack_mailbox is None:
            self._ack_mailbox = self.datagram.bind(RELIABLE_ACK_PORT_OFFSET)
            self._ack_mailbox.on_arrival = self._on_ack

    def bind(self, port: int) -> Mailbox:
        """Bind a reliable port; returns the mailbox of *user* packets."""
        if port >= RELIABLE_ACK_PORT_OFFSET:
            raise ProtocolError(f"reliable ports must be < {RELIABLE_ACK_PORT_OFFSET}")
        if port in self._bound:
            raise ProtocolError(f"reliable port {port} already bound")
        self._ensure_ack_port()
        inner = self.datagram.bind(port)
        outer = Mailbox(self.sim, self.station, port)
        inner.on_arrival = lambda pkt: self._on_data(pkt, outer)
        # Drain the inner queue so packets do not accumulate twice.
        self.sim.process(self._sink(inner), name=f"rel-sink:{self.station}:{port}")
        self._bound[port] = outer
        return outer

    def _sink(self, inner: Mailbox) -> Generator[Event, Any, None]:
        while True:
            yield inner.get()

    def unbind(self, port: int) -> None:
        if port not in self._bound:
            raise ProtocolError(f"reliable port {port} is not bound")
        del self._bound[port]
        self.datagram.unbind(port)

    def loopback(
        self,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Packet:
        """Local delivery to a reliable port (inherently loss-free, so the
        ack machinery is bypassed)."""
        outer = self._bound.get(dst_port)
        if outer is None:
            raise ProtocolError(f"reliable port {dst_port} is not bound")
        packet = Packet(
            src=self.station,
            dst=self.station,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_bytes=payload_bytes,
            trace=trace,
        )
        self.stats.counter("loopback_packets").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(packet)
        outer.queue.put(packet)
        return packet

    # -- receive path ---------------------------------------------------------
    def _on_data(self, packet: Packet, outer: Mailbox) -> None:
        seg: _Seg = packet.payload
        key = (packet.src, packet.dst_port)
        expected = self._recv_seq.get(key, 0)
        if seg.seq != expected:
            if seg.seq < expected:
                # Duplicate of already-delivered data (our ack was lost):
                # re-ack so the sender stops retransmitting.
                self._send_ack(packet.src, packet.dst_port, seg.seq)
                self.stats.counter("duplicates_dropped").increment()
            else:
                # A segment from the future: an earlier one on this port is
                # still missing.  Acking it would confirm data we discard
                # right here — the sender would stop retransmitting and the
                # payload would be lost for good (a lost wakeup when the
                # payload is a lock grant or barrier release).  Stay silent
                # and let the sender's timer re-send it after the gap fills.
                self.stats.counter("out_of_order_dropped").increment()
            return
        self._recv_seq[key] = expected + 1
        self._send_ack(packet.src, packet.dst_port, seg.seq)
        user_packet = Packet(
            src=packet.src,
            dst=packet.dst,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=seg.user_payload,
            payload_bytes=packet.payload_bytes,
            trace=packet.trace,
        )
        self.stats.counter("delivered").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(user_packet)
        outer.queue.put(user_packet)

    def _send_ack(self, dst: int, port: int, seq: int) -> None:
        def do_send() -> Generator[Event, Any, None]:
            yield from self.datagram.send(
                dst,
                RELIABLE_ACK_PORT_OFFSET,
                _Seg(kind="ack", seq=seq, user_payload=port),
                self.ACK_BYTES,
            )

        self.sim.process(do_send(), name=f"rel-ack:{self.station}")

    def _on_ack(self, packet: Packet) -> None:
        seg: _Seg = packet.payload
        port = seg.user_payload
        key = (packet.src, port, seg.seq)
        event = self._ack_events.pop(key, None)
        if event is not None and not event.triggered:
            event.succeed()

    # -- send path ------------------------------------------------------------
    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator[Event, Any, None]:
        """Send reliably; completes when the receiver has acknowledged."""
        self._ensure_ack_port()
        key = (dst, dst_port)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        seg = _Seg(kind="data", seq=seq, user_payload=payload)
        attempt = 0
        while True:
            ack_event = self.sim.event(name=f"ack:{dst}:{dst_port}:{seq}")
            self._ack_events[(dst, dst_port, seq)] = ack_event
            yield from self.datagram.send(
                dst, dst_port, seg, payload_bytes, src_port, trace=trace
            )
            self.stats.counter("segments_sent").increment()
            timer = self.sim.timeout(self.retransmit_timeout)
            outcome = yield self.sim.any_of([ack_event, timer])
            if ack_event in outcome:
                return
            self._ack_events.pop((dst, dst_port, seq), None)
            attempt += 1
            self.stats.counter("retransmissions").increment()
            if attempt > self.max_retries:
                raise ProtocolError(
                    f"reliable send {self.station}->{dst}:{dst_port} seq={seq} "
                    f"failed after {self.max_retries} retries"
                )


# --------------------------------------------------------------------------
# Go-back-N sliding window
# --------------------------------------------------------------------------

#: acks for the windowed service use a separate well-known port
GBN_ACK_PORT_OFFSET = 32769


class _GBNStream:
    """Sender-side state of one (dst, port) go-back-N stream."""

    __slots__ = ("base", "next_seq", "buffer", "timer_epoch", "window_event")

    def __init__(self) -> None:
        self.base = 0  # oldest unacknowledged sequence number
        self.next_seq = 0  # next sequence number to assign
        #: seq -> (payload, nbytes, src_port, trace) — trace rides along so
        #: go-back-N retransmissions stay on the original causal tree
        self.buffer: Dict[int, Tuple[Any, int, int, Any]] = {}
        self.timer_epoch = 0  # invalidates outstanding retransmit timers
        self.window_event: Optional[Event] = None  # set while window is full

    @property
    def in_flight(self) -> int:
        return self.next_seq - self.base


class WindowedReliableService:
    """Reliable in-order delivery with a go-back-N sliding window.

    Where :class:`ReliableService` stalls one round trip per message,
    this service keeps up to ``window`` segments in flight per
    destination stream and acknowledges cumulatively — the standard
    pipelining win for message bursts, at the cost of full-window
    retransmission on loss.
    """

    ACK_BYTES = 4

    def __init__(
        self,
        sim: Simulator,
        datagram: DatagramService,
        window: int = 8,
        retransmit_timeout: float = 0.050,
        max_retries: int = 16,
    ):
        if window < 1:
            raise ProtocolError(f"window must be >= 1, got {window}")
        self.sim = sim
        self.datagram = datagram
        self.station = datagram.station
        self.window = window
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self._streams: Dict[Tuple[int, int], _GBNStream] = {}
        self._recv_expected: Dict[Tuple[int, int], int] = {}
        self._bound: Dict[int, Mailbox] = {}
        self._ack_mailbox: Optional[Mailbox] = None
        self._retries: Dict[Tuple[int, int], int] = {}
        self.stats = StatSet(f"gbn:{self.station}")

    # -- setup --------------------------------------------------------------
    def _ensure_ack_port(self) -> None:
        if self._ack_mailbox is None:
            self._ack_mailbox = self.datagram.bind(GBN_ACK_PORT_OFFSET)
            self._ack_mailbox.on_arrival = self._on_ack

    def bind(self, port: int) -> Mailbox:
        if port >= RELIABLE_ACK_PORT_OFFSET:
            raise ProtocolError(f"reliable ports must be < {RELIABLE_ACK_PORT_OFFSET}")
        if port in self._bound:
            raise ProtocolError(f"windowed port {port} already bound")
        self._ensure_ack_port()
        inner = self.datagram.bind(port)
        outer = Mailbox(self.sim, self.station, port)
        inner.on_arrival = lambda pkt: self._on_data(pkt, outer)
        self.sim.process(self._sink(inner), name=f"gbn-sink:{self.station}:{port}")
        self._bound[port] = outer
        return outer

    def unbind(self, port: int) -> None:
        if port not in self._bound:
            raise ProtocolError(f"windowed port {port} is not bound")
        del self._bound[port]
        self.datagram.unbind(port)

    def _sink(self, inner: Mailbox) -> Generator[Event, Any, None]:
        while True:
            yield inner.get()

    # -- receive path ---------------------------------------------------------
    def _on_data(self, packet: Packet, outer: Mailbox) -> None:
        seg: _Seg = packet.payload
        key = (packet.src, packet.dst_port)
        expected = self._recv_expected.get(key, 0)
        if seg.seq == expected:
            self._recv_expected[key] = expected + 1
            expected += 1
            user_packet = Packet(
                src=packet.src,
                dst=packet.dst,
                src_port=packet.src_port,
                dst_port=packet.dst_port,
                payload=seg.user_payload,
                payload_bytes=packet.payload_bytes,
                trace=packet.trace,
            )
            self.stats.counter("delivered").increment()
            if outer.on_arrival is not None:
                outer.on_arrival(user_packet)
            outer.queue.put(user_packet)
        else:
            self.stats.counter("out_of_order_dropped").increment()
        # (the cumulative ack below carries no trace: acks are bookkeeping,
        # not part of any one message's causal path)
        # Cumulative ack: "next expected" (re-acks repair lost acks).
        self._send_ack(packet.src, packet.dst_port, expected)

    def _send_ack(self, dst: int, port: int, ackno: int) -> None:
        def do_send() -> Generator[Event, Any, None]:
            yield from self.datagram.send(
                dst,
                GBN_ACK_PORT_OFFSET,
                _Seg(kind="ack", seq=ackno, user_payload=port),
                self.ACK_BYTES,
            )

        self.sim.process(do_send(), name=f"gbn-ack:{self.station}")

    def _on_ack(self, packet: Packet) -> None:
        seg: _Seg = packet.payload
        key = (packet.src, seg.user_payload)
        stream = self._streams.get(key)
        if stream is None:
            return
        if seg.seq > stream.base:
            for seqno in range(stream.base, seg.seq):
                stream.buffer.pop(seqno, None)
            stream.base = seg.seq
            self._retries[key] = 0
            stream.timer_epoch += 1
            if stream.base < stream.next_seq:
                self._arm_timer(key, stream)
            if stream.window_event is not None and not stream.window_event.triggered:
                stream.window_event.succeed()
                stream.window_event = None

    # -- send path ------------------------------------------------------------
    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator[Event, Any, None]:
        """Send one message; completes when it has entered the window (it
        may still be in flight — use :meth:`flush` for a full drain)."""
        self._ensure_ack_port()
        key = (dst, dst_port)
        stream = self._streams.setdefault(key, _GBNStream())
        while stream.in_flight >= self.window:
            if stream.window_event is None or stream.window_event.triggered:
                stream.window_event = self.sim.event(name=f"gbn-window:{dst}:{dst_port}")
            yield stream.window_event
        seq = stream.next_seq
        stream.next_seq += 1
        stream.buffer[seq] = (payload, payload_bytes, src_port, trace)
        yield from self._transmit(key, seq)
        self.stats.counter("segments_sent").increment()
        if stream.base < stream.next_seq:
            self._arm_timer(key, stream)

    def flush(self, dst: int, dst_port: int) -> Generator[Event, Any, None]:
        """Wait until every sent segment on the stream is acknowledged."""
        key = (dst, dst_port)
        stream = self._streams.get(key)
        if stream is None:
            return
        while stream.base < stream.next_seq:
            if stream.window_event is None or stream.window_event.triggered:
                stream.window_event = self.sim.event(name=f"gbn-flush:{dst}:{dst_port}")
            yield stream.window_event

    def _transmit(self, key: Tuple[int, int], seq: int) -> Generator[Event, Any, None]:
        dst, dst_port = key
        stream = self._streams[key]
        entry = stream.buffer.get(seq)
        if entry is None:
            return  # acked in the meantime
        payload, nbytes, src_port, trace = entry
        yield from self.datagram.send(
            dst, dst_port, _Seg(kind="data", seq=seq, user_payload=payload),
            nbytes, src_port, trace=trace,
        )

    def _arm_timer(self, key: Tuple[int, int], stream: _GBNStream) -> None:
        # Several timers may share an epoch (one per send); only the first
        # to fire acts — it bumps the epoch, making the rest stale no-ops.
        epoch = stream.timer_epoch
        timer = self.sim.timeout(self.retransmit_timeout)
        timer.callbacks.append(lambda _ev: self._on_timer(key, epoch))

    def _on_timer(self, key: Tuple[int, int], epoch: int) -> None:
        stream = self._streams.get(key)
        if stream is None or epoch != stream.timer_epoch:
            return
        if stream.base >= stream.next_seq:
            return  # everything acknowledged
        retries = self._retries.get(key, 0) + 1
        self._retries[key] = retries
        if retries > self.max_retries:
            raise ProtocolError(
                f"go-back-N stream {self.station}->{key} stalled after "
                f"{self.max_retries} retransmission rounds"
            )
        stream.timer_epoch += 1
        self.stats.counter("gobackn_rounds").increment()

        def retransmit_all() -> Generator[Event, Any, None]:
            for seqno in range(stream.base, stream.next_seq):
                self.stats.counter("retransmissions").increment()
                yield from self._transmit(key, seqno)

        self.sim.process(retransmit_all(), name=f"gbn-rexmit:{self.station}")
        self._arm_timer(key, stream)

    def loopback(
        self,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Packet:
        """Local delivery (loss-free: bypasses the window machinery)."""
        outer = self._bound.get(dst_port)
        if outer is None:
            raise ProtocolError(f"windowed port {dst_port} is not bound")
        packet = Packet(
            src=self.station,
            dst=self.station,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_bytes=payload_bytes,
            trace=trace,
        )
        self.stats.counter("loopback_packets").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(packet)
        outer.queue.put(packet)
        return packet
