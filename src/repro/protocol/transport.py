"""Transport abstraction.

The re-organised DSE "eliminates dependency on a specific communication
protocol" — the kernel's message-exchange module talks to this interface,
and cluster construction decides whether the wire service is the datagram
or the reliable transport.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Protocol, Union

from ..errors import ConfigurationError
from ..sim.core import Simulator
from ..network.nic import NIC
from .udp import DatagramService, Mailbox
from .tcp import ReliableService, WindowedReliableService

__all__ = ["Transport", "make_transport", "TRANSPORT_KINDS"]

TRANSPORT_KINDS = ("datagram", "reliable", "reliable-gbn")


class Transport(Protocol):
    """Structural interface shared by the transports."""

    def bind(self, port: int) -> Mailbox: ...

    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator: ...


def make_transport(
    sim: Simulator, nic: NIC, kind: str = "datagram"
) -> Union[DatagramService, ReliableService, WindowedReliableService]:
    """Build the requested transport over ``nic``."""
    if kind not in TRANSPORT_KINDS:
        raise ConfigurationError(
            f"unknown transport kind {kind!r}; expected one of {TRANSPORT_KINDS}"
        )
    datagram = DatagramService(sim, nic)
    if kind == "datagram":
        return datagram
    if kind == "reliable":
        return ReliableService(sim, datagram)
    return WindowedReliableService(sim, datagram)
