"""Transport abstraction.

The re-organised DSE "eliminates dependency on a specific communication
protocol" — the kernel's message-exchange module talks to this interface,
and cluster construction decides whether the wire service is the datagram
service, one of the reliable transports, or the dual-channel stack:

==============  ============================================================
kind            service
==============  ============================================================
``datagram``    :class:`~repro.protocol.udp.DatagramService` — unreliable
``reliable``    :class:`~repro.protocol.tcp.ReliableService` — stop-and-wait
``reliable-gbn``:class:`~repro.protocol.tcp.WindowedReliableService` — go-back-N
``sr``          :class:`~repro.protocol.sr.SelectiveRepeatService` — SR+SACK,
                AIMD congestion control
``dual``        :class:`~repro.protocol.channels.DualChannelService` — SR+SACK
                reliable channel + raw unreliable channel on one NIC
==============  ============================================================

See ``docs/networking.md`` for the state machines and selection guidance.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, Union

from ..errors import ConfigurationError
from ..sim.core import Simulator
from ..network.nic import NIC
from .channels import DualChannelService
from .sr import SelectiveRepeatService
from .tcp import ReliableService, WindowedReliableService
from .udp import DatagramService, Mailbox

__all__ = ["Transport", "make_transport", "TRANSPORT_KINDS"]

TRANSPORT_KINDS = ("datagram", "reliable", "reliable-gbn", "sr", "dual")


class Transport(Protocol):
    """Structural interface shared by the transports."""

    def bind(self, port: int) -> Mailbox: ...

    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator: ...


def make_transport(
    sim: Simulator, nic: NIC, kind: str = "datagram"
) -> Union[
    DatagramService,
    ReliableService,
    WindowedReliableService,
    SelectiveRepeatService,
    DualChannelService,
]:
    """Build the requested transport over ``nic``."""
    if kind not in TRANSPORT_KINDS:
        raise ConfigurationError(
            f"unknown transport kind {kind!r}; expected one of {TRANSPORT_KINDS}"
        )
    datagram = DatagramService(sim, nic)
    if kind == "datagram":
        return datagram
    if kind == "reliable":
        return ReliableService(sim, datagram)
    if kind == "reliable-gbn":
        return WindowedReliableService(sim, datagram)
    if kind == "sr":
        return SelectiveRepeatService(sim, datagram)
    return DualChannelService(sim, datagram)
