"""Selective-repeat + SACK reliable transport with AIMD congestion control.

The stop-and-wait (:class:`~repro.protocol.tcp.ReliableService`) and
go-back-N (:class:`~repro.protocol.tcp.WindowedReliableService`) transports
pay for loss with dead air: stop-and-wait stalls one round trip per
message, go-back-N re-sends the whole window on one hole.  This module is
the modern alternative:

* **selective repeat** — the receiver buffers out-of-order segments and
  delivers in order; only the holes are ever retransmitted;
* **SACK** — every acknowledgement carries the cumulative "next expected"
  sequence number *plus* the coalesced ranges received beyond it, so the
  sender knows exactly which segments survived a burst;
* **fast retransmit** — a segment that has been SACKed past
  ``DUP_THRESHOLD`` times is re-sent immediately (~1 RTT after the loss)
  instead of waiting out a timer;
* **AIMD congestion window** — slow start to ``ssthresh``, additive
  increase beyond it, multiplicative decrease on fast retransmit, collapse
  to ``CWND_FLOOR`` on a retransmission timeout;
* **adaptive RTO** — per-flow Jacobson/Karn RTT estimation
  (``srtt + 4 * rttvar``, exponential backoff while a flow stays dark).

A flow is one ``(destination station, destination port)`` stream.  All
state machines are documented with diagrams in ``docs/networking.md``; the
loss benchmarks live in ``benchmarks/bench_transport_loss.py``.

The receive path is **dual-channel capable**: a packet whose payload is
not an :class:`SRSegment` is delivered straight to the bound mailbox, so
:class:`~repro.protocol.channels.DualChannelService` can interleave raw
(unreliable, low-latency) datagrams with reliable traffic on one port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import ProtocolError
from ..obs.spans import NET_TID, NULL_RECORDER
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from .packet import Packet
from .udp import DatagramService, Mailbox

__all__ = [
    "SRSegment",
    "SelectiveRepeatService",
    "SR_ACK_PORT_OFFSET",
    "coalesce_ranges",
]

#: acks for the selective-repeat service use their own well-known port
SR_ACK_PORT_OFFSET = 32770


def coalesce_ranges(seqs: List[int]) -> Tuple[Tuple[int, int], ...]:
    """Collapse sequence numbers into maximal ``(start, end)`` runs.

    Ranges are inclusive on both ends and sorted ascending — the SACK
    blocks the receiver advertises.  ``[5, 3, 4, 9, 7]`` becomes
    ``((3, 5), (7, 7), (9, 9))``.
    """
    if not seqs:
        return ()
    ordered = sorted(seqs)
    ranges = []
    start = prev = ordered[0]
    for seq in ordered[1:]:
        if seq == prev:  # duplicates collapse
            continue
        if seq == prev + 1:
            prev = seq
            continue
        ranges.append((start, prev))
        start = prev = seq
    ranges.append((start, prev))
    return tuple(ranges)


@dataclass
class SRSegment:
    """Wire envelope of the selective-repeat service.

    ``kind == "data"`` carries ``seq`` and the user payload.  ``kind ==
    "ack"`` carries the cumulative ack in ``seq`` (next expected sequence
    number), the data port it acknowledges in ``port``, and the coalesced
    SACK ranges received beyond the cumulative point in ``sack``.
    """

    kind: str  # "data" | "ack"
    seq: int
    user_payload: Any = None
    port: int = 0
    sack: Tuple[Tuple[int, int], ...] = ()


class _TxSeg:
    """Sender-side bookkeeping for one unacknowledged segment."""

    __slots__ = ("payload", "nbytes", "src_port", "trace", "sent_at",
                 "retransmitted", "sacked", "sacked_past")

    def __init__(self, payload: Any, nbytes: int, src_port: int, trace: Any,
                 sent_at: float):
        self.payload = payload
        self.nbytes = nbytes
        self.src_port = src_port
        self.trace = trace
        self.sent_at = sent_at  # last transmission time (RTT sampling)
        self.retransmitted = False  # Karn: no RTT sample once re-sent
        self.sacked = False  # receiver holds it; never retransmit
        self.sacked_past = 0  # times a higher segment was SACKed/acked


class _SRFlow:
    """Sender-side state of one (dst, port) selective-repeat flow."""

    __slots__ = ("base", "next_seq", "buffer", "timer_epoch", "window_event",
                 "cwnd", "ssthresh", "srtt", "rttvar", "rto", "backoff",
                 "recover", "stall_rounds", "high_sack", "n_sacked")

    def __init__(self, initial_rto: float, cwnd_init: float, ssthresh: float):
        self.base = 0  # oldest unacknowledged sequence number
        self.next_seq = 0  # next sequence number to assign
        self.buffer: Dict[int, _TxSeg] = {}
        self.timer_epoch = 0  # invalidates outstanding retransmit timers
        self.window_event: Optional[Event] = None  # set while window is full
        # -- congestion control (AIMD) --
        self.cwnd = cwnd_init  # congestion window, in segments
        self.ssthresh = ssthresh  # slow start / additive increase boundary
        # -- RTT estimation (Jacobson/Karn) --
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = initial_rto
        self.backoff = 1.0  # exponential timer backoff multiplier
        self.recover = 0  # fast-recovery episode boundary (seq)
        self.stall_rounds = 0  # consecutive timeouts without progress
        self.high_sack = -1  # highest sequence number ever SACKed
        self.n_sacked = 0  # outstanding segments held by the receiver

    @property
    def in_flight(self) -> int:
        return self.next_seq - self.base

    @property
    def pipe(self) -> int:
        """Segments actually unaccounted for on the wire: outstanding
        minus those the receiver already holds (SACKed) — the window
        gates on this, so SACK arrivals keep the ack clock running
        through a loss episode (limited-transmit effect)."""
        return self.in_flight - self.n_sacked

    def window(self, cap: int) -> int:
        """Effective send window: ``min(floor(cwnd), cap)``, at least 1."""
        return max(1, min(int(self.cwnd), cap))


class _RxFlow:
    """Receiver-side state of one (src, port) selective-repeat flow."""

    __slots__ = ("rcv_next", "buffer")

    def __init__(self) -> None:
        self.rcv_next = 0  # next sequence number to deliver in order
        self.buffer: Dict[int, Packet] = {}  # out-of-order hold


class SelectiveRepeatService:
    """Reliable in-order delivery with selective repeat, SACK and AIMD.

    Usage mirrors the other reliable services: ``bind`` a port, ``send``
    to a station/port.  ``send`` completes when the segment has entered
    the congestion window and been transmitted once (pipelined); use
    :meth:`flush` to wait for full acknowledgement of a flow.
    """

    ACK_BYTES = 4
    #: extra accounted wire bytes per advertised SACK range (two seqnos)
    SACK_RANGE_BYTES = 8
    #: segments SACKed past an outstanding segment before fast retransmit
    DUP_THRESHOLD = 3

    def __init__(
        self,
        sim: Simulator,
        datagram: DatagramService,
        max_window: int = 32,
        cwnd_init: float = 2.0,
        cwnd_floor: float = 1.0,
        initial_rto: float = 0.010,
        min_rto: float = 0.003,
        max_rto: float = 0.200,
        max_sack_ranges: int = 3,
        max_stall_rounds: int = 30,
    ):
        if max_window < 1:
            raise ProtocolError(f"max_window must be >= 1, got {max_window}")
        if cwnd_floor < 1.0:
            raise ProtocolError(f"cwnd_floor must be >= 1, got {cwnd_floor}")
        self.sim = sim
        self.datagram = datagram
        self.station = datagram.station
        self.max_window = max_window
        self.cwnd_init = cwnd_init
        self.cwnd_floor = cwnd_floor
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.max_sack_ranges = max_sack_ranges
        self.max_stall_rounds = max_stall_rounds
        self._flows: Dict[Tuple[int, int], _SRFlow] = {}
        self._rx: Dict[Tuple[int, int], _RxFlow] = {}
        self._bound: Dict[int, Mailbox] = {}
        self._ack_mailbox: Optional[Mailbox] = None
        self.stats = StatSet(f"sr:{self.station}")
        self.obs = getattr(sim, "obs", None) or NULL_RECORDER

    # -- setup --------------------------------------------------------------
    def _ensure_ack_port(self) -> None:
        if self._ack_mailbox is None:
            self._ack_mailbox = self.datagram.bind(SR_ACK_PORT_OFFSET)
            self._ack_mailbox.on_arrival = self._on_ack

    def bind(self, port: int) -> Mailbox:
        """Bind a reliable port; returns the mailbox of *user* packets."""
        if port >= SR_ACK_PORT_OFFSET:
            raise ProtocolError(f"reliable ports must be < {SR_ACK_PORT_OFFSET}")
        if port in self._bound:
            raise ProtocolError(f"selective-repeat port {port} already bound")
        self._ensure_ack_port()
        inner = self.datagram.bind(port)
        outer = Mailbox(self.sim, self.station, port)
        inner.on_arrival = lambda pkt: self._on_packet(pkt, outer)
        # Drain the inner queue so packets do not accumulate twice.
        self.sim.process(self._sink(inner), name=f"sr-sink:{self.station}:{port}")
        self._bound[port] = outer
        return outer

    def unbind(self, port: int) -> None:
        if port not in self._bound:
            raise ProtocolError(f"selective-repeat port {port} is not bound")
        del self._bound[port]
        self.datagram.unbind(port)

    def _sink(self, inner: Mailbox) -> Generator[Event, Any, None]:
        while True:
            yield inner.get()

    def loopback(
        self,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Packet:
        """Local delivery (inherently loss-free: bypasses the window)."""
        outer = self._bound.get(dst_port)
        if outer is None:
            raise ProtocolError(f"selective-repeat port {dst_port} is not bound")
        packet = Packet(
            src=self.station,
            dst=self.station,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_bytes=payload_bytes,
            trace=trace,
        )
        self.stats.counter("loopback_packets").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(packet)
        outer.queue.put(packet)
        return packet

    # -- receive path -------------------------------------------------------
    def _on_packet(self, packet: Packet, outer: Mailbox) -> None:
        seg = packet.payload
        if not isinstance(seg, SRSegment):
            # Dual-channel raw datagram: no sequencing, deliver as-is.
            self.stats.counter("raw_delivered").increment()
            if outer.on_arrival is not None:
                outer.on_arrival(packet)
            outer.queue.put(packet)
            return
        key = (packet.src, packet.dst_port)
        flow = self._rx.setdefault(key, _RxFlow())
        if seg.seq < flow.rcv_next:
            # Duplicate of delivered data (our ack was lost): re-ack so the
            # sender stops retransmitting.
            self.stats.counter("duplicates_dropped").increment()
        elif seg.seq == flow.rcv_next:
            self._deliver(packet, seg, outer)
            flow.rcv_next += 1
            # Drain any buffered run that became contiguous.
            while flow.rcv_next in flow.buffer:
                held = flow.buffer.pop(flow.rcv_next)
                self._deliver(held, held.payload, outer)
                flow.rcv_next += 1
        elif seg.seq in flow.buffer:
            self.stats.counter("duplicates_dropped").increment()
        else:
            # Out of order: selective repeat buffers it instead of dropping.
            flow.buffer[seg.seq] = packet
            self.stats.counter("out_of_order_buffered").increment()
        self._send_ack(packet.src, packet.dst_port, flow)

    def _deliver(self, packet: Packet, seg: SRSegment, outer: Mailbox) -> None:
        user_packet = Packet(
            src=packet.src,
            dst=packet.dst,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=seg.user_payload,
            payload_bytes=packet.payload_bytes,
            trace=packet.trace,
        )
        self.stats.counter("delivered").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(user_packet)
        outer.queue.put(user_packet)

    def _send_ack(self, dst: int, port: int, flow: _RxFlow) -> None:
        ranges = coalesce_ranges(list(flow.buffer))[: self.max_sack_ranges]
        ack = SRSegment(kind="ack", seq=flow.rcv_next, port=port, sack=ranges)
        self.stats.counter("sacks_sent").increment()
        if ranges:
            self.stats.tally("sack_ranges").observe(len(ranges))
        nbytes = self.ACK_BYTES + len(ranges) * self.SACK_RANGE_BYTES

        def do_send() -> Generator[Event, Any, None]:
            yield from self.datagram.send(dst, SR_ACK_PORT_OFFSET, ack, nbytes)

        self.sim.process(do_send(), name=f"sr-ack:{self.station}")

    # -- sender: ack processing --------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        seg: SRSegment = packet.payload
        key = (packet.src, seg.port)
        flow = self._flows.get(key)
        if flow is None:
            return
        now = self.sim.now
        progress = False
        # 1. Cumulative advance: everything below seg.seq is delivered.
        if seg.seq > flow.base:
            newly = 0
            sample_from: Optional[_TxSeg] = None
            for seqno in range(flow.base, seg.seq):
                txseg = flow.buffer.pop(seqno, None)
                if txseg is None:
                    continue
                if txseg.sacked:
                    flow.n_sacked -= 1
                else:
                    newly += 1
                if not txseg.retransmitted:
                    sample_from = txseg  # highest cleanly acked segment
            flow.base = seg.seq
            progress = True
            if sample_from is not None:
                self._rtt_sample(flow, now - sample_from.sent_at)
            self._grow_cwnd(flow, max(newly, 1))
        # 2. SACK ranges: mark survivors, never retransmit them.
        sacked_any = False
        high_sack = flow.base - 1
        for start, end in seg.sack:
            high_sack = max(high_sack, end)
            for seqno in range(max(start, flow.base), end + 1):
                txseg = flow.buffer.get(seqno)
                if txseg is not None and not txseg.sacked:
                    txseg.sacked = True
                    flow.n_sacked += 1
                    sacked_any = True
                    if not txseg.retransmitted:
                        self._rtt_sample(flow, now - txseg.sent_at)
        flow.high_sack = max(flow.high_sack, high_sack)
        # 3. Fast retransmit: a hole SACKed past DUP_THRESHOLD times.
        if high_sack >= flow.base:
            self._score_holes(key, flow, high_sack)
        # 4. Partial ack during a loss episode (base advanced but not out
        #    of the episode yet): the next hole is almost certainly part of
        #    the same burst — re-send it now instead of waiting out the dup
        #    threshold or a timer (NewReno partial-ack retransmission).
        if progress and flow.base < flow.recover:
            txseg = flow.buffer.get(flow.base)
            if txseg is not None and not txseg.sacked:
                self.stats.counter("partial_ack_retransmits").increment()
                self._retransmit(key, flow.base)
        if progress or sacked_any:
            flow.stall_rounds = 0
            flow.backoff = 1.0
            flow.timer_epoch += 1
            if flow.base < flow.next_seq:
                self._arm_timer(key, flow)
            self._wake_window(flow)

    def _score_holes(self, key: Tuple[int, int], flow: _SRFlow, high_sack: int) -> None:
        for seqno in range(flow.base, high_sack):
            txseg = flow.buffer.get(seqno)
            if txseg is None or txseg.sacked:
                continue
            txseg.sacked_past += 1
            if txseg.sacked_past >= self.DUP_THRESHOLD:
                txseg.sacked_past = -(1 << 30)  # once per timer epoch
                self.stats.counter("fast_retransmits").increment()
                if seqno >= flow.recover:
                    # One multiplicative decrease per loss episode.
                    flow.recover = flow.next_seq
                    flow.ssthresh = max(flow.cwnd / 2.0, 2.0)
                    flow.cwnd = max(flow.cwnd / 2.0, self.cwnd_floor)
                self._retransmit(key, seqno)

    def _rtt_sample(self, flow: _SRFlow, sample: float) -> None:
        if sample < 0:  # pragma: no cover - clocks only move forward
            return
        if flow.srtt is None:
            flow.srtt = sample
            flow.rttvar = sample / 2.0
        else:
            flow.rttvar = 0.75 * flow.rttvar + 0.25 * abs(flow.srtt - sample)
            flow.srtt = 0.875 * flow.srtt + 0.125 * sample
        flow.rto = min(max(flow.srtt + 4.0 * flow.rttvar, self.min_rto), self.max_rto)
        self.stats.tally("rtt").observe(sample)

    def _grow_cwnd(self, flow: _SRFlow, newly_acked: int) -> None:
        if flow.cwnd < flow.ssthresh:
            # Slow start: one segment per newly acked segment.
            flow.cwnd = min(flow.cwnd + newly_acked, float(self.max_window))
        else:
            # Congestion avoidance: additive increase, ~1 segment per RTT.
            flow.cwnd = min(
                flow.cwnd + newly_acked / flow.cwnd, float(self.max_window)
            )

    def _wake_window(self, flow: _SRFlow) -> None:
        if flow.window_event is not None and not flow.window_event.triggered:
            flow.window_event.succeed()
            flow.window_event = None

    # -- send path ----------------------------------------------------------
    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator[Event, Any, None]:
        """Send one message; completes when it has entered the window (it
        may still be in flight — use :meth:`flush` for a full drain)."""
        self._ensure_ack_port()
        key = (dst, dst_port)
        flow = self._flows.get(key)
        if flow is None:
            flow = _SRFlow(self.initial_rto, self.cwnd_init, float(self.max_window))
            self._flows[key] = flow
        while flow.pipe >= flow.window(self.max_window):
            if flow.window_event is None or flow.window_event.triggered:
                flow.window_event = self.sim.event(name=f"sr-window:{dst}:{dst_port}")
            yield flow.window_event
        seq = flow.next_seq
        flow.next_seq += 1
        flow.buffer[seq] = _TxSeg(payload, payload_bytes, src_port, trace, self.sim.now)
        yield from self._transmit(key, seq, first=True)
        self.stats.counter("segments_sent").increment()
        if flow.base < flow.next_seq:
            self._arm_timer(key, flow)

    def flush(self, dst: int, dst_port: int) -> Generator[Event, Any, None]:
        """Wait until every sent segment on the flow is acknowledged."""
        key = (dst, dst_port)
        flow = self._flows.get(key)
        if flow is None:
            return
        while flow.base < flow.next_seq:
            if flow.window_event is None or flow.window_event.triggered:
                flow.window_event = self.sim.event(name=f"sr-flush:{dst}:{dst_port}")
            yield flow.window_event

    def _transmit(
        self, key: Tuple[int, int], seq: int, first: bool = False
    ) -> Generator[Event, Any, None]:
        dst, dst_port = key
        flow = self._flows[key]
        txseg = flow.buffer.get(seq)
        if txseg is None:
            return  # acked in the meantime
        if not first:
            txseg.retransmitted = True
            txseg.sent_at = self.sim.now
        seg = SRSegment(kind="data", seq=seq, user_payload=txseg.payload)
        yield from self.datagram.send(
            dst, dst_port, seg, txseg.nbytes, txseg.src_port, trace=txseg.trace
        )

    def _retransmit(self, key: Tuple[int, int], seq: int) -> None:
        flow = self._flows[key]
        txseg = flow.buffer.get(seq)
        if txseg is None or txseg.sacked:
            return
        self.stats.counter("retransmissions").increment()
        if self.obs.enabled and txseg.trace is not None:
            self.obs.instant(
                self.sim.now, "net.rexmit", "net", self.station, NET_TID, txseg.trace
            )
        self.sim.process(
            self._transmit(key, seq), name=f"sr-rexmit:{self.station}"
        )

    # -- retransmission timer ----------------------------------------------
    def _arm_timer(self, key: Tuple[int, int], flow: _SRFlow) -> None:
        # Several timers may share an epoch (one per send); only the first
        # to fire acts — it bumps the epoch, making the rest stale no-ops.
        epoch = flow.timer_epoch
        timer = self.sim.timeout(min(flow.rto * flow.backoff, self.max_rto))
        timer.callbacks.append(lambda _ev: self._on_timer(key, epoch))

    def _on_timer(self, key: Tuple[int, int], epoch: int) -> None:
        flow = self._flows.get(key)
        if flow is None or epoch != flow.timer_epoch:
            return
        if flow.base >= flow.next_seq:
            return  # everything acknowledged
        flow.stall_rounds += 1
        if flow.stall_rounds > self.max_stall_rounds:
            raise ProtocolError(
                f"selective-repeat flow {self.station}->{key} stalled after "
                f"{self.max_stall_rounds} retransmission timeouts"
            )
        flow.timer_epoch += 1
        self.stats.counter("timeouts").increment()
        # Timeout: collapse to the congestion window floor and back the
        # timer off exponentially (the link may be dark for a while).
        flow.ssthresh = max(flow.cwnd / 2.0, 2.0)
        if flow.cwnd > self.cwnd_floor:
            flow.cwnd = self.cwnd_floor
            self.stats.counter("cwnd_floor_hits").increment()
        flow.recover = flow.next_seq
        flow.backoff = min(flow.backoff * 1.5, 8.0)
        # First timeout: re-send what is *known* lost — every unsacked
        # segment below the SACK high-water mark (the receiver holds data
        # beyond them, and links deliver in order) plus the earliest hole.
        # A spurious RTO (delay, not loss) therefore costs one duplicate
        # frame.  If the flow stays dark for a second round, escalate and
        # re-send every unsacked outstanding segment: duplicates are
        # harmless — the receiver re-acks them — and on a bursty link every
        # frame on the wire is one more step of the loss chain toward GOOD.
        slam = flow.stall_rounds >= 2
        sent_one = False
        for seqno in range(flow.base, flow.next_seq):
            txseg = flow.buffer.get(seqno)
            if txseg is None or txseg.sacked:
                continue
            if slam or seqno <= flow.high_sack or not sent_one:
                txseg.sacked_past = 0
                self._retransmit(key, seqno)
                sent_one = True
            else:
                break
        self._arm_timer(key, flow)

    # -- introspection -------------------------------------------------------
    def flow_state(self, dst: int, dst_port: int) -> Dict[str, float]:
        """Sender-side state of one flow (for stats surfacing and tests)."""
        flow = self._flows.get((dst, dst_port))
        if flow is None:
            return {}
        return {
            "base": flow.base,
            "next_seq": flow.next_seq,
            "in_flight": flow.in_flight,
            "cwnd": flow.cwnd,
            "ssthresh": flow.ssthresh,
            "srtt": flow.srtt if flow.srtt is not None else 0.0,
            "rto": flow.rto,
        }
