"""Transport protocols: datagram and reliable services over the link layer."""

from .packet import Fragment, Packet, UDP_HEADER_BYTES, fragment_sizes
from .tcp import (
    GBN_ACK_PORT_OFFSET,
    RELIABLE_ACK_PORT_OFFSET,
    ReliableService,
    WindowedReliableService,
)
from .transport import TRANSPORT_KINDS, Transport, make_transport
from .udp import DatagramService, Mailbox

__all__ = [
    "Fragment",
    "Packet",
    "UDP_HEADER_BYTES",
    "fragment_sizes",
    "GBN_ACK_PORT_OFFSET",
    "RELIABLE_ACK_PORT_OFFSET",
    "ReliableService",
    "WindowedReliableService",
    "TRANSPORT_KINDS",
    "Transport",
    "make_transport",
    "DatagramService",
    "Mailbox",
]
