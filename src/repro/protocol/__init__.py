"""Transport protocols: datagram, reliable, and dual-channel services."""

from .channels import CHANNELS, DualChannelService
from .packet import Fragment, Packet, UDP_HEADER_BYTES, fragment_sizes
from .sr import (
    SR_ACK_PORT_OFFSET,
    SelectiveRepeatService,
    SRSegment,
    coalesce_ranges,
)
from .tcp import (
    GBN_ACK_PORT_OFFSET,
    RELIABLE_ACK_PORT_OFFSET,
    ReliableService,
    WindowedReliableService,
)
from .transport import TRANSPORT_KINDS, Transport, make_transport
from .udp import DatagramService, Mailbox

__all__ = [
    "Fragment",
    "Packet",
    "UDP_HEADER_BYTES",
    "fragment_sizes",
    "CHANNELS",
    "DualChannelService",
    "SR_ACK_PORT_OFFSET",
    "SelectiveRepeatService",
    "SRSegment",
    "coalesce_ranges",
    "GBN_ACK_PORT_OFFSET",
    "RELIABLE_ACK_PORT_OFFSET",
    "ReliableService",
    "WindowedReliableService",
    "TRANSPORT_KINDS",
    "Transport",
    "make_transport",
    "DatagramService",
    "Mailbox",
]
