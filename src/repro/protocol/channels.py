"""Dual-channel transport: reliable control + unreliable data channels.

The paper's communication layer carries two very different traffic
classes: small, ordering-critical *control* messages (locks, barriers,
coherence ownership) and large, latency-sensitive *data* messages (global
memory fills) whose loss the application layer can repair by retrying an
idempotent request.  :class:`DualChannelService` serves both over **one**
datagram service / NIC:

* the **reliable channel** is a :class:`~repro.protocol.sr.SelectiveRepeatService`
  flow — in-order, SACK-repaired, congestion controlled;
* the **unreliable channel** is the raw datagram path — no sequencing, no
  acks, one fragment train and done.  Under loss, whoever uses it must
  retry at the application level (``repro.dse.exchange`` does, keyed by
  RPC sequence number).

Both channels deliver into the *same* bound port mailbox: the reliable
receive path recognises raw (non-:class:`~repro.protocol.sr.SRSegment`)
payloads and passes them straight through, so a receiver needs no
channel awareness.  Channel selection is the sender's choice, per
message, via ``send(..., channel="reliable" | "unreliable")`` — see the
message-class table in ``docs/networking.md``.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import ProtocolError
from ..sim.core import Event, Simulator
from .packet import Packet
from .sr import SelectiveRepeatService
from .udp import DatagramService, Mailbox

__all__ = ["DualChannelService", "CHANNELS"]

#: the two channels a dual transport offers
CHANNELS = ("reliable", "unreliable")


class DualChannelService:
    """Two-channel transport over one datagram service.

    Presents the uniform transport interface (``bind`` / ``send`` /
    ``loopback`` / ``unbind``) plus the ``channel=`` selector.  The
    default channel is reliable, so a caller that never mentions
    channels gets selective-repeat semantics.
    """

    #: capability flag the exchange layer sniffs (structural, no import)
    dual_channel = True

    def __init__(self, sim: Simulator, datagram: DatagramService, **sr_options: Any):
        self.sim = sim
        self.datagram = datagram
        self.station = datagram.station
        self.reliable = SelectiveRepeatService(sim, datagram, **sr_options)
        #: shared stats: the SR StatSet also counts unreliable sends, so
        #: one snapshot shows the whole dual-channel picture
        self.stats = self.reliable.stats

    # -- ports --------------------------------------------------------------
    def bind(self, port: int) -> Mailbox:
        """Bind a port; both channels deliver into the returned mailbox."""
        return self.reliable.bind(port)

    def unbind(self, port: int) -> None:
        self.reliable.unbind(port)

    # -- send ---------------------------------------------------------------
    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
        channel: str = "reliable",
    ) -> Generator[Event, Any, None]:
        """Send on the chosen channel.

        ``reliable`` completes when the segment entered the congestion
        window (pipelined; see :meth:`flush`); ``unreliable`` completes
        when the fragments are handed to the NIC — fire and forget.
        """
        if channel == "reliable":
            yield from self.reliable.send(
                dst, dst_port, payload, payload_bytes, src_port, trace=trace
            )
            return
        if channel != "unreliable":
            raise ProtocolError(
                f"unknown channel {channel!r}; expected one of {CHANNELS}"
            )
        self.stats.counter("unreliable_sent").increment()
        yield from self.datagram.send(
            dst, dst_port, payload, payload_bytes, src_port, trace=trace
        )

    def flush(self, dst: int, dst_port: int) -> Generator[Event, Any, None]:
        """Wait until the reliable channel's flow to ``dst:port`` drains."""
        yield from self.reliable.flush(dst, dst_port)

    def loopback(
        self,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Packet:
        """Local delivery — loss-free, so channels are indistinguishable."""
        return self.reliable.loopback(
            dst_port, payload, payload_bytes, src_port, trace=trace
        )
