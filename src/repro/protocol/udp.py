"""Datagram (UDP-like) transport service.

One :class:`DatagramService` sits on each station's NIC.  Sending fragments
a packet into MTU-sized frames and enqueues them; the receiving service
reassembles and delivers the packet into the bound port's mailbox (a
:class:`repro.sim.Store`), optionally notifying an async-I/O callback — the
hook the OS model uses for SIGIO delivery, mirroring DSE's use of
asynchronous I/O mode interruption.

Timing note: *protocol processing* CPU cost is charged by the OS socket
layer (it depends on the platform); this module models wire behaviour only.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..errors import ProtocolError
from ..network.frame import ETH_MTU, EthernetFrame
from ..network.nic import NIC
from ..obs.spans import NET_TID, NULL_RECORDER
from ..sim.core import Event, Simulator
from ..sim.monitor import StatSet
from ..sim.resources import Store
from .packet import Fragment, Packet, fragment_sizes

__all__ = ["DatagramService", "Mailbox"]


class Mailbox:
    """Received-packet queue for one bound port."""

    def __init__(self, sim: Simulator, station: int, port: int):
        self.station = station
        self.port = port
        self.queue: Store = Store(sim, name=f"mbox:{station}:{port}")
        #: invoked (packet) on arrival *before* queueing — OS async-I/O hook
        self.on_arrival: Optional[Callable[[Packet], None]] = None

    def get(self, filter: Optional[Callable[[Packet], bool]] = None):
        """Event for the next (matching) packet."""
        return self.queue.get(filter)

    def __len__(self) -> int:
        return len(self.queue)


class DatagramService:
    """Unreliable, unordered-per-peer* datagram service over one NIC.

    (*) In practice delivery is in-order because the simulated fabrics do
    not reorder; the service still tolerates interleaved fragments from
    different packets.
    """

    def __init__(self, sim: Simulator, nic: NIC, mtu: int = ETH_MTU):
        self.sim = sim
        self.nic = nic
        self.mtu = mtu
        self.station = nic.station_id
        self._ports: Dict[int, Mailbox] = {}
        self._reassembly: Dict[Tuple[int, int], Dict[int, Fragment]] = {}
        self.stats = StatSet(f"udp:{self.station}")
        self.obs = getattr(sim, "obs", None) or NULL_RECORDER
        nic.on_receive(self._on_frame)

    # -- ports ------------------------------------------------------------
    def bind(self, port: int) -> Mailbox:
        if port in self._ports:
            raise ProtocolError(f"port {port} already bound on station {self.station}")
        mailbox = Mailbox(self.sim, self.station, port)
        self._ports[port] = mailbox
        return mailbox

    def unbind(self, port: int) -> None:
        if port not in self._ports:
            raise ProtocolError(f"port {port} is not bound on station {self.station}")
        del self._ports[port]

    def mailbox(self, port: int) -> Mailbox:
        try:
            return self._ports[port]
        except KeyError:
            raise ProtocolError(f"port {port} is not bound on station {self.station}") from None

    # -- send ----------------------------------------------------------------
    def send(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Generator[Event, Any, Packet]:
        """Fragment + enqueue a packet; completes when all fragments queued."""
        span = None
        if self.obs.enabled and trace is not None:
            span = self.obs.begin(
                self.sim.now, "udp.send", "net", self.station, NET_TID, trace
            )
            trace = span.ctx
        packet = Packet(
            src=self.station,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_bytes=payload_bytes,
            trace=trace,
        )
        sizes = fragment_sizes(payload_bytes, self.mtu)
        total = len(sizes)
        self.stats.counter("packets_sent").increment()
        self.stats.counter("bytes_sent").increment(payload_bytes)
        self.stats.counter("fragments_sent").increment(total)
        for index, size in enumerate(sizes):
            fragment = Fragment(packet=packet, index=index, total=total, data_bytes=size)
            frame = EthernetFrame(
                src=self.station,
                dst=dst,
                payload=fragment,
                payload_bytes=fragment.wire_payload_bytes,
                trace=trace,
            )
            yield self.nic.enqueue(frame)
        if span is not None:
            self.obs.end(span, self.sim.now)
        return packet

    def loopback(
        self,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 0,
        trace: Any = None,
    ) -> Packet:
        """Deliver a packet to a local port without touching the wire.

        Used for kernel-to-kernel traffic between processes co-located on
        one machine (the paper's virtual cluster): protocol processing is
        still paid by the caller, the bus is not.
        """
        packet = Packet(
            src=self.station,
            dst=self.station,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_bytes=payload_bytes,
            trace=trace,
        )
        self.stats.counter("loopback_packets").increment()
        self._deliver(packet)
        return packet

    # -- receive ----------------------------------------------------------
    def _on_frame(self, frame: EthernetFrame) -> None:
        fragment = frame.payload
        if not isinstance(fragment, Fragment):  # pragma: no cover - foreign traffic
            return
        packet = fragment.packet
        if fragment.total == 1:
            self._deliver(packet)
            return
        key = (packet.src, packet.packet_id)
        parts = self._reassembly.setdefault(key, {})
        parts[fragment.index] = fragment
        if len(parts) == fragment.total:
            del self._reassembly[key]
            self._deliver(packet)

    def _deliver(self, packet: Packet) -> None:
        mailbox = self._ports.get(packet.dst_port)
        if mailbox is None:
            self.stats.counter("packets_no_port").increment()
            return
        self.stats.counter("packets_received").increment()
        self.stats.counter("bytes_received").increment(packet.payload_bytes)
        if mailbox.on_arrival is not None:
            mailbox.on_arrival(packet)
        mailbox.queue.put(packet)
