"""Transport-layer packet and fragment models.

A :class:`Packet` is what DSE's message-exchange module hands to the
transport: an opaque payload object plus an accounted byte size and
addressing (station, port).  The transport fragments packets into
MTU-sized :class:`Fragment`\\ s for the link layer and reassembles them at
the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

from ..errors import ProtocolError
from ..network.frame import ETH_MTU

__all__ = ["Packet", "Fragment", "UDP_HEADER_BYTES", "fragment_sizes"]

#: transport+network header charged per fragment (UDP 8 + IP 20)
UDP_HEADER_BYTES = 28

_packet_ids = count(1)


@dataclass
class Packet:
    """One transport-layer message."""

    src: int  # source station id
    dst: int  # destination station id
    src_port: int
    dst_port: int
    payload: Any
    payload_bytes: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: observability context (repro.obs.TraceContext) of the send that
    #: produced this packet; None when tracing is disabled
    trace: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ProtocolError(f"negative payload size: {self.payload_bytes}")
        for port in (self.src_port, self.dst_port):
            if not (0 <= port < 65536):
                raise ProtocolError(f"port out of range: {port}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet#{self.packet_id} {self.src}:{self.src_port}->"
            f"{self.dst}:{self.dst_port} {self.payload_bytes}B>"
        )


@dataclass
class Fragment:
    """One MTU-sized piece of a packet (the frame payload)."""

    packet: Packet
    index: int
    total: int
    data_bytes: int

    @property
    def wire_payload_bytes(self) -> int:
        return self.data_bytes + UDP_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Frag {self.index + 1}/{self.total} of pkt#{self.packet.packet_id}>"


def fragment_sizes(payload_bytes: int, mtu: int = ETH_MTU) -> list:
    """Split a payload into per-fragment data sizes.

    Every fragment carries ``UDP_HEADER_BYTES`` of header inside the frame
    payload, so the usable data per fragment is ``mtu - UDP_HEADER_BYTES``.
    A zero-byte payload still produces one (header-only) fragment.
    """
    usable = mtu - UDP_HEADER_BYTES
    if usable <= 0:
        raise ProtocolError(f"MTU {mtu} too small for {UDP_HEADER_BYTES}B headers")
    if payload_bytes == 0:
        return [0]
    sizes = []
    remaining = payload_bytes
    while remaining > 0:
        take = min(usable, remaining)
        sizes.append(take)
        remaining -= take
    return sizes
