"""``dse-experiments sanitize``: run guests under the sanitizers.

Two modes:

* default — run paper workloads with race + deadlock detection enabled
  and report findings; exits non-zero if any sanitizer fires (the CI
  false-positive guard runs exactly this over all four paper apps).
* ``--demo`` — run the intentionally buggy guests from
  :mod:`repro.sanitize.demo` and exit non-zero if a detector **fails**
  to flag its bug (the end-to-end detection smoke test).

Examples::

    dse-experiments sanitize --all
    dse-experiments sanitize --workload gauss-seidel --batching
    dse-experiments sanitize --demo
"""

from __future__ import annotations

import argparse
from typing import List

__all__ = ["sanitize_main"]


def _run_workload(key: str, processors: int, platform: str, batching: bool):
    """One sanitized run of a paper workload; returns its SanitizeReport."""
    import importlib

    from ..dse.config import ClusterConfig
    from ..dse.runtime import run_parallel
    from ..experiments.cli import _TRACE_WORKLOADS
    from ..hardware.platforms import get_platform

    module_name, attr, worker_args = _TRACE_WORKLOADS[key]
    worker = getattr(importlib.import_module(module_name), attr)
    config = ClusterConfig(
        platform=get_platform(platform),
        n_processors=processors,
        gmem_batching=batching,
        sanitize=True,
    )
    result = run_parallel(config, worker, args=worker_args)
    return result.cluster.sanitizer.report


def _demo_runs(processors: int, platform: str) -> List[tuple]:
    """(name, report, flagged) for every buggy demo guest."""
    from ..dse.config import ClusterConfig
    from ..dse.runtime import run_parallel
    from ..errors import DSEError
    from ..hardware.platforms import get_platform
    from . import demo

    cases = [
        ("racy-counter", demo.racy_counter_worker, lambda r: bool(r.races)),
        (
            "impossible-barrier",
            demo.impossible_barrier_worker,
            lambda r: bool(r.barrier_faults),
        ),
        ("lock-cycle", demo.lock_cycle_worker, lambda r: bool(r.lock_cycles)),
        ("locked-counter (clean)", demo.locked_counter_worker, lambda r: r.clean),
    ]
    out = []
    for name, worker, check in cases:
        config = ClusterConfig(
            platform=get_platform(platform),
            n_processors=processors,
            sanitize=True,
        )
        try:
            result = run_parallel(config, worker)
            report = result.cluster.sanitizer.report
        except DSEError as exc:
            # Deadlocked demos drain; the runtime attaches the cluster.
            report = exc.cluster.sanitizer.report
        out.append((name, report, check(report)))
    return out


def sanitize_main(argv: List[str]) -> int:
    """Entry point for the ``sanitize`` subcommand."""
    from ..experiments.cli import _TRACE_WORKLOADS
    from ..hardware.platforms import platform_names

    parser = argparse.ArgumentParser(
        prog="dse-experiments sanitize",
        description="Run guest programs under the race/deadlock sanitizers.",
    )
    parser.add_argument(
        "--workload", choices=sorted(_TRACE_WORKLOADS), default=None,
        help="one paper workload (default: --all)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every paper workload"
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the intentionally buggy demo guests instead",
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", choices=platform_names(), default="sunos")
    parser.add_argument(
        "--batching", action="store_true",
        help="also exercise the gmem batching fast path",
    )
    args = parser.parse_args(argv)

    if args.demo:
        failures = 0
        for name, report, ok in _demo_runs(args.processors, args.platform):
            status = "OK" if ok else "MISSED"
            print(f"[{status}] {name}: {report.summary()}")
            failures += 0 if ok else 1
        return 1 if failures else 0

    workloads = sorted(_TRACE_WORKLOADS) if (args.all or not args.workload) else [args.workload]
    dirty = 0
    for key in workloads:
        report = _run_workload(key, args.processors, args.platform, args.batching)
        if report.clean:
            print(f"[CLEAN] {key} p={args.processors} batching={args.batching}")
        else:
            dirty += 1
            print(f"[FINDINGS] {key} p={args.processors} batching={args.batching}")
            print(report.format())
    return 1 if dirty else 0
