"""Deadlock and lost-wakeup detection over DSE synchronisation state.

The lock home kernels report exact queueing facts (who waits, who holds)
into one cluster-global wait-for view:

* **lock cycles, online** — each queued requester waits for exactly one
  lock, so the wait-for graph is functional and a cycle check is a single
  walk: waiter -> lock -> holder -> (lock the holder waits for) -> ...
  Cycles are reported the moment the closing edge is inserted, with the
  full ``proc -> lock -> proc`` chain and the simulated time.
* **barrier faults, online** — arrivals declaring different participant
  counts for one barrier, or a count larger than the cluster, can never
  complete and are flagged at arrival time.
* **lost wakeups, at drain** — :meth:`finalize` (called by the runtime
  when the simulation runs dry) reports every barrier still holding
  arrivals and every lock request still queued: the processes a hung run
  is actually stuck on.

The resilience subsystem (:mod:`repro.resilience`) reports injected kernel
crashes through :meth:`DeadlockDetector.on_crash`, so a run hung *because a
process died* is labelled ``crashed`` at drain time rather than mistaken
for a lost wakeup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..sim.monitor import StatSet
from .report import BarrierFinding, LockCycleFinding, LockStallFinding, SanitizeReport

__all__ = ["DeadlockDetector"]


class _BarrierWait:
    """Arrivals at one (not yet released) barrier."""

    __slots__ = ("expected", "arrived", "flagged")

    def __init__(self, expected: int):
        self.expected = expected
        self.arrived: List[Tuple[int, float]] = []  # (accessor, sim time)
        self.flagged = False


class DeadlockDetector:
    """Wait-for graph over lock queues plus barrier arrival accounting."""

    def __init__(self, world: int, report: SanitizeReport, stats: StatSet):
        self.world = world
        self.report = report
        self.stats = stats
        #: lock name -> current owner accessor
        self._owner: Dict[str, int] = {}
        #: accessor -> (lock it waits for, wait start time)
        self._waiting: Dict[int, Tuple[str, float]] = {}
        #: barrier name -> pending arrivals
        self._barriers: Dict[str, _BarrierWait] = {}
        #: cycles already reported (as frozensets of edges)
        self._seen_cycles: Set[frozenset] = set()
        #: accessor -> crash time (reported by the resilience subsystem)
        self._crashed: Dict[int, float] = {}

    # -- lock hooks (home-kernel side, exact) --------------------------------
    def on_lock_granted(self, accessor: int, name: str) -> None:
        self._owner[name] = accessor
        self._waiting.pop(accessor, None)

    def on_lock_released(self, name: str) -> None:
        self._owner.pop(name, None)

    def on_lock_wait(self, accessor: int, name: str, now: float) -> None:
        """A request was queued behind the current owner: add the edge and
        walk the (functional) wait-for graph for a cycle."""
        self._waiting[accessor] = (name, now)
        cycle: List[Tuple[int, str, int]] = []
        node = accessor
        on_path: Set[int] = set()
        while node in self._waiting and node not in on_path:
            on_path.add(node)
            lock, _since = self._waiting[node]
            holder = self._owner.get(lock)
            if holder is None:
                return  # ownership in transfer: no cycle through a free lock
            cycle.append((node, lock, holder))
            node = holder
        if node != accessor or not cycle:
            return
        key = frozenset(cycle)
        if key in self._seen_cycles:
            return
        self._seen_cycles.add(key)
        self.report.lock_cycles.append(LockCycleFinding(cycle=cycle, time=now))
        self.stats.counter("lock_cycles").increment()

    # -- barrier hooks --------------------------------------------------------
    def on_barrier_arrive(
        self, accessor: int, name: str, parties: int, now: float
    ) -> None:
        state = self._barriers.get(name)
        if state is None:
            state = self._barriers[name] = _BarrierWait(parties)
        state.arrived.append((accessor, now))
        if not state.flagged and parties != state.expected:
            state.flagged = True
            self._barrier_fault(
                "mismatch", name, state, now,
                detail=(
                    f"proc {accessor} arrived expecting {parties} parties, "
                    f"earlier arrivals expected {state.expected}"
                ),
            )
        elif not state.flagged and parties > self.world:
            state.flagged = True
            self._barrier_fault(
                "impossible", name, state, now,
                detail=(
                    f"{parties} parties required but the cluster only has "
                    f"{self.world} processors — this barrier can never complete"
                ),
            )

    def on_barrier_release(self, name: str) -> None:
        self._barriers.pop(name, None)

    def _barrier_fault(
        self, kind: str, name: str, state: _BarrierWait, now: float, detail: str
    ) -> None:
        self.report.barrier_faults.append(
            BarrierFinding(
                kind=kind,
                name=name,
                expected=state.expected,
                arrived=[a for a, _ in state.arrived],
                detail=detail,
                time=now,
            )
        )
        self.stats.counter("barrier_faults").increment()

    # -- crash hook (resilience subsystem) ------------------------------------
    def on_crash(self, accessors: List[int], now: float) -> None:
        """The resilience layer tore these accessors down as a crash.

        Their queued lock requests are withdrawn (a dead waiter is not a
        lost wakeup) and any barrier they leave incomplete at drain time is
        labelled ``crashed`` instead of ``stuck``."""
        for accessor in accessors:
            self._crashed[accessor] = now
            self._waiting.pop(accessor, None)
        self.stats.counter("crashed_accessors").increment(len(accessors))

    # -- drain analysis -------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Report everything still waiting when the simulation ran dry."""
        in_cycle = {waiter for key in self._seen_cycles for waiter, _, _ in key}
        for name in sorted(self._barriers):
            state = self._barriers[name]
            if state.flagged or not state.arrived:
                continue  # already reported online / nothing pending
            missing = state.expected - len(state.arrived)
            if self._crashed:
                dead = ", ".join(
                    f"proc {a} at t={t:.6f}s" for a, t in sorted(self._crashed.items())
                )
                self._barrier_fault(
                    "crashed", name, state, now,
                    detail=(
                        f"{missing} participant(s) never arrived after "
                        f"crash(es): {dead}"
                    ),
                )
            else:
                self._barrier_fault(
                    "stuck", name, state, now,
                    detail=(
                        f"{missing} participant(s) "
                        "never arrived (lost wakeup or early exit)"
                    ),
                )
        for accessor in sorted(self._waiting):
            if accessor in in_cycle:
                continue  # the cycle finding already covers this waiter
            name, since = self._waiting[accessor]
            self.report.lock_stalls.append(
                LockStallFinding(
                    waiter=accessor,
                    name=name,
                    holder=self._owner.get(name),
                    time=since,
                )
            )
            self.stats.counter("lock_stalls").increment()

    # -- introspection (tests) ------------------------------------------------
    def waiting_on(self, accessor: int) -> Optional[str]:
        entry = self._waiting.get(accessor)
        return entry[0] if entry else None
