"""Intentionally buggy guest programs the sanitizers must flag.

These workers are the fixtures behind ``examples/racy_sum.py``,
``examples/bad_barrier.py``, the ``dse-experiments sanitize --demo``
smoke run, and the detection tests: each exhibits exactly one classic
concurrency bug against the paper's programming model, with a correct
twin where the contrast is instructive.

* :func:`racy_counter_worker` — the canonical lost update: every rank
  read-modify-writes one shared counter with **no lock**.
* :func:`locked_counter_worker` — the correct twin, counter guarded by a
  DSE mutex (race-free; the final value is exact).
* :func:`impossible_barrier_worker` — every rank waits at a barrier
  declared for ``size + 1`` parties, which can never complete.
* :func:`mismatch_barrier_worker` — rank 0 declares a different
  participant count than everyone else.
* :func:`lock_cycle_worker` — ABBA deadlock: even ranks take lock A then
  B, odd ranks B then A.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..sim.core import Event

__all__ = [
    "COUNTER_ADDR",
    "racy_counter_worker",
    "locked_counter_worker",
    "impossible_barrier_worker",
    "mismatch_barrier_worker",
    "lock_cycle_worker",
]

#: global-memory word holding the shared counter
COUNTER_ADDR = 0

_COUNTER_LOCK = "demo.counter"


def racy_counter_worker(
    api, increments: int = 4
) -> Generator[Event, Any, Dict[str, float]]:
    """Unlocked shared counter: the textbook lost-update data race.

    Every rank performs ``increments`` read-modify-write cycles on one
    global word with no synchronisation.  Increments from concurrent
    ranks overwrite each other, so the final value generally falls short
    of ``size * increments`` — and the race detector flags every
    read/write and write/write pair.
    """
    for _ in range(increments):
        value = yield from api.gm_read_scalar(COUNTER_ADDR)
        yield from api.gm_write_scalar(COUNTER_ADDR, value + 1.0)
    final = yield from api.gm_read_scalar(COUNTER_ADDR)
    return {"rank": float(api.rank), "final": final}


def locked_counter_worker(
    api, increments: int = 4
) -> Generator[Event, Any, Dict[str, float]]:
    """The correct twin of :func:`racy_counter_worker` (mutex-guarded)."""
    for _ in range(increments):
        yield from api.lock(_COUNTER_LOCK)
        value = yield from api.gm_read_scalar(COUNTER_ADDR)
        yield from api.gm_write_scalar(COUNTER_ADDR, value + 1.0)
        yield from api.unlock(_COUNTER_LOCK)
    yield from api.barrier("demo.counted")
    final = yield from api.gm_read_scalar(COUNTER_ADDR)
    return {"rank": float(api.rank), "final": final}


def impossible_barrier_worker(api) -> Generator[Event, Any, float]:
    """Barrier declared for more parties than the cluster has processors.

    Every rank arrives at ``demo.sync`` expecting ``size + 1`` parties;
    the (size+1)-th participant does not exist, so the run hangs.  The
    deadlock detector flags the impossible count online, at the first
    arrival.
    """
    yield from api.barrier("demo.sync", api.size + 1)
    return 0.0  # pragma: no cover - the barrier never releases


def mismatch_barrier_worker(api) -> Generator[Event, Any, float]:
    """Ranks disagree on the participant count of one barrier.

    Rank 0 declares ``size + 1`` parties, everyone else ``size``.  The
    detector flags the disagreement the moment the second count appears.
    Whether the run completes depends on arrival order — which is exactly
    why the static declaration mismatch is worth flagging online.
    """
    parties = api.size + 1 if api.rank == 0 else api.size
    yield from api.barrier("demo.phase", parties)
    return 0.0


def lock_cycle_worker(api) -> Generator[Event, Any, float]:
    """ABBA deadlock: opposite lock orderings on two mutexes.

    Rank 0 takes ``demo.A`` then ``demo.B``; rank 1 the reverse.  The
    two-party barrier between the first and second acquisition guarantees
    both first locks are held before either second request goes out, so
    the wait-for cycle closes on every platform and processor count
    (a timing stagger alone does not — message round-trips on a slow
    shared bus can exceed any fixed stagger and serialise the pair).
    Other ranks are spectators.
    """
    if api.rank >= 2:
        return 0.0
    first, second = (
        ("demo.A", "demo.B") if api.rank == 0 else ("demo.B", "demo.A")
    )
    yield from api.lock(first)
    yield from api.barrier("demo.armed", 2)  # both first locks now held
    yield from api.lock(second)  # pragma: no cover - deadlocks before grant
    yield from api.unlock(second)
    yield from api.unlock(first)
    return 0.0
