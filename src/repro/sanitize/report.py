"""Sanitizer findings and the human-readable report.

Every detector appends structured findings to one shared
:class:`SanitizeReport`; ``format()`` renders the readable report the CLI
prints and :func:`repro.dse.runtime.run_master` attaches to the error when
a sanitized run never completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

__all__ = [
    "AccessInfo",
    "RaceFinding",
    "LockCycleFinding",
    "BarrierFinding",
    "LockStallFinding",
    "SanitizeReport",
]


@dataclass
class AccessInfo:
    """One side of a racy pair: who touched what, where, when, holding what."""

    accessor: int
    op: str  # "read" | "write"
    addr: int
    nwords: int
    time: float
    site: str
    locks: FrozenSet[str]

    def describe(self) -> str:
        held = ", ".join(sorted(self.locks)) if self.locks else "no locks"
        return (
            f"proc {self.accessor} {self.op} [{self.addr}, {self.addr + self.nwords})"
            f" at t={self.time:.6f}s ({held}) — {self.site}"
        )


@dataclass
class RaceFinding:
    """Two unordered, lock-disjoint conflicting accesses to one block."""

    block: int
    overlap: Tuple[int, int]  # word range both sides touch
    first: AccessInfo
    second: AccessInfo
    count: int = 1  # occurrences collapsed into this finding

    def describe(self) -> str:
        dup = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"data race on block {self.block} words "
            f"[{self.overlap[0]}, {self.overlap[1]}){dup}\n"
            f"    {self.first.describe()}\n"
            f"    {self.second.describe()}"
        )


@dataclass
class LockCycleFinding:
    """A cycle in the lock wait-for graph (each edge: waiter -> lock -> holder)."""

    cycle: List[Tuple[int, str, int]]  # (waiter, lock name, holder)
    time: float

    def describe(self) -> str:
        edges = "\n".join(
            f"    proc {waiter} waits for lock {name!r} held by proc {holder}"
            for waiter, name, holder in self.cycle
        )
        return f"lock deadlock cycle at t={self.time:.6f}s:\n{edges}"


@dataclass
class BarrierFinding:
    """A barrier that cannot (or did not) complete."""

    kind: str  # "mismatch" | "impossible" | "stuck" | "crashed"
    name: str
    expected: int
    arrived: List[int] = field(default_factory=list)
    detail: str = ""
    time: float = 0.0

    def describe(self) -> str:
        who = ", ".join(f"proc {a}" for a in self.arrived) or "nobody"
        base = (
            f"barrier {self.name!r} [{self.kind}] at t={self.time:.6f}s: "
            f"{len(self.arrived)}/{self.expected} arrived ({who})"
        )
        return base + (f"\n    {self.detail}" if self.detail else "")


@dataclass
class LockStallFinding:
    """A lock request still queued when the run drained (lost wakeup)."""

    waiter: int
    name: str
    holder: Optional[int]
    time: float

    def describe(self) -> str:
        held = f"held by proc {self.holder}" if self.holder is not None else "unowned"
        return (
            f"lock {self.name!r} never granted to proc {self.waiter} "
            f"({held}; waiting since t={self.time:.6f}s)"
        )


class SanitizeReport:
    """All findings of one sanitized run, in detection order per category."""

    def __init__(self) -> None:
        self.races: List[RaceFinding] = []
        self.lock_cycles: List[LockCycleFinding] = []
        self.barrier_faults: List[BarrierFinding] = []
        self.lock_stalls: List[LockStallFinding] = []

    @property
    def findings(self) -> List[object]:
        return [*self.races, *self.lock_cycles, *self.barrier_faults, *self.lock_stalls]

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        return (
            f"{len(self.races)} race(s), {len(self.lock_cycles)} lock cycle(s), "
            f"{len(self.barrier_faults)} barrier fault(s), "
            f"{len(self.lock_stalls)} stalled lock request(s)"
        )

    def format(self) -> str:
        """The readable multi-line report (empty-state friendly)."""
        if self.clean:
            return "sanitizers: no findings"
        lines = [f"sanitizers: {self.summary()}"]
        for i, finding in enumerate(self.findings, 1):
            lines.append(f"  #{i} {finding.describe()}")
        return "\n".join(lines)
