"""Sparse vector clocks for the dynamic sanitizers.

Accessors (DSE processes) are created dynamically — SPMD ranks, task-farm
jobs with fresh private ranks — so clocks are sparse dicts rather than
fixed-width arrays: a missing component is zero.  Clock values only ever
grow, which keeps the happens-before test one integer comparison per
stored event (see :mod:`repro.sanitize.race`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

__all__ = ["VectorClock"]


class VectorClock:
    """A sparse vector clock: ``{accessor id: logical time}``."""

    __slots__ = ("_c",)

    def __init__(self, init: Optional[Dict[int, int]] = None):
        self._c: Dict[int, int] = dict(init) if init else {}

    def get(self, accessor: int) -> int:
        """This clock's component for ``accessor`` (0 when absent)."""
        return self._c.get(accessor, 0)

    def tick(self, accessor: int) -> int:
        """Advance ``accessor``'s own component; returns the new value."""
        value = self._c.get(accessor, 0) + 1
        self._c[accessor] = value
        return value

    def join(self, other: Optional["VectorClock"]) -> None:
        """Pointwise maximum with ``other`` (no-op for ``None``)."""
        if other is None:
            return
        mine = self._c
        for accessor, value in other._c.items():
            if value > mine.get(accessor, 0):
                mine[accessor] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._c.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items()))
        return f"<VC {{{inner}}}>"
