"""Dynamic sanitizers for DSE guest programs (``repro.sanitize``).

The paper's SSI programming model (global memory + mutexes + barriers)
puts the whole correctness burden on the guest program; the simulator,
which observes every access and every lock event, can carry that burden
instead.  Enabled via ``ClusterConfig(sanitize=...)``:

* ``"race"`` — hybrid lockset + happens-before data-race detection over
  guest global-memory accesses (:mod:`repro.sanitize.race`);
* ``"deadlock"`` — online lock-cycle detection and barrier participant
  accounting, plus lost-wakeup analysis when a run drains
  (:mod:`repro.sanitize.deadlock`);
* ``True`` / ``"all"`` — both.

Findings accumulate in ``cluster.sanitizer.report`` (a
:class:`~repro.sanitize.report.SanitizeReport`), counters feed the
``sanitize`` :class:`~repro.sim.monitor.StatSet` (sampled by the metrics
time-series when enabled), and each finding is mirrored as an instant
span when causal tracing is on.  Every hook is guarded by a single
``enabled``/``is not None`` test, so a non-sanitized run pays only that
flag check (measured in ``benchmarks/bench_obs_overhead.py``).

See ``docs/sanitizers.md`` for the algorithms and example reports, and
``repro.sanitize.demo`` for intentionally buggy guests the detectors must
flag.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from ..sim.monitor import StatSet
from .deadlock import DeadlockDetector
from .race import RaceDetector, guest_site
from .report import (
    AccessInfo,
    BarrierFinding,
    LockCycleFinding,
    LockStallFinding,
    RaceFinding,
    SanitizeReport,
)
from .vc import VectorClock

__all__ = [
    "Sanitizer",
    "NULL_SANITIZER",
    "normalize_modes",
    "SANITIZE_MODES",
    "SanitizeReport",
    "RaceFinding",
    "LockCycleFinding",
    "BarrierFinding",
    "LockStallFinding",
    "AccessInfo",
    "RaceDetector",
    "DeadlockDetector",
    "VectorClock",
    "guest_site",
]

#: the individual sanitizers a config can request
SANITIZE_MODES = ("race", "deadlock")


def normalize_modes(sanitize: Any) -> FrozenSet[str]:
    """Normalize a ``ClusterConfig.sanitize`` value to a mode set.

    Accepts ``False``/``None`` (off), ``True``/``"all"`` (everything),
    one mode name, a comma/space separated string, or an iterable of mode
    names.  Raises ``ValueError`` on unknown modes.
    """
    if not sanitize:
        return frozenset()
    if sanitize is True:
        return frozenset(SANITIZE_MODES)
    if isinstance(sanitize, str):
        tokens = [t for t in sanitize.replace(",", " ").split() if t]
    else:
        tokens = [str(t) for t in sanitize]
    if "all" in tokens:
        return frozenset(SANITIZE_MODES)
    unknown = sorted(set(tokens) - set(SANITIZE_MODES))
    if unknown:
        raise ValueError(
            f"unknown sanitize mode(s) {unknown}; expected {SANITIZE_MODES} or 'all'"
        )
    return frozenset(tokens)


class Sanitizer:
    """One cluster's sanitizer bundle: detectors, report, counters.

    Detector attributes (``race``, ``deadlock``) are ``None`` when the
    corresponding mode is off — instrumentation sites test exactly that,
    keeping the disabled path one attribute load + identity check.
    """

    def __init__(
        self,
        modes: FrozenSet[str] = frozenset(),
        world: int = 0,
        block_words: int = 1,
        obs: Any = None,
    ):
        self.modes = frozenset(modes)
        self.enabled = bool(self.modes)
        self.report = SanitizeReport()
        self.stats = StatSet("sanitize")
        self._obs = obs
        self.race: Optional[RaceDetector] = (
            RaceDetector(block_words, self.report, self.stats)
            if "race" in self.modes
            else None
        )
        self.deadlock: Optional[DeadlockDetector] = (
            DeadlockDetector(world, self.report, self.stats)
            if "deadlock" in self.modes
            else None
        )
        self._finding_count = 0

    def note_findings(self, now: float) -> None:
        """Mirror newly appended findings as obs instant spans (if tracing)."""
        r = self.report
        n = len(r.races) + len(r.lock_cycles) + len(r.barrier_faults) + len(r.lock_stalls)
        if n == self._finding_count:
            return
        if self._obs is not None and getattr(self._obs, "enabled", False):
            for finding in r.findings[self._finding_count:]:
                self._obs.instant(now, f"san:{type(finding).__name__}", "san", 0, -1)
        self._finding_count = n

    def finalize(self, now: float) -> SanitizeReport:
        """Run the end-of-run (drain) analyses; returns the report."""
        if self.deadlock is not None:
            self.deadlock.finalize(now)
        self.note_findings(now)
        return self.report


#: shared disabled sanitizer for components built outside a cluster
NULL_SANITIZER = Sanitizer()
