"""Dynamic data-race detection for guest global-memory programs.

The simulator sees every global-memory access and every synchronisation
event, so race detection needs no probabilistic scheduling: one sanitized
run covers every pair of accesses the program performs.  The detector is
the classic **hybrid** of two algorithms (TSan-style):

* **happens-before** — every DSE process carries a sparse vector clock
  (:mod:`repro.sanitize.vc`).  Lock releases publish the releaser's clock
  into a per-lock clock joined by the next acquirer; barriers join all
  participants' clocks and redistribute the merge; process spawn/join
  edges flow through :mod:`repro.dse.procman` hooks.
* **lockset** — each access records the set of DSE locks its process held;
  two conflicting accesses sharing a lock are consistently protected even
  when the clocks alone cannot order them.

A pair is reported **only when both say "unordered"**: different
processes, overlapping words, at least one write, no common lock, and
neither access happens-before the other.  Shadow state is kept per global
memory *block* (the coherence granularity), but races are confirmed at
word precision inside the block, so false sharing — two processes writing
different words of one block — is *not* reported.

Access events are recorded when the guest calls ``read``/``write``
(program order), which is the ordering happens-before reasons about;
write-combining and batched coherence fills only change *wire* timing and
therefore never hide a race from the detector.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..sim.monitor import StatSet
from .report import AccessInfo, RaceFinding, SanitizeReport
from .vc import VectorClock

__all__ = ["RaceDetector", "guest_site"]

#: per (block, kind) shadow history cap; oldest entries beyond it are
#: dropped (a warning counter records the truncation)
SHADOW_CAP = 128

#: module prefixes that are runtime machinery, not guest code, when
#: attributing an access to a source site
_RUNTIME_PARTS = (
    "/repro/sanitize/race",  # not the whole package: demo guests ARE guest code
    "/repro/dse/gmem",
    "/repro/dse/coherence",
    "/repro/dse/api",
    "/repro/dse/sync",
    "/repro/dse/kernel",
    "/repro/dse/exchange",
    "/repro/sim/",
    "/repro/osmodel/",
)


def guest_site(skip: int = 2) -> str:
    """Attribute the current operation to the nearest guest stack frame.

    During a ``yield from`` chain every driving generator's frame is live
    on the stack, so walking outward from the instrumentation site finds
    the application (or example) frame that issued the access.
    """
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - stack shallower than skip
        return "<unknown>"
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(part in filename for part in _RUNTIME_PARTS):
            name = filename.rsplit("/", 1)[-1]
            return f"{name}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return "<runtime>"


class _Access:
    """One recorded access, clipped to a single block."""

    __slots__ = ("accessor", "own", "lo", "hi", "time", "site", "locks")

    def __init__(
        self,
        accessor: int,
        own: int,
        lo: int,
        hi: int,
        time: float,
        site: str,
        locks: FrozenSet[str],
    ):
        self.accessor = accessor
        self.own = own  # accessor's own clock component at access time
        self.lo = lo
        self.hi = hi
        self.time = time
        self.site = site
        self.locks = locks


class _BlockShadow:
    """Recent reads and writes touching one block."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: List[_Access] = []
        self.writes: List[_Access] = []


class RaceDetector:
    """Hybrid lockset + happens-before detector over per-block shadow state."""

    def __init__(
        self,
        block_words: int,
        report: SanitizeReport,
        stats: StatSet,
        max_reports: int = 64,
    ):
        self.block_words = block_words
        self.report = report
        self.stats = stats
        self.max_reports = max_reports
        #: per-accessor vector clock (created on first sight)
        self._vc: Dict[int, VectorClock] = {}
        #: per-accessor set of currently held DSE lock names
        self._held: Dict[int, Set[str]] = {}
        #: per-lock clock published at release, joined at acquire
        self._lock_clock: Dict[str, VectorClock] = {}
        #: accumulating barrier state: name -> [clock, arrived, generation]
        self._barrier_acc: Dict[str, List] = {}
        #: sealed barrier clocks: (name, generation) -> [clock, refcount]
        self._barrier_sealed: Dict[Tuple[str, int], List] = {}
        #: which generation each accessor's pending arrival belongs to
        self._arrival_gen: Dict[Tuple[str, int], int] = {}
        #: clocks captured at spawn / completion for fork-join edges
        self._spawn_clock: Dict[int, VectorClock] = {}
        self._done_clock: Dict[int, VectorClock] = {}
        #: shadow memory: block -> recent accesses
        self._shadow: Dict[int, _BlockShadow] = {}
        #: (site pair, op pair) keys already reported, for deduplication
        self._reported: Dict[Tuple, RaceFinding] = {}

    # -- clock plumbing -----------------------------------------------------
    def clock_of(self, accessor: int) -> VectorClock:
        vc = self._vc.get(accessor)
        if vc is None:
            vc = self._vc[accessor] = VectorClock()
            # A fresh accessor starts at own-time 1, not 0: another clock's
            # missing component reads 0, and "own <= 0" would make a new
            # accessor's first accesses happen-before everybody's.
            vc.tick(accessor)
        return vc

    def locks_of(self, accessor: int) -> Set[str]:
        held = self._held.get(accessor)
        if held is None:
            held = self._held[accessor] = set()
        return held

    # -- synchronisation hooks ----------------------------------------------
    def on_acquire(self, accessor: int, name: str) -> None:
        """Lock granted: join the lock's published clock, start holding."""
        self.stats.counter("sync_ops").increment()
        self.clock_of(accessor).join(self._lock_clock.get(name))
        self.locks_of(accessor).add(name)

    def on_release(self, accessor: int, name: str) -> None:
        """Lock released: publish the releaser's clock, stop holding."""
        self.stats.counter("sync_ops").increment()
        vc = self.clock_of(accessor)
        clock = self._lock_clock.get(name)
        if clock is None:
            clock = self._lock_clock[name] = VectorClock()
        clock.join(vc)
        vc.tick(accessor)
        self.locks_of(accessor).discard(name)

    def on_barrier_arrive(self, accessor: int, name: str, parties: int) -> None:
        """Arrival: contribute this clock to the barrier's merge."""
        self.stats.counter("sync_ops").increment()
        state = self._barrier_acc.get(name)
        if state is None:
            state = self._barrier_acc[name] = [VectorClock(), 0, 0]
        vc = self.clock_of(accessor)
        state[0].join(vc)
        vc.tick(accessor)
        state[1] += 1
        self._arrival_gen[(name, accessor)] = state[2]
        if state[1] >= parties:
            self._barrier_sealed[(name, state[2])] = [state[0], state[1]]
            self._barrier_acc[name] = [VectorClock(), 0, state[2] + 1]

    def on_barrier_done(self, accessor: int, name: str) -> None:
        """Release: adopt the merged clock of this barrier generation."""
        gen = self._arrival_gen.pop((name, accessor), None)
        if gen is None:  # pragma: no cover - release without arrival
            return
        sealed = self._barrier_sealed.get((name, gen))
        if sealed is None:
            # Parties mismatch kept the barrier from sealing; best effort:
            # join the still-accumulating clock (deadlock detector reports
            # the mismatch itself).
            state = self._barrier_acc.get(name)
            self.clock_of(accessor).join(state[0] if state else None)
            return
        self.clock_of(accessor).join(sealed[0])
        sealed[1] -= 1
        if sealed[1] <= 0:
            del self._barrier_sealed[(name, gen)]

    def on_spawn(self, parent: int, child: int) -> None:
        """Parent invokes a DSE process: the child inherits parent's clock."""
        vc = self.clock_of(parent)
        self._spawn_clock[child] = vc.copy()
        vc.tick(parent)

    def on_child_start(self, child: int) -> None:
        self.clock_of(child).join(self._spawn_clock.pop(child, None))

    def on_child_done(self, child: int) -> None:
        """Child completion: publish its final clock for the joiner."""
        vc = self.clock_of(child)
        self._done_clock[child] = vc.copy()
        vc.tick(child)

    def on_join(self, parent: int, child: int) -> None:
        self.clock_of(parent).join(self._done_clock.get(child))

    # -- the access hook -----------------------------------------------------
    def on_access(
        self, accessor: int, addr: int, nwords: int, is_write: bool, now: float
    ) -> None:
        """Record one guest read/write and check it against the shadow."""
        self.stats.counter("accesses_checked").increment()
        vc = self.clock_of(accessor)
        locks = frozenset(self._held.get(accessor) or ())
        site = guest_site()
        op = "write" if is_write else "read"
        bw = self.block_words
        end = addr + nwords
        for block in range(addr // bw, (end - 1) // bw + 1):
            lo = max(addr, block * bw)
            hi = min(end, (block + 1) * bw)
            shadow = self._shadow.get(block)
            if shadow is None:
                shadow = self._shadow[block] = _BlockShadow()
            access = _Access(accessor, vc.get(accessor), lo, hi, now, site, locks)
            # A write conflicts with prior reads and writes; a read only
            # with prior writes.
            self._check(shadow.writes, access, vc, "write", op)
            if is_write:
                self._check(shadow.reads, access, vc, "read", op)
            self._remember(shadow.writes if is_write else shadow.reads, access)

    def _check(
        self,
        others: List[_Access],
        access: _Access,
        vc: VectorClock,
        other_op: str,
        op: str,
    ) -> None:
        for other in others:
            if other.accessor == access.accessor:
                continue  # program order
            lo = max(other.lo, access.lo)
            hi = min(other.hi, access.hi)
            if lo >= hi:
                continue  # disjoint words: false sharing is not a race
            if other.own <= vc.get(other.accessor):
                continue  # happens-before ordered
            if other.locks & access.locks:
                continue  # consistently lock-protected
            self._report(other, access, other_op, op, lo, hi)

    def _remember(self, entries: List[_Access], access: _Access) -> None:
        # Same-accessor same-kind entries fully covered by the new access
        # are superseded for every *future* happens-before test (the newer
        # access carries the larger clock), so drop them.
        entries[:] = [
            e
            for e in entries
            if not (
                e.accessor == access.accessor
                and access.lo <= e.lo
                and e.hi <= access.hi
            )
        ]
        entries.append(access)
        if len(entries) > SHADOW_CAP:
            del entries[0]
            self.stats.counter("shadow_evictions").increment()

    def _report(
        self,
        other: _Access,
        access: _Access,
        other_op: str,
        op: str,
        lo: int,
        hi: int,
    ) -> None:
        key = (other.site, other_op, access.site, op)
        existing = self._reported.get(key)
        if existing is not None:
            existing.count += 1
            return
        if len(self._reported) >= self.max_reports:
            self.stats.counter("reports_dropped").increment()
            return
        finding = RaceFinding(
            block=lo // self.block_words,
            overlap=(lo, hi),
            first=AccessInfo(
                other.accessor, other_op, other.lo, other.hi - other.lo,
                other.time, other.site, other.locks,
            ),
            second=AccessInfo(
                access.accessor, op, access.lo, access.hi - access.lo,
                access.time, access.site, access.locks,
            ),
        )
        self._reported[key] = finding
        self.report.races.append(finding)
        self.stats.counter("races").increment()
