"""Deterministic random-number streams.

Every stochastic decision in the simulation (Ethernet backoff draws, jitter
on OS costs, workload generation) draws from a named substream derived from
one master seed, so that a figure regenerated twice produces byte-identical
rows, and so that changing one subsystem's consumption pattern does not
perturb another subsystem's draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The substream seed is derived by hashing (master_seed, name), so the
        mapping is stable across runs and Python versions.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (used to give each machine its own space)."""
        digest = hashlib.sha256(f"{self.master_seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(master_seed={self.master_seed}, streams={len(self._streams)})"
