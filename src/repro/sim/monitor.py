"""Instrumentation: counters, time-weighted statistics, and trace records.

The experiment harness relies on these to report not just end-to-end times
but the *explanations* the paper gives for its curves — message counts,
bus-collision counts, kernel co-location (virtual-cluster) load, and DSM
traffic — so every subsystem exposes a :class:`StatSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "TimeWeighted", "Tally", "StatSet", "TraceRecord", "Tracer"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Tally:
    """Sample statistics over observed values (waits, sizes, latencies)."""

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sumsq = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        m = self.mean
        return max(0.0, self._sumsq / self.count - m * m)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tally({self.name} n={self.count} mean={self.mean:.6g})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Used for run-queue length and bus utilisation: call :meth:`set` whenever
    the level changes, then read :meth:`average` at the end of the run.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_start")

    def __init__(self, name: str, start_time: float = 0.0, level: float = 0.0):
        self.name = name
        self._level = level
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._level * (now - self._last_time)
        self._level = level
        self._last_time = now

    def adjust(self, delta: float, now: float) -> None:
        self.set(self._level + delta, now)

    def average(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return self._level
        return (self._area + self._level * (now - self._last_time)) / span


class StatSet:
    """A named bag of counters/tallies with lazy creation."""

    def __init__(self, name: str = "stats"):
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def tally(self, name: str) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name)
        return t

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, t in self.tallies.items():
            out[f"{name}.count"] = t.count
            out[f"{name}.mean"] = t.mean
            out[f"{name}.total"] = t.total
            if t.count:  # empty tallies hold the inf/-inf sentinels
                out[f"{name}.min"] = t.min
                out[f"{name}.max"] = t.max
        return out


@dataclass
class TraceRecord:
    """One traced occurrence; kept tiny because traces can be long."""

    time: float
    source: str
    kind: str
    detail: Any = None


class Tracer:
    """An optional event trace; disabled by default for speed."""

    def __init__(self, enabled: bool = False, limit: Optional[int] = None):
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        #: records discarded because ``limit`` was reached
        self.dropped = 0

    def emit(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, source, kind, detail))

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceRecord]:
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return out
