"""Shared-resource primitives for simulated processes.

These are the building blocks the OS and network models are written with:

* :class:`Resource` — a counted resource with FIFO (or priority) queueing;
  used for CPUs, bus arbitration, and mutexes (capacity 1).
* :class:`Store` — an unbounded/bounded FIFO of items; used for NIC queues,
  socket receive buffers, and kernel mailboxes.
* :class:`Container` — a continuous quantity (used for modelling memory
  pools).

All wait operations are events, so a process simply ``yield``\\ s them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Event, Simulator, PRIORITY_URGENT

__all__ = ["Request", "Release", "Resource", "Store", "Container", "Mutex"]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource", "priority", "owner")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource
        self.priority = priority
        self.owner = resource.sim.active_process
        resource._queue_request(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Release(Event):
    """Returns a granted :class:`Request` to its resource; triggers at once."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.sim, name=f"release:{resource.name}")
        resource._release(request)
        self.succeed(priority=PRIORITY_URGENT)


class Resource:
    """A counted resource with ``capacity`` concurrent users.

    Grants are FIFO among equal priorities; lower ``priority`` values are
    served first, which the machine scheduler uses to give kernel activity
    precedence over application compute.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: List[Request] = []
        #: cumulative statistics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._request_times: dict = {}

    @property
    def count(self) -> int:
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internals -------------------------------------------------------
    def _queue_request(self, request: Request) -> None:
        self.total_requests += 1
        self._request_times[request] = self.sim.now
        self.queue.append(request)
        self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            # Stable selection: smallest priority first, FIFO within equal.
            best_idx = 0
            for i, req in enumerate(self.queue):
                if req.priority < self.queue[best_idx].priority:
                    best_idx = i
            request = self.queue.pop(best_idx)
            self.users.append(request)
            started = self._request_times.pop(request, self.sim.now)
            self.total_wait_time += self.sim.now - started
            request.succeed(priority=PRIORITY_URGENT)

    def _release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError(
                f"release of {request!r} which does not hold {self.name!r}"
            ) from None
        self._grant()

    def _cancel(self, request: Request) -> None:
        if request in self.queue:
            self.queue.remove(request)
            self._request_times.pop(request, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.name!r} {self.count}/{self.capacity} queued={len(self.queue)}>"


class Mutex(Resource):
    """Capacity-1 resource with a convenience ``locked`` flag."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        super().__init__(sim, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        return self.count >= 1


class StoreGet(Event):
    """Event that triggers when an (optionally filtered) item is available."""

    __slots__ = ("store", "filter")

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.sim, name=f"get:{store.name}")
        self.store = store
        self.filter = filter
        store._getters.append(self)
        store._dispatch()


class StorePut(Event):
    """Event that triggers once the store has capacity for the item."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim, name=f"put:{store.name}")
        self.store = store
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO of items with optional capacity; get/put are events.

    An unbounded store's ``put`` triggers immediately; a bounded store's
    ``put`` blocks until space frees up, which the NIC uses to model a full
    transmit ring.  ``get`` supports an optional filter predicate (used by
    the DSE exchange module to wait for a reply matching a request id).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = "store"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []
        self.total_puts = 0
        self.total_gets = 0
        self.peak_occupancy = 0

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def __len__(self) -> int:
        return len(self.items)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.pop(0)
                self.items.append(putter.item)
                self.total_puts += 1
                self.peak_occupancy = max(self.peak_occupancy, len(self.items))
                putter.succeed(priority=PRIORITY_URGENT)
                progress = True
            # Satisfy getters in FIFO order against available items.
            i = 0
            while i < len(self._getters):
                getter = self._getters[i]
                matched = None
                if getter.filter is None:
                    if self.items:
                        matched = self.items.popleft()
                else:
                    for j, item in enumerate(self.items):
                        if getter.filter(item):
                            matched = item
                            del self.items[j]
                            break
                if matched is not None:
                    self._getters.pop(i)
                    self.total_gets += 1
                    getter.succeed(matched, priority=PRIORITY_URGENT)
                    progress = True
                else:
                    i += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Store {self.name!r} items={len(self.items)} waiting_get={len(self._getters)}>"


class ContainerGet(Event):
    """Event that triggers once the requested amount can be withdrawn."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.sim, name=f"cget:{container.name}")
        self.container = container
        self.amount = amount
        container._getters.append(self)
        container._dispatch()


class Container:
    """A continuous quantity (e.g. a memory pool in bytes).

    ``put`` is immediate; ``get`` blocks until the requested amount is
    available.  Level never exceeds capacity or drops below zero.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._level + amount > self.capacity + 1e-12:
            raise ValueError(
                f"put of {amount} would exceed capacity {self.capacity} (level={self._level})"
            )
        self._level += amount
        self._dispatch()

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        i = 0
        while i < len(self._getters):
            getter = self._getters[i]
            if getter.amount <= self._level + 1e-12:
                self._level -= getter.amount
                self._getters.pop(i)
                getter.succeed(getter.amount, priority=PRIORITY_URGENT)
            else:
                i += 1
