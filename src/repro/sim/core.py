"""Discrete-event simulation core.

This module implements the event loop that every other subsystem of the
reproduction runs on: the Ethernet bus, the protocol stack, the per-machine
UNIX scheduler, the DSE kernel, and the parallel applications themselves are
all simulated processes driven by one :class:`Simulator`.

The design follows the classic process-interaction style (as popularised by
SimPy, re-implemented here from scratch): a *process* is a Python generator
that yields :class:`Event` objects; the simulator resumes the generator when
the yielded event is triggered, passing the event's value back into the
generator (or throwing its exception).

Determinism is a hard requirement — experiment figures must be exactly
reproducible — so ties in the event queue are broken by a monotonically
increasing sequence number, and all randomness flows through seeded streams
(:mod:`repro.sim.rng`).

Large virtual clusters (hundreds of kernels) put millions of events through
this loop, so the engine has a deliberate fast path (profiled with
:mod:`repro.perf`; see ``docs/performance.md``):

* heap entries are mutable ``[time, priority, seq, event]`` slots, and
  :meth:`Event.cancel` nulls the event slot in place — a *lazy deletion*
  that lets superseded timers (the processor-sharing CPU re-arms one on
  every arrival/departure) die without ever being dispatched;
* cancelled :class:`Timeout` objects go to a per-simulator free list and
  are re-armed in place by :meth:`Simulator.timeout` — the cancel contract
  (you cancel only events you hold *every* reference to) is exactly what
  makes the recycling safe, and timer churn was the engine's dominant
  allocation;
* :class:`Timeout` construction inlines both the :class:`Event`
  constructor and the scheduling push — it is the hottest allocation site;
* ``Simulator.now`` is a plain attribute, not a property, because the hot
  layers read the clock on every message hop;
* :meth:`Simulator.run` drives the heap with locally bound ``heappop``,
  dispatches the single-waiter case without looping, and defers to the
  shared :meth:`Simulator._drop_cancelled_head` helper (also used by
  :meth:`peek` and :meth:`step`) only when the head slot is cancelled;
* the tie-break sequence is a plain int increment, not ``itertools.count``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionError",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]

# Scheduling priorities: lower value runs first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = object()

#: cap on recycled Timeout objects kept per simulator
_TIMEOUT_POOL_MAX = 256


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever object the interrupter supplied
    (for example, the Ethernet MAC uses it to signal a collision to an
    in-progress transmission).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class ConditionError(Exception):
    """Raised when waiting on a composite condition whose child failed."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Once the callbacks have run the event is *processed*.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name", "_scheduled", "_entry")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: callables invoked with the event when it is processed; ``None``
        #: once processed (mirrors the SimPy convention).
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: the live heap slot while scheduled (``[time, prio, seq, event]``)
        self._entry: Optional[list] = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception that will be thrown into waiters."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, 0.0, priority)
        return self

    def cancel(self) -> None:
        """Lazily remove a scheduled event from the queue (owner-only).

        The heap slot is nulled in place, so the queue never dispatches the
        event — its callbacks will not run and waiters would hang.  Only
        cancel events you hold every reference to (e.g. a timer you armed
        yourself and are about to supersede), and treat the object as dead
        afterwards: cancelled :class:`Timeout` objects created by
        :meth:`Simulator.timeout` are recycled.  Cancelling an unscheduled
        or already-processed event is a no-op.
        """
        entry = self._entry
        if entry is None:
            return
        entry[3] = None
        self._entry = None
        self.callbacks = None
        self.sim.events_cancelled += 1

    def trigger(self, event: "Event") -> None:
        """Adopt another event's outcome (used as a chained callback)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers itself after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + Simulator._schedule: this constructor is
        # the engine's dominant allocation site (see docs/performance.md).
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._entry = None
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        self._entry = entry = [sim.now + delay, PRIORITY_NORMAL, seq, self]
        heappush(sim._queue, entry)

    def cancel(self) -> None:
        """Cancel the timeout and recycle it through the simulator's pool.

        Per the :meth:`Event.cancel` contract the caller holds every
        reference and is discarding the timer, so the object can be re-armed
        by a later :meth:`Simulator.timeout` call.
        """
        entry = self._entry
        if entry is None:
            return
        entry[3] = None
        self._entry = None
        self.callbacks = None
        sim = self.sim
        sim.events_cancelled += 1
        if type(self) is Timeout and len(sim._timeout_pool) < _TIMEOUT_POOL_MAX:
            sim._timeout_pool.append(self)


class Initialize(Event):
    """Internal event used to kick off a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        # Inlined Event.__init__ + _schedule: one Initialize per process
        # spawn, and short-lived resolver/worker processes are spawned in
        # bulk on the contention and churn hot paths.
        self.sim = sim
        self.name = "init"
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._scheduled = True
        sim._seq = seq = sim._seq + 1
        self._entry = entry = [sim.now, PRIORITY_URGENT, seq, self]
        heappush(sim._queue, entry)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (value = the generator's ``return`` value) or raises (the process fails
    with that exception unless somebody is waiting on it, in which case the
    exception propagates into the waiter).
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "is_alive_hint")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        #: the event this process is currently waiting on (None when running)
        self._target: Optional[Event] = None
        #: the one bound method registered as a callback everywhere — built
        #: once so suspension does not allocate a fresh bound method
        self._resume_cb: Callable[[Event], None] = self._resume
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def kill(self, value: Any = None) -> None:
        """Terminate the process immediately without raising into it.

        Used by the resilience layer to model a kernel crash: the process
        simply ceases to exist — it is detached from whatever event it was
        waiting on, its generator is closed (running ``finally`` blocks),
        and the process event succeeds quietly with ``value`` so waiters
        (if any) observe a normal termination.  Killing a finished process
        is a no-op.
        """
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        self._generator.close()
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0, PRIORITY_NORMAL)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process that
        is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt dead process {self!r}")
        event = Event(self.sim, name=f"interrupt:{self.name}")
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        self.sim._schedule(event, 0.0, PRIORITY_URGENT)

    # -- machinery -----------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # An interrupt raced with normal termination; drop it.
            return
        # Detach from the event we were waiting on (relevant for interrupts).
        target = self._target
        if target is not None and target is not event:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        sim = self.sim
        generator = self._generator
        sim._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    next_event = generator.throw(event._value)
                if not isinstance(next_event, Event):
                    raise TypeError(
                        f"process {self.name!r} yielded {next_event!r}, expected an Event"
                    )
                if next_event.callbacks is not None:
                    # Still pending (or triggered but not yet processed):
                    # register and suspend.
                    next_event.callbacks.append(self._resume_cb)
                    self._target = next_event
                    return
                # Already processed: loop around immediately with its value.
                event = next_event
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            sim._schedule(self, 0.0, PRIORITY_NORMAL)
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            if not isinstance(exc, Exception):
                raise
            sim._schedule(self, 0.0, PRIORITY_NORMAL)
        finally:
            sim._active_process = None


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share one simulator")
        self._count = 0
        if self._immediately_satisfied():
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
            if self.triggered:
                break

    def _immediately_satisfied(self) -> bool:
        raise NotImplementedError

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(ConditionError(f"condition child failed: {event._value!r}"))
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every child event has triggered successfully."""

    __slots__ = ()

    def _immediately_satisfied(self) -> bool:
        return len(self.events) == 0

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Triggers when at least one child event has triggered successfully."""

    __slots__ = ()

    def _immediately_satisfied(self) -> bool:
        return False

    def _satisfied(self) -> bool:
        return self._count >= 1


class Simulator:
    """The discrete-event engine: a clock plus a priority queue of events."""

    def __init__(self, start_time: float = 0.0):
        #: current simulation time — a plain attribute (read-mostly hot path);
        #: treat it as read-only from outside the engine
        self.now = float(start_time)
        self._queue: list = []
        #: tie-break sequence (plain int: incremented inline on the hot path)
        self._seq = 0
        #: recycled cancelled Timeouts awaiting re-arming (see Timeout.cancel)
        self._timeout_pool: list = []
        self._active_process: Optional[Process] = None
        #: number of events processed so far (diagnostics / budget guards)
        self.events_processed = 0
        #: number of events lazily cancelled and never dispatched
        self.events_cancelled = 0

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        pool = self._timeout_pool
        if pool:
            # Re-arm a recycled timeout in place: same fields a fresh
            # construction would set, minus the allocation.
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t.name = name
            t.callbacks = []
            t._value = value
            t._ok = True
            t.delay = delay
            self._seq = seq = self._seq + 1
            t._entry = entry = [self.now + delay, PRIORITY_NORMAL, seq, t]
            heappush(self._queue, entry)
            return t
        return Timeout(self, delay, value, name)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq = seq = self._seq + 1
        event._entry = entry = [self.now + delay, priority, seq, event]
        heappush(self._queue, entry)

    def _drop_cancelled_head(self) -> None:
        """Pop lazily cancelled entries off the head of the queue.

        The one shared cancelled-slot skip: :meth:`peek`, :meth:`step` and
        :meth:`run` all defer to it, so lazy-deletion bookkeeping lives in
        exactly one place.
        """
        queue = self._queue
        while queue and queue[0][3] is None:
            heappop(queue)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        self._drop_cancelled_head()
        return self._queue[0][0] if self._queue else float("inf")

    def queue_snapshot(self, limit: Optional[int] = None) -> list:
        """Dispatch-ordered view of pending events, for inspection only.

        Returns up to ``limit`` tuples ``(time, priority, seq, label)`` in
        the order :meth:`step` would dispatch them, skipping lazily
        cancelled slots.  Used by the time-travel debugger's ``queues``
        inspector (:mod:`repro.replay`); never called on a hot path, and
        it neither pops nor reorders the live heap.
        """
        live = [entry for entry in self._queue if entry[3] is not None]
        live.sort(key=lambda entry: entry[:3])
        if limit is not None:
            live = live[:limit]
        return [
            (entry[0], entry[1], entry[2], entry[3].name or type(entry[3]).__name__)
            for entry in live
        ]

    def step(self) -> None:
        """Process exactly one (non-cancelled) event."""
        self._drop_cancelled_head()
        entry = heappop(self._queue)
        when = entry[0]
        event = entry[3]
        if when < self.now:  # pragma: no cover - guarded by _schedule
            raise RuntimeError("event scheduled in the past")
        self.now = when
        event._entry = None
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and isinstance(event._value, BaseException):
            # A failed event nobody waited for: surface the error rather than
            # silently losing it (matches SimPy's behaviour).
            raise event._value

    def run(self, until: Optional[float | Event] = None, max_events: Optional[int] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run up to and including that
        time) or an :class:`Event` (run until it is processed; returns its
        value).  ``max_events`` bounds total events processed as a runaway
        guard.  Lazily cancelled events are skipped without dispatch and
        show up in :attr:`events_cancelled` only.
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise ValueError(f"until={deadline} is in the past (now={self.now})")

        processed_limit = (
            self.events_processed + max_events if max_events is not None else None
        )
        # Hot loop: locally bound pop; the single-waiter dispatch (the
        # overwhelmingly common shape — one process waiting on one event)
        # skips the callback for-loop entirely.
        queue = self._queue
        pop = heappop
        while queue:
            entry = queue[0]
            if entry[3] is None:  # lazily cancelled: shared helper drops it
                self._drop_cancelled_head()
                continue
            when = entry[0]
            if when > deadline:
                self.now = deadline
                return None
            if processed_limit is not None and self.events_processed >= processed_limit:
                raise RuntimeError(f"simulation exceeded max_events={max_events}")
            pop(queue)
            event = entry[3]
            self.now = when
            event._entry = None
            callbacks = event.callbacks
            event.callbacks = None
            self.events_processed += 1
            if len(callbacks) == 1:
                callbacks[0](event)
            elif callbacks:
                for callback in callbacks:
                    callback(event)
            elif not event._ok and isinstance(event._value, BaseException):
                raise event._value
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event.value
                raise stop_event.value  # type: ignore[misc]
        if stop_event is not None and not stop_event.processed:
            raise RuntimeError(
                f"simulation queue drained before {stop_event!r} triggered (deadlock?)"
            )
        if deadline != float("inf"):
            self.now = deadline
        return None

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is completely drained."""
        self.run(until=None, max_events=max_events)

    def run_window(self, horizon: float) -> int:
        """Process every event *strictly before* ``horizon``; return the count.

        This is the conservative parallel loop's primitive (:mod:`repro.shard`):
        each shard's simulator is advanced window by window, and the window is
        half-open — an event stamped exactly ``horizon`` is *not* processed,
        because a frame from another shard may still be merged at that very
        timestamp (the horizon is ``window start + lookahead``, and cross-shard
        effects land exactly at the lookahead bound in the worst case).

        Unlike :meth:`run`, the clock is left at the last processed event
        rather than advanced to the deadline: the windowed driver owns the
        global clock, and events merged later must not appear to be in the
        past.  Exceptions propagate exactly as in :meth:`run`.
        """
        queue = self._queue
        pop = heappop
        before = self.events_processed
        while queue:
            entry = queue[0]
            if entry[3] is None:
                self._drop_cancelled_head()
                continue
            when = entry[0]
            if when >= horizon:
                break
            pop(queue)
            event = entry[3]
            self.now = when
            event._entry = None
            callbacks = event.callbacks
            event.callbacks = None
            self.events_processed += 1
            if len(callbacks) == 1:
                callbacks[0](event)
            elif callbacks:
                for callback in callbacks:
                    callback(event)
            elif not event._ok and isinstance(event._value, BaseException):
                raise event._value
        return self.events_processed - before

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` without processing anything.

        Only legal when no pending event is stamped earlier than ``when`` —
        the shard engine uses it to align every shard's final clock to the
        globally last event time before statistics are read (time-weighted
        monitors otherwise disagree across shard counts).
        """
        if when < self.now:
            raise ValueError(f"cannot move the clock backwards ({when} < {self.now})")
        if self.peek() < when:
            raise RuntimeError(
                f"advance_to({when}) would skip a pending event at {self.peek()}"
            )
        self.now = when
