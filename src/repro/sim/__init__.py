"""Discrete-event simulation engine (from scratch, SimPy-flavoured API).

Public surface::

    sim = Simulator()
    def proc(sim):
        yield sim.timeout(1.0)
        return 42
    p = sim.process(proc(sim))
    sim.run(p)   # -> 42
"""

from .core import (
    AllOf,
    AnyOf,
    ConditionError,
    Event,
    Interrupt,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Process,
    Simulator,
    Timeout,
)
from .resources import Container, Mutex, Release, Request, Resource, Store
from .rng import RandomStreams
from .monitor import Counter, StatSet, Tally, TimeWeighted, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionError",
    "Event",
    "Interrupt",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "Simulator",
    "Timeout",
    "Container",
    "Mutex",
    "Release",
    "Request",
    "Resource",
    "Store",
    "RandomStreams",
    "Counter",
    "StatSet",
    "Tally",
    "TimeWeighted",
    "TraceRecord",
    "Tracer",
]
