"""Cluster-scale benchmark scenarios: sharded vs single-loop execution.

Each scenario runs the *same* simulation twice — once on one event loop
(``shards=1``, inline) and once sharded (``repro.shard``, one OS worker
process per shard where the entry point allows it) — and reports:

* the deterministic outcome (simulated elapsed, events processed, wire
  messages), which MUST be byte-identical between the two runs
  (``identical``); a mismatch is an engine bug, not a perf regression;
* both wall-clocks and their ratio (``speedup``), plus ``cpus`` so a
  reader can tell a genuine regression from a box with nothing to
  parallelise on — on one core the process backend is pure IPC overhead
  and ``speedup < 1`` is the *expected honest* outcome.

``tools/check_bench.py --suite engine --cluster-scale`` runs these,
compares the deterministic fields exactly against ``BENCH_engine.json``,
and gates ``speedup >= 2`` at the largest scale scenario whenever the
host actually has at least as many cores as shards (loud SKIP
otherwise — the gate is about the engine, not about the CI box).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

__all__ = ["CLUSTER_SCENARIOS", "CLUSTER_BENCHES", "run_cluster_bench"]

#: scenario name -> spec; ``cluster_scale_*`` are SPMD scale points (the
#: process backend applies), ``cluster_traffic`` is the full-stack request
#: stream (closure master -> inline backend, determinism check only)
CLUSTER_SCENARIOS: Dict[str, Dict[str, Any]] = {
    "cluster_scale_64": {"kind": "scale", "nodes": 64, "shards": 4},
    "cluster_scale_256": {"kind": "scale", "nodes": 256, "shards": 4},
    "cluster_traffic": {"kind": "traffic", "requests": 600, "kernels": 8, "shards": 4},
}

#: names in report order (smoke mode runs all but the 256-node point)
CLUSTER_BENCHES = tuple(CLUSTER_SCENARIOS)


def _scale_outcome(nodes: int, shards: int, workers: str) -> Dict[str, Any]:
    from ..experiments.scaling import measure_scale_point

    point = measure_scale_point(
        "gauss-seidel", nodes, shards=shards, shard_workers=workers
    )
    return {
        "elapsed": point.elapsed,
        "events": point.events,
        "msgs": point.msgs,
        "stats": json.dumps(point.stats, sort_keys=True),
        "wall": point.wall_seconds,
    }


def _traffic_outcome(kernels: int, requests: int, shards: int) -> Dict[str, Any]:
    from ..traffic.cluster_backend import run_cluster_traffic

    start = time.perf_counter()
    summary = run_cluster_traffic(
        n_kernels=kernels, n_requests=requests, shards=shards
    )
    wall = time.perf_counter() - start
    return {
        "elapsed": summary["elapsed"],
        "events": summary["sim_events"],
        "msgs": summary["count"],
        "stats": json.dumps(summary, sort_keys=True),
        "wall": wall,
    }


def run_cluster_bench(name: str) -> Dict[str, Any]:
    """One sharded-vs-single measurement; see the module docstring."""
    spec = CLUSTER_SCENARIOS[name]
    shards = spec["shards"]
    if spec["kind"] == "scale":
        single = _scale_outcome(spec["nodes"], 1, "inline")
        sharded = _scale_outcome(spec["nodes"], shards, "process")
        scale = spec["nodes"]
    else:
        single = _traffic_outcome(spec["kernels"], spec["requests"], 1)
        sharded = _traffic_outcome(spec["kernels"], spec["requests"], shards)
        scale = spec["kernels"]
    identical = all(single[k] == sharded[k] for k in ("elapsed", "events", "msgs", "stats"))
    return {
        # deterministic fields (compared exactly against the baseline)
        "sim_now": single["elapsed"],
        "events": single["events"],
        "msgs": single["msgs"],
        "identical": identical,
        # wall-side fields (machine-dependent)
        "wall": sharded["wall"],
        "wall_single": single["wall"],
        "speedup": single["wall"] / sharded["wall"] if sharded["wall"] else 0.0,
        "cpus": os.cpu_count() or 1,
        "nodes": scale,
        "shards": shards,
        "kind": spec["kind"],
    }
