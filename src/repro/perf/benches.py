"""Canonical engine benchmark scenarios (shared by tools and tests).

These are the wall-clock workloads behind ``BENCH_engine.json``: three
micro-benches that stress the discrete-event engine's distinct hot paths
(bare timeout dispatch, processor-sharing timer churn, CSMA/CD contention)
plus one end-to-end figure point.  ``tools/check_bench.py`` times them and
compares against the committed baseline; ``tests/test_perf.py`` asserts
their *simulated* outcomes stay bit-identical across engine optimisations.

Every scenario returns the deterministic fields of the run — simulated
clock, events processed, events cancelled — so a wall-clock comparison can
first prove it timed the *same* computation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

__all__ = ["BENCHES", "MICRO_BENCHES", "run_bench", "time_bench"]


def timeout_chain() -> Dict[str, float]:
    """Bare event-loop speed: one process yielding a chain of timeouts."""
    from ..sim import Simulator

    sim = Simulator()

    def ticker():
        for _ in range(20_000):
            yield sim.timeout(0.001)

    sim.process(ticker())
    sim.run_all()
    return _outcome(sim)


def ps_churn() -> Dict[str, float]:
    """PS CPU with constant arrivals/departures (the scheduler hot path)."""
    from ..osmodel import ProcessorSharingCPU
    from ..sim import Simulator

    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, context_switch=25e-6)

    def burst(duration):
        yield cpu.execute(duration)

    for i in range(2_000):
        sim.process(burst(0.001 + (i % 7) * 0.0003))
    sim.run_all()
    return _outcome(sim, completed=cpu.stats.counter("completed").value)


def bus_contention() -> Dict[str, float]:
    """CSMA/CD arbitration under 8-station contention."""
    from ..network import EthernetBus, EthernetFrame
    from ..sim import RandomStreams, Simulator

    sim = Simulator()
    bus = EthernetBus(sim, RandomStreams(3))
    for i in range(8):
        bus.attach(i, lambda f: None)

    def chatter(src):
        for k in range(100):
            yield from bus.send(
                EthernetFrame(src=src, dst=(src + 1) % 8, payload=k, payload_bytes=128)
            )

    for i in range(8):
        sim.process(chatter(i))
    sim.run_all()
    return _outcome(sim, frames=bus.stats.counter("frames_sent").value)


def figure_point() -> Dict[str, float]:
    """One end-to-end figure point: Gauss-Seidel on a 6-kernel cluster."""
    from ..apps.gauss_seidel import gauss_seidel_worker
    from ..dse import ClusterConfig, run_parallel
    from ..hardware import get_platform

    result = run_parallel(
        ClusterConfig(platform=get_platform("sunos"), n_processors=6),
        gauss_seidel_worker,
        args=(200, 3, 7, False),
    )
    elapsed = max(r["t1"] - r["t0"] for r in result.returns.values())
    sim = result.cluster.sim
    out = _outcome(sim)
    out["elapsed"] = elapsed
    return out


def _outcome(sim, **extra) -> Dict[str, float]:
    out = {
        "sim_now": sim.now,
        "events": sim.events_processed,
        "cancelled": sim.events_cancelled,
    }
    out.update(extra)
    return out


#: the three engine micro-benches the perf acceptance gate tracks
MICRO_BENCHES: Tuple[str, ...] = ("timeout_chain", "ps_churn", "bus_contention")

#: bench name -> scenario callable (insertion order = report order)
BENCHES: Dict[str, Callable[[], Dict[str, float]]] = {
    "timeout_chain": timeout_chain,
    "ps_churn": ps_churn,
    "bus_contention": bus_contention,
    "figure_point": figure_point,
}


def run_bench(name: str) -> Dict[str, float]:
    """Run one scenario once, returning its deterministic outcome fields."""
    return BENCHES[name]()


def time_bench(name: str, repeats: int = 5) -> Tuple[float, Dict[str, float]]:
    """Best-of-``repeats`` wall-clock seconds plus the deterministic outcome.

    Best-of (not mean) is the standard noise filter for micro-benches: the
    minimum is the least-perturbed observation of the same deterministic
    computation.
    """
    fn = BENCHES[name]
    best = float("inf")
    outcome: Dict[str, float] = {}
    walls: List[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        outcome = fn()
        wall = time.perf_counter() - t0
        walls.append(wall)
        if wall < best:
            best = wall
    return best, outcome
