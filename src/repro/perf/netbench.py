"""Canonical transport-loss scenarios (shared by tools, benchmarks, CI).

One scenario: a sender streams ``n_messages`` fixed-size messages to a
receiver over one fabric while a Gilbert–Elliott burst-loss chain
(:class:`~repro.network.faults.BurstLossConfig`) eats frames on the
receiver's NIC, then flushes.  The headline number is **simulated
goodput** — delivered messages per simulated second — which is fully
deterministic per seed and therefore machine-independent: CI can compare
it exactly, no wall-clock tolerance needed.

``tools/check_bench.py --suite transport`` records/compares the committed
trajectory in ``BENCH_transport.json`` and gates the selective-repeat
speed-up over stop-and-wait under burst loss (the modern-transport
acceptance bar is >= 10x at the canonical loss point).  The same matrix
backs ``benchmarks/bench_transport_loss.py`` and the ``dse-experiments
loss-sweep`` CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError

__all__ = [
    "TRANSPORTS",
    "LOSS_POINTS",
    "CANONICAL",
    "run_stream",
    "run_matrix",
    "sweep_rows",
    "matrix_ratios",
]

#: transports the loss matrix compares (datagram would silently lose data)
TRANSPORTS = ("reliable", "reliable-gbn", "sr", "dual")

#: canonical Gilbert–Elliott entry probabilities swept (p_exit fixed: mean
#: burst length 4 frames); 0.0 is the loss-free control column
LOSS_POINTS = (0.0, 0.01, 0.02)

#: the acceptance-gate point: seed, fabric, messages, and the loss setting
#: the >= 10x selective-repeat speed-up is asserted at
CANONICAL = {
    "fabric": "switch",
    "n_messages": 200,
    "payload_bytes": 256,
    "p_enter_bad": 0.02,
    "p_exit_bad": 0.25,
    "seed": 1999,
}


def run_stream(
    kind: str,
    n_messages: int = 200,
    payload_bytes: int = 256,
    p_enter_bad: float = 0.0,
    p_exit_bad: float = 0.25,
    seed: int = 1999,
    fabric: str = "switch",
    timeout: float = 120.0,
) -> Dict[str, float]:
    """Stream ``n_messages`` through ``kind`` under burst loss; measure.

    Returns the deterministic outcome: ``sim_now`` (flush completion,
    simulated seconds), ``goodput_mps`` (messages per simulated second),
    ``delivered``, and the transport's recovery counters.  A transport
    that gives up mid-burst (stop-and-wait exhausts its retry budget on
    long bursts) comes back with ``completed = 0`` and the partial
    delivery count — a DNF row, not an exception.
    """
    from ..network.faults import BurstLossConfig, LossInjector
    from ..network.topology import FabricConfig, build_network
    from ..protocol.transport import make_transport
    from ..sim.core import Simulator
    from ..sim.rng import RandomStreams

    sim = Simulator()
    rng = RandomStreams(seed)
    net = build_network(sim, rng, 2, FabricConfig(kind=fabric))
    sender = make_transport(sim, net.nic(0), kind)
    receiver = make_transport(sim, net.nic(1), kind)
    inbox = receiver.bind(7)
    if p_enter_bad > 0.0:
        injector = LossInjector(
            sim,
            net.nic(1),
            rng,
            burst=BurstLossConfig(p_enter_bad=p_enter_bad, p_exit_bad=p_exit_bad),
        )
        injector.arm()

    finished: Dict[str, float] = {}

    def produce():
        for i in range(n_messages):
            yield from sender.send(1, 7, ("msg", i), payload_bytes)
        if hasattr(sender, "flush"):
            yield from sender.flush(1, 7)
        finished["at"] = sim.now

    got: List[Tuple[str, int]] = []

    def consume():
        while len(got) < n_messages:
            packet = yield inbox.get()
            got.append(packet.payload)

    sim.process(produce(), name="netbench-sender")
    sim.process(consume(), name="netbench-receiver")
    try:
        sim.run(until=timeout)
    except ProtocolError:
        # Stop-and-wait's retry budget died inside a burst: DNF.
        finished.pop("at", None)
    done = finished.get("at")
    outcome: Dict[str, float] = {
        "completed": 1 if done is not None else 0,
        "sim_now": round(done, 9) if done is not None else 0.0,
        "delivered": len(got),
        "goodput_mps": round(n_messages / done, 3) if done else 0.0,
    }
    stats = getattr(sender, "stats", None)
    if stats is not None:
        for counter in ("retransmissions", "timeouts", "fast_retransmits",
                        "partial_ack_retransmits", "cwnd_floor_hits"):
            outcome[counter] = stats.counter(counter).value
    return outcome


def run_matrix(
    transports: Tuple[str, ...] = TRANSPORTS,
    loss_points: Tuple[float, ...] = LOSS_POINTS,
    **overrides,
) -> Dict[str, Dict[str, float]]:
    """The full transport x loss matrix, keyed ``"<kind>@<p_enter>"``."""
    params = {**CANONICAL, **overrides}
    params.pop("p_enter_bad", None)
    results = {}
    for kind in transports:
        for p_enter in loss_points:
            results[f"{kind}@{p_enter:g}"] = run_stream(
                kind, p_enter_bad=p_enter, **params
            )
    return results


def matrix_ratios(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Goodput speed-ups over stop-and-wait per loss point (0 on DNF)."""
    ratios = {}
    for key, outcome in results.items():
        kind, _, point = key.partition("@")
        if kind == "reliable":
            continue
        base = results.get(f"reliable@{point}")
        if base is None:
            continue
        if base["completed"] and outcome["completed"] and base["sim_now"]:
            ratios[key] = round(outcome["goodput_mps"] / base["goodput_mps"], 3)
        else:
            # Stop-and-wait DNF'd: the speed-up is unbounded; report the
            # sentinel rather than a fake number.
            ratios[key] = float("inf") if outcome["completed"] else 0.0
    return ratios


def sweep_rows(
    transports: Tuple[str, ...] = TRANSPORTS,
    loss_points: Tuple[float, ...] = LOSS_POINTS,
    **overrides,
) -> List[Dict[str, float]]:
    """The matrix flattened into table rows (CLI / benchmark display)."""
    results = run_matrix(transports, loss_points, **overrides)
    ratios = matrix_ratios(results)
    rows = []
    for key, outcome in results.items():
        kind, _, point = key.partition("@")
        rows.append(
            {
                "transport": kind,
                "p_enter_bad": float(point),
                "completed": bool(outcome["completed"]),
                "elapsed_s": outcome["sim_now"],
                "goodput_mps": outcome["goodput_mps"],
                "retransmissions": outcome.get("retransmissions", 0),
                "timeouts": outcome.get("timeouts", 0),
                "speedup_vs_stop_and_wait": ratios.get(key, 1.0),
            }
        )
    return rows
