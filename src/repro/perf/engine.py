"""Event-loop profiler: where the host CPU goes inside ``Simulator.run``.

The figure suite pushes millions of events through one Python event loop,
so engine optimisation has to be guided by dispatch-level data, not
``cProfile`` guesses: which *event types* dominate, how wide their callback
fan-out is, and which *callback sites* (bound methods of the OS model, the
exchange, the protocol stack) actually burn the time.

:class:`EngineProfiler` is a context manager that temporarily replaces
``Simulator.run`` with an instrumented drive loop.  The instrumented loop
dispatches events exactly like the real one — same ordering, same
exception semantics, same simulated clock — and additionally records, per
dispatched event:

* the event type (``Timeout``, ``Process``, ``Request``, ...),
* wall nanoseconds spent running its callbacks,
* the callback fan-out (how many waiters one event resumed), and
* per-callback-site attribution (the callback's qualified name).

Profiling changes *no* simulated outcome (asserted by tests); it only
costs host time, so it is opt-in: ``dse-experiments profile-engine`` or a
``with EngineProfiler() as prof:`` block around any run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop as _heappop
from typing import Any, Dict, List, Optional

from ..sim.core import Event, Simulator
from ..util.tables import Table

__all__ = ["EngineProfiler", "EngineProfile", "SiteStats"]


@dataclass
class SiteStats:
    """Aggregate for one attribution key (event type or callback site)."""

    count: int = 0
    wall_ns: int = 0

    @property
    def wall_ms(self) -> float:
        return self.wall_ns / 1e6

    @property
    def avg_us(self) -> float:
        return self.wall_ns / self.count / 1e3 if self.count else 0.0


@dataclass
class EngineProfile:
    """The collected event-loop profile."""

    #: event type name -> dispatch count / callback wall time
    by_type: Dict[str, SiteStats] = field(default_factory=dict)
    #: callback qualified name -> invocation count / wall time
    by_site: Dict[str, SiteStats] = field(default_factory=dict)
    #: callback fan-out (len(callbacks) at dispatch) -> event count
    fanout: Dict[int, int] = field(default_factory=dict)
    events_processed: int = 0
    events_cancelled: int = 0
    wall_ns: int = 0

    @property
    def wall_seconds(self) -> float:
        return self.wall_ns / 1e9

    @property
    def events_per_second(self) -> float:
        return self.events_processed / self.wall_seconds if self.wall_ns else 0.0

    def render(self, top: int = 12) -> str:
        """The three profile tables plus the engine footer line."""
        parts = []
        tt = Table(
            ["event type", "count", "total (ms)", "avg (us)", "share"],
            title="dispatch by event type",
        )
        total_ns = sum(s.wall_ns for s in self.by_type.values()) or 1
        for name, s in sorted(self.by_type.items(), key=lambda kv: -kv[1].wall_ns):
            tt.add(name, s.count, f"{s.wall_ms:.3f}", f"{s.avg_us:.2f}",
                   f"{100.0 * s.wall_ns / total_ns:.1f}%")
        parts.append(tt.render())

        st = Table(
            ["callback site", "calls", "total (ms)", "avg (us)"],
            title=f"hot callback sites (top {top})",
        )
        for name, s in sorted(self.by_site.items(), key=lambda kv: -kv[1].wall_ns)[:top]:
            st.add(name, s.count, f"{s.wall_ms:.3f}", f"{s.avg_us:.2f}")
        parts.append(st.render())

        ft = Table(["fan-out", "events"], title="callback fan-out histogram")
        for width in sorted(self.fanout):
            ft.add(width, self.fanout[width])
        parts.append(ft.render())

        parts.append(
            f"engine: {self.events_processed} events dispatched, "
            f"{self.events_cancelled} lazily cancelled (never dispatched), "
            f"{self.wall_seconds:.3f}s wall, "
            f"{self.events_per_second:,.0f} events/s"
        )
        return "\n\n".join(parts)


def _site_name(callback: Any) -> str:
    """A stable attribution key for one callback."""
    func = getattr(callback, "__func__", callback)
    return getattr(func, "__qualname__", repr(callback))


class EngineProfiler:
    """Context manager that instruments every ``Simulator.run`` inside it.

    The patch is class-wide (``Simulator.run``), so runs started by code
    that builds its own simulator (``run_parallel`` builds the cluster
    internally) are captured without plumbing.  Nested profilers are not
    supported; the original ``run`` is always restored on exit.
    """

    def __init__(self) -> None:
        self.profile = EngineProfile()
        self._saved_run: Optional[Any] = None
        self._cancel_base: Dict[int, int] = {}

    # -- context management ------------------------------------------------
    def __enter__(self) -> "EngineProfiler":
        if self._saved_run is not None:
            raise RuntimeError("EngineProfiler cannot be nested/re-entered")
        self._saved_run = Simulator.run
        profiler = self

        def run(sim, until=None, max_events=None):
            return profiler._profiled_run(sim, until, max_events)

        Simulator.run = run
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        Simulator.run = self._saved_run
        self._saved_run = None

    # -- the instrumented drive loop ----------------------------------------
    def _profiled_run(
        self, sim: Simulator, until: Optional[Any], max_events: Optional[int]
    ) -> Any:
        """`Simulator.run` semantics plus per-dispatch accounting.

        Mirrors :meth:`repro.sim.core.Simulator.run` exactly — ordering,
        deadline handling, the failed-unwaited-event raise, and the stop
        event — with timing wrapped around callback execution.
        """
        prof = self.profile
        by_type = prof.by_type
        by_site = prof.by_site
        fanout = prof.fanout
        clock = time.perf_counter_ns

        cancelled_before = sim.events_cancelled

        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            deadline = float(until)
            if deadline < sim.now:
                raise ValueError(f"until={deadline} is in the past (now={sim.now})")

        processed_limit = (
            sim.events_processed + max_events if max_events is not None else None
        )
        queue = sim._queue
        t_loop0 = clock()
        try:
            while queue:
                entry = queue[0]
                if entry[3] is None:
                    sim._drop_cancelled_head()
                    continue
                if entry[0] > deadline:
                    sim.now = deadline
                    return None
                if processed_limit is not None and sim.events_processed >= processed_limit:
                    raise RuntimeError(f"simulation exceeded max_events={max_events}")
                _heappop(queue)
                event = entry[3]
                sim.now = entry[0]
                event._entry = None
                callbacks, event.callbacks = event.callbacks, None
                sim.events_processed += 1

                width = len(callbacks)
                fanout[width] = fanout.get(width, 0) + 1
                t0 = clock()
                for callback in callbacks:
                    c0 = clock()
                    callback(event)
                    dt = clock() - c0
                    site = _site_name(callback)
                    s = by_site.get(site)
                    if s is None:
                        s = by_site[site] = SiteStats()
                    s.count += 1
                    s.wall_ns += dt
                t1 = clock()

                tname = type(event).__name__
                ts = by_type.get(tname)
                if ts is None:
                    ts = by_type[tname] = SiteStats()
                ts.count += 1
                ts.wall_ns += t1 - t0
                prof.events_processed += 1

                if not event._ok and not callbacks and isinstance(event._value, BaseException):
                    raise event._value
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event.value
                    raise stop_event.value  # type: ignore[misc]
            if stop_event is not None and not stop_event.processed:
                raise RuntimeError(
                    f"simulation queue drained before {stop_event!r} triggered (deadlock?)"
                )
            if deadline != float("inf"):
                sim.now = deadline
            return None
        finally:
            prof.wall_ns += clock() - t_loop0
            prof.events_cancelled += sim.events_cancelled - cancelled_before
