"""Performance layer: event-loop profiling and engine benchmarks.

Two halves:

* :mod:`repro.perf.engine` — :class:`EngineProfiler`, the dispatch-level
  profiler behind ``dse-experiments profile-engine``: per-event-type
  counts/time, callback fan-out histograms, and hot-site attribution.
* :mod:`repro.perf.benches` — the canonical wall-clock scenarios recorded
  in ``BENCH_engine.json`` and gated by ``tools/check_bench.py``.

See ``docs/performance.md`` for how these guided the engine fast paths.
"""

from .benches import BENCHES, MICRO_BENCHES, run_bench, time_bench
from .engine import EngineProfile, EngineProfiler, SiteStats

__all__ = [
    "BENCHES",
    "MICRO_BENCHES",
    "run_bench",
    "time_bench",
    "EngineProfile",
    "EngineProfiler",
    "SiteStats",
]
