"""Performance layer: event-loop profiling and engine benchmarks.

Three parts:

* :mod:`repro.perf.engine` — :class:`EngineProfiler`, the dispatch-level
  profiler behind ``dse-experiments profile-engine``: per-event-type
  counts/time, callback fan-out histograms, and hot-site attribution.
* :mod:`repro.perf.benches` — the canonical wall-clock scenarios recorded
  in ``BENCH_engine.json`` and gated by ``tools/check_bench.py``.
* :mod:`repro.perf.netbench` — the transport x burst-loss goodput matrix
  recorded in ``BENCH_transport.json`` (same tool, ``--suite transport``).

See ``docs/performance.md`` for how these guided the engine fast paths and
``docs/networking.md`` for the transport loss benchmarks.
"""

from .benches import BENCHES, MICRO_BENCHES, run_bench, time_bench
from .clusterbench import CLUSTER_BENCHES, CLUSTER_SCENARIOS, run_cluster_bench
from .engine import EngineProfile, EngineProfiler, SiteStats
from .netbench import (
    CANONICAL,
    LOSS_POINTS,
    TRANSPORTS,
    matrix_ratios,
    run_matrix,
    run_stream,
    sweep_rows,
)

__all__ = [
    "BENCHES",
    "CLUSTER_BENCHES",
    "CLUSTER_SCENARIOS",
    "MICRO_BENCHES",
    "run_cluster_bench",
    "run_bench",
    "time_bench",
    "EngineProfile",
    "EngineProfiler",
    "SiteStats",
    "CANONICAL",
    "LOSS_POINTS",
    "TRANSPORTS",
    "matrix_ratios",
    "run_matrix",
    "run_stream",
    "sweep_rows",
]
