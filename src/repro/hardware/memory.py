"""Local and global memory descriptions for a Processor Element.

The paper's DSE model (its Figure 1) gives every Processor Element a
Processor Unit, a Local Memory, and a slice of the Global Memory; the union
of the slices forms the distributed shared memory.  These dataclasses are
purely descriptive — timing for remote global-memory access is charged in
the DSE global-memory module and the network, local access in the CPU model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.units import MB

__all__ = ["MemorySpec", "GlobalMemorySlice"]


@dataclass(frozen=True)
class MemorySpec:
    """Local memory of one node."""

    size_bytes: int = 64 * MB
    access_time: float = 120e-9  # DRAM access latency, seconds

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("memory size must be positive")
        if self.access_time < 0:
            raise ValueError("access time must be non-negative")


@dataclass(frozen=True)
class GlobalMemorySlice:
    """One node's contribution to the cluster-wide global memory."""

    size_bytes: int = 16 * MB

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("global memory slice must be positive")
