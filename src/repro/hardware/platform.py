"""Platform specification: one row of the paper's Table 1.

A platform bundles a CPU model with the operating-system cost constants that
the paper identifies as the dominant overheads of a user-level DSE:
system-call entry/exit, context switching between the DSE kernel and the
DSE process (driven by asynchronous-I/O signals), interrupt/signal delivery,
and network protocol processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cpu import CPUSpec
from .memory import GlobalMemorySlice, MemorySpec

__all__ = ["OSCosts", "PlatformSpec"]


@dataclass(frozen=True)
class OSCosts:
    """Operating-system cost constants, in seconds (per occurrence)."""

    syscall: float  # one system call entry+exit
    context_switch: float  # switch between two UNIX processes
    signal_delivery: float  # deliver a signal (SIGIO async-I/O notification)
    protocol_per_message: float  # fixed transport+IP processing per message
    protocol_per_byte: float  # copy/checksum cost per payload byte
    timeslice: float = 0.010  # scheduler quantum

    def __post_init__(self) -> None:
        for name in (
            "syscall",
            "context_switch",
            "signal_delivery",
            "protocol_per_message",
            "protocol_per_byte",
            "timeslice",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PlatformSpec:
    """One experiment platform: machine + OS (a Table 1 row)."""

    name: str  # e.g. "SparcStation / SunOS 4.1.4"
    machine: str  # hardware family
    os_name: str  # operating system + version
    cpu: CPUSpec
    os_costs: OSCosts
    local_memory: MemorySpec = field(default_factory=MemorySpec)
    global_memory: GlobalMemorySlice = field(default_factory=GlobalMemorySlice)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.cpu} | syscall {self.os_costs.syscall * 1e6:.0f}us, "
            f"ctx-switch {self.os_costs.context_switch * 1e6:.0f}us, "
            f"proto {self.os_costs.protocol_per_message * 1e6:.0f}us/msg"
        )
