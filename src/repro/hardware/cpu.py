"""CPU cost model.

Applications in this reproduction perform their computations *for real* in
Python, but simulated time is charged from an abstract operation count
(integer ops, floating-point ops, memory touches) through a
:class:`CPUSpec`.  The spec's throughput numbers are calibrated to
era-appropriate magnitudes for the paper's three machines; what matters for
reproducing the figures is the *ratio* between compute cost and the OS /
network costs, not absolute agreement with 1999 wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUSpec", "Work"]


@dataclass(frozen=True)
class Work:
    """An abstract unit of computation: operation counts by category."""

    flops: float = 0.0  # floating-point operations
    iops: float = 0.0  # integer/logic operations
    mems: float = 0.0  # memory touches beyond register traffic

    def __add__(self, other: "Work") -> "Work":
        return Work(self.flops + other.flops, self.iops + other.iops, self.mems + other.mems)

    def scaled(self, k: float) -> "Work":
        return Work(self.flops * k, self.iops * k, self.mems * k)

    @property
    def total_ops(self) -> float:
        return self.flops + self.iops + self.mems


@dataclass(frozen=True)
class CPUSpec:
    """Throughput description of one processor.

    ``mflops`` / ``mips`` / ``mmemops`` are sustained millions of operations
    per second for each :class:`Work` category.
    """

    name: str
    clock_mhz: float
    mflops: float
    mips: float
    mmemops: float

    def __post_init__(self) -> None:
        for field_name in ("clock_mhz", "mflops", "mips", "mmemops"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def seconds_for(self, work: Work) -> float:
        """Simulated seconds to execute ``work`` on this CPU."""
        return (
            work.flops / (self.mflops * 1e6)
            + work.iops / (self.mips * 1e6)
            + work.mems / (self.mmemops * 1e6)
        )

    def seconds_for_flops(self, flops: float) -> float:
        return flops / (self.mflops * 1e6)

    def seconds_for_iops(self, iops: float) -> float:
        return iops / (self.mips * 1e6)

    def __str__(self) -> str:
        return f"{self.name} ({self.clock_mhz:.0f} MHz)"
