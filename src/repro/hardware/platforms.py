"""The paper's Table 1: the three experiment platforms.

The scanned paper lost most numerals; the machines named are a Sun
SparcStation under SunOS 4.1.x ("SunOS..-JL"), an IBM RS/6000 under AIX 4.x,
and a PC-AT with a Pentium II 266 MHz under GNU/Linux (kernel 2.0.x).  The
constants below are calibrated to era-appropriate magnitudes:

* **SparcStation 5 (microSPARC-II, 85 MHz)** — the slowest CPU of the trio,
  with the heaviest OS path (SunOS 4 was a mid-80s kernel by 1999).
* **RS/6000 (PowerPC 604e-class, 166 MHz)** — strong floating point (the
  POWER line's hallmark) with a mid-weight AIX syscall path.
* **PC-AT Pentium II 266 MHz, Linux 2.0** — fastest integer unit and by far
  the leanest kernel path.

MFLOPS figures are *sustained* rates for unblocked dense loops (well below
peak — the usual 30-50 % of clock-limited throughput for this era), and
``mmemops`` is DRAM-streaming throughput in million words/second — the
memory wall: CPUs of this trio differ by 4-5x in compute but much less in
memory bandwidth, which is why the memory-bound Gauss-Seidel behaves
similarly across them.  ``mips`` covers cache-resident integer work (the
game-tree searches).

These values set the *ratio* of computation to OS/communication overhead;
the paper's observation that all three platforms show the same qualitative
speed-up patterns is exactly what the ratios preserve.
"""

from __future__ import annotations

from typing import Dict, List

from .cpu import CPUSpec
from .platform import OSCosts, PlatformSpec
from ..errors import ConfigurationError

__all__ = [
    "SUNOS_SPARCSTATION",
    "AIX_RS6000",
    "LINUX_PCAT",
    "PLATFORMS",
    "platform_names",
    "get_platform",
    "table1_rows",
]

US = 1e-6

SUNOS_SPARCSTATION = PlatformSpec(
    name="SparcStation / SunOS 4.1.4",
    machine="Sun SparcStation 5",
    os_name="SunOS 4.1.4-JL",
    cpu=CPUSpec(name="microSPARC-II", clock_mhz=85.0, mflops=4.0, mips=60.0, mmemops=8.0),
    os_costs=OSCosts(
        syscall=25 * US,
        context_switch=80 * US,
        signal_delivery=60 * US,
        protocol_per_message=350 * US,
        protocol_per_byte=0.15 * US,
    ),
)

AIX_RS6000 = PlatformSpec(
    name="RS/6000 / AIX 4.2",
    machine="IBM RS/6000",
    os_name="AIX 4.2",
    cpu=CPUSpec(name="PowerPC 604e", clock_mhz=166.0, mflops=16.0, mips=150.0, mmemops=12.0),
    os_costs=OSCosts(
        syscall=12 * US,
        context_switch=50 * US,
        signal_delivery=40 * US,
        protocol_per_message=160 * US,
        protocol_per_byte=0.055 * US,
    ),
)

LINUX_PCAT = PlatformSpec(
    name="PentiumII 266MHz / Linux 2.0",
    machine="PC-AT (Pentium II 266 MHz)",
    os_name="GNU/Linux (kernel 2.0.36)",
    cpu=CPUSpec(name="Pentium II", clock_mhz=266.0, mflops=18.0, mips=250.0, mmemops=14.0),
    os_costs=OSCosts(
        syscall=4 * US,
        context_switch=25 * US,
        signal_delivery=20 * US,
        protocol_per_message=90 * US,
        protocol_per_byte=0.030 * US,
    ),
)

PLATFORMS: Dict[str, PlatformSpec] = {
    "sunos": SUNOS_SPARCSTATION,
    "aix": AIX_RS6000,
    "linux": LINUX_PCAT,
}


def platform_names() -> List[str]:
    """Short keys for all Table-1 platforms, in the paper's order."""
    return ["sunos", "aix", "linux"]


def get_platform(name: str) -> PlatformSpec:
    """Look a platform up by short key or by full display name."""
    key = name.strip().lower()
    if key in PLATFORMS:
        return PLATFORMS[key]
    for spec in PLATFORMS.values():
        if spec.name.lower() == key:
            return spec
    raise ConfigurationError(
        f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
    )


def table1_rows() -> List[List[str]]:
    """Rows of the paper's Table 1 (machine, platform/OS)."""
    return [
        [spec.machine, spec.os_name, str(spec.cpu)]
        for spec in (SUNOS_SPARCSTATION, AIX_RS6000, LINUX_PCAT)
    ]
