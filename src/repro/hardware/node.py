"""The Processor Element of the DSE system model (paper Figure 1).

A PE couples a Processor Unit with Local Memory and a slice of Global
Memory.  At simulation time a PE is realised by an
:class:`repro.osmodel.machine.Machine` (which adds the UNIX scheduler); this
module provides the static description used to build clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from .platform import PlatformSpec

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one cluster node (a PE)."""

    node_id: int
    platform: PlatformSpec
    hostname: str = ""

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if not self.hostname:
            object.__setattr__(self, "hostname", f"node{self.node_id:02d}")

    @property
    def global_memory_bytes(self) -> int:
        return self.platform.global_memory.size_bytes

    def __str__(self) -> str:
        return f"{self.hostname} [{self.platform.name}]"
