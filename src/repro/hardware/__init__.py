"""Hardware models: CPUs, memories, nodes, and the Table-1 platforms."""

from .cpu import CPUSpec, Work
from .memory import GlobalMemorySlice, MemorySpec
from .node import NodeSpec
from .platform import OSCosts, PlatformSpec
from .platforms import (
    AIX_RS6000,
    LINUX_PCAT,
    PLATFORMS,
    SUNOS_SPARCSTATION,
    get_platform,
    platform_names,
    table1_rows,
)

__all__ = [
    "CPUSpec",
    "Work",
    "GlobalMemorySlice",
    "MemorySpec",
    "NodeSpec",
    "OSCosts",
    "PlatformSpec",
    "AIX_RS6000",
    "LINUX_PCAT",
    "PLATFORMS",
    "SUNOS_SPARCSTATION",
    "get_platform",
    "platform_names",
    "table1_rows",
]
