"""Time-travel debugging: record/replay with a checkpoint ring.

The missing ops story for the paper's SSI environment: "what was the whole
cluster doing at simulated time T?".  This package composes three things
PRs 1–4 already built — cross-layer spans (:mod:`repro.obs`), coordinated
barrier-aligned checkpoints (:mod:`repro.resilience`), and a simulator
whose runs are pure functions of their config — into a debugger:

* **record** — run under ``ClusterConfig(replay=ReplayConfig(...))``: a
  bounded ring of consistent snapshots + fingerprinted waypoints + an
  event-log tail, bundled into a :class:`Recording` (optionally saved as a
  JSON manifest).
* **replay** — :class:`ReplaySession` seeks any simulated instant by
  deterministic re-execution (timing-exact, waypoint-verified;
  :class:`~repro.errors.ReplayDivergence` on mismatch) or jumps into a
  ring snapshot (solution-exact fast path).  Spans link to replay points
  via :meth:`Recording.anchor`, so a p999 outlier jumps to its moment.
* **live** — :func:`live_run` streams metrics/topology/span summaries as
  JSON lines (file and/or TCP) while a long run executes.

``dse-experiments replay`` / ``dse-experiments live`` are the CLI faces;
see ``docs/debugging.md`` for the walkthrough.
"""

from .config import ReplayConfig
from .recording import Recording, ReplayAnchor, WorkloadSpec, record
from .recorder import ReplayRecorder
from .ring import CheckpointRing, RingSlot
from .session import ReplaySession
from .live import LiveSink, live_run

__all__ = [
    "ReplayConfig",
    "Recording",
    "ReplayAnchor",
    "WorkloadSpec",
    "record",
    "ReplayRecorder",
    "CheckpointRing",
    "RingSlot",
    "ReplaySession",
    "LiveSink",
    "live_run",
]
