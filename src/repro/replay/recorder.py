"""The in-run recorder: checkpoint ring + event-log tail + waypoints.

One :class:`ReplayRecorder` per cluster (built by
:class:`repro.dse.cluster.Cluster` before the kernels, so hook sites can
cache the reference — the established ``is not None`` gating pattern).
It captures three things while an application runs:

* a bounded **checkpoint ring** of barrier-aligned consistent snapshots
  (every rank's application state + home global-memory slice),
* a **waypoint** per checkpoint — (sequence, simulated time, sha256
  fingerprint) — kept forever even after the ring evicts the data.  During
  a replay the recorder compares each waypoint against the reference
  recording and raises :class:`~repro.errors.ReplayDivergence` on the
  first mismatch, turning "the replay silently differs" into a loud error
  at the exact simulated instant it happens,
* an **event-log tail** of annotations since the last retained snapshot
  (checkpoint lifecycle, run markers), shown by the inspector.

Two recording paths share this bookkeeping: with resilience enabled the
recorder piggybacks on :meth:`ResilienceManager.checkpoint` (no extra
barriers, no extra simulated cost); without it, :meth:`checkpoint` runs
its own two-phase barrier protocol, charging ``charge_bps`` only when the
user asks recording to model checkpoint I/O.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..errors import ReplayDivergence
from ..sim.core import Event
from .config import ReplayConfig
from .ring import CheckpointRing, RingSlot

if TYPE_CHECKING:  # pragma: no cover
    from ..dse.cluster import Cluster
    from .recording import Recording

__all__ = ["ReplayRecorder"]


class ReplayRecorder:
    """Cluster-wide recording state (see module docs)."""

    def __init__(self, cluster: "Cluster", config: ReplayConfig):
        # Built before machines/kernels exist: only sizes may be touched here.
        self.cluster = cluster
        self.config = config
        self.sim = cluster.sim
        self.world = cluster.config.n_processors
        self.ring = CheckpointRing(config.ring_size, self.world)
        #: annotations since the last *retained* snapshot
        self.tail: List[dict] = []
        self.tail_dropped = 0
        #: per-rank next checkpoint sequence number
        self._seq_next: Dict[int, int] = {}
        #: seq -> retain-in-ring decision (memoised at the first rank's
        #: arrival, which is after the enter barrier — deterministic)
        self._retain: Dict[int, bool] = {}
        self._last_retained_time: Optional[float] = None
        #: commits so far (index into a reference recording's waypoints)
        self.commits = 0
        #: reference recording to verify against (set by ReplaySession)
        self.reference: Optional["Recording"] = None

    # -- event-log tail -----------------------------------------------------
    def note(self, kind: str, detail: Any = None) -> None:
        """Append one annotation to the tail (bounded by ``log_limit``)."""
        limit = self.config.log_limit
        if limit is not None and len(self.tail) >= limit:
            self.tail_dropped += 1
            return
        self.tail.append({"time": self.sim.now, "kind": kind, "detail": detail})

    # -- retention policy ---------------------------------------------------
    def _decide_retain(self, seq: int, now: float) -> bool:
        """Ring-retention decision for a sequence, memoised at first arrival.

        Must be identical for every rank of the sequence even though their
        arrival times stagger, so the first rank decides between the two
        barriers (where the cut is quiescent) and the rest reuse it."""
        retain = self._retain.get(seq)
        if retain is None:
            interval = self.config.snapshot_interval
            last = self._last_retained_time
            retain = interval <= 0.0 or last is None or now - last >= interval
            self._retain[seq] = retain
            if retain:
                self._last_retained_time = now
        return retain

    # -- snapshot intake ----------------------------------------------------
    def on_rank_snapshot(
        self, rank: int, version: int, state: Any, snap, now: float
    ) -> None:
        """One rank's snapshot piece (both recording paths funnel here)."""
        seq = self._seq_next.get(rank, 0)
        self._seq_next[rank] = seq + 1
        retain = self._decide_retain(seq, now)
        slot = self.ring.put_rank(
            seq, version, rank, state, snap, now, retained=retain
        )
        if slot is not None:
            self._on_commit(slot)

    def _on_commit(self, slot: RingSlot) -> None:
        stats = self.cluster.ckpt_stats
        stats.counter("commits").increment()
        stats.tally("commit_bytes").observe(slot.nbytes)
        if not slot.retained:
            stats.counter("interval_skips").increment()
        if self.cluster.obs.enabled:
            self.cluster.obs.instant(
                slot.time, f"ckpt.commit:s{slot.seq}", "ckpt", 0, 0
            )
        self.note(
            "ckpt.commit",
            {
                "seq": slot.seq,
                "version": slot.version,
                "retained": slot.retained,
                "nbytes": slot.nbytes,
                "fingerprint": slot.fingerprint[:16],
            },
        )
        if slot.retained:
            # The tail restarts at each retained snapshot: it is "what
            # happened since the instant you can jump back to".
            self.tail = self.tail[-1:]
            self.tail_dropped = 0
        index = self.commits
        self.commits += 1
        if self.reference is not None:
            self._verify(index, slot)

    def _verify(self, index: int, slot: RingSlot) -> None:
        waypoints = self.reference.waypoints
        if index >= len(waypoints):
            raise ReplayDivergence(
                f"replay produced checkpoint #{index} at t={slot.time:.9g} "
                f"but the recording only has {len(waypoints)} — the replayed "
                "run is not the recorded run (different config or workload?)"
            )
        ref = waypoints[index]
        if slot.time != ref["time"]:
            raise ReplayDivergence(
                f"checkpoint #{index} committed at t={slot.time!r} in the "
                f"replay but t={ref['time']!r} in the recording — simulated "
                "time diverged (nondeterminism upstream of this cut)"
            )
        if slot.fingerprint != ref["fingerprint"]:
            raise ReplayDivergence(
                f"checkpoint #{index} at t={slot.time:.9g}: state fingerprint "
                f"{slot.fingerprint[:16]}… != recorded "
                f"{ref['fingerprint'][:16]}… — cluster state diverged"
            )

    # -- the replay-only coordinated checkpoint ------------------------------
    def checkpoint(self, api, state: Any) -> Generator[Event, Any, None]:
        """One rank's part of a recording checkpoint (no resilience).

        Mirrors :meth:`ResilienceManager.checkpoint`'s two-phase shape —
        enter barrier, snapshot the quiescent cut, commit barrier — but by
        default charges *nothing* to simulated time beyond the barriers,
        so a recorded run stays timing-comparable with an unrecorded one
        modulo the checkpoint call itself."""
        rank = api.rank
        seq = self._seq_next.get(rank, 0)
        # Enter barrier: every rank is at the cut and (because api.barrier
        # flushes first) global memory is quiescent.
        yield from api.barrier(f"rpl:ckpt:{seq}:enter")
        snap = api.kernel.gmem.snapshot_slice()
        charged = 0.0
        if self.config.charge_bps > 0:
            charged = max(snap.nbytes, 64) / self.config.charge_bps
            yield from api.compute_seconds(charged)
        stats = self.cluster.ckpt_stats
        stats.counter("snapshots").increment()
        stats.tally("snapshot_bytes").observe(snap.nbytes)
        stats.tally("write_latency").observe(charged)
        self.on_rank_snapshot(rank, seq, state, snap, api.now)
        # Commit barrier: nobody proceeds until the cut is complete.
        yield from api.barrier(f"rpl:ckpt:{seq}:commit")
